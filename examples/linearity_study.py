"""Reproduce the paper's core measurement: the Eq. 5 linear relationship.

For every analyzed layer of a chosen network, inject uniform errors at
~10 boundaries Delta, measure the induced final-layer error std, and
fit Delta = lambda * sigma + theta.  Prints the per-layer constants and
fit quality (the paper's Fig. 2 shows VGG-19 and GoogleNet; any zoo
model name works here).

Run:  python examples/linearity_study.py [model]
"""

import sys

from repro.analysis import ErrorProfiler
from repro.config import ProfileSettings
from repro.models import pretrained_model
from repro.pipeline import format_table


def main(model: str = "vgg19") -> None:
    network, train, test, info = pretrained_model(model)
    print(
        f"{model} replica: {len(network.analyzed_layer_names)} analyzed "
        f"layers, test accuracy {info['test_accuracy']:.3f}"
    )

    profiler = ErrorProfiler(
        network,
        test.images,
        ProfileSettings(num_images=32, num_delta_points=10),
    )
    report = profiler.profile()
    print(
        f"profiled {report.num_images} images in "
        f"{report.elapsed_seconds:.1f}s"
    )

    rows = [
        {
            "layer": p.name,
            "lambda": p.lam,
            "theta": p.theta,
            "R^2": p.r_squared,
            "max_rel_err": p.max_relative_error,
        }
        for p in report
    ]
    print(format_table(rows, float_format="{:.4g}"))
    worst = report.worst_fit()
    print(
        f"\nworst fit: {worst.name} at {worst.max_relative_error:.1%} "
        "(paper: < 5% typical, ~10% worst case)"
    )
    print("\nsample (sigma -> Delta) points for the first layer:")
    first = next(iter(report))
    for sigma, delta in zip(first.sigmas[:5], first.deltas[:5]):
        predicted = first.delta_for_sigma(sigma)
        print(
            f"  sigma={sigma:9.5f}  Delta={delta:9.4f}  "
            f"fit={predicted:9.4f}"
        )

    # Fig. 2, terminal edition: a few layers' (sigma, Delta) series.
    from repro.pipeline import scatter_plot

    profiles = list(report)
    picks = profiles[:: max(1, len(profiles) // 4)][:4]
    print("\nFig. 2 (terminal): Delta_XK vs sigma_{Y_K->L}")
    print(
        scatter_plot(
            {p.name: (p.sigmas, p.deltas) for p in picks},
            x_label="sigma_{Y_K->L}",
            y_label="Delta_XK",
        )
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "vgg19")
