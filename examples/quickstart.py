"""Quickstart: optimize per-layer bitwidths of a CNN in ~30 lines.

Builds a pretrained AlexNet replica on the synthetic dataset, runs the
paper's full pipeline (profile -> sigma search -> xi optimization ->
bitwidth translation), and validates the result on the actual quantized
network.

Run:  python examples/quickstart.py [--strict]

``--strict`` runs the pipeline with every resilience guardrail
escalated to a hard error (no equal-xi degradation, no warnings) — the
CI smoke mode proving the happy path stays numerically clean.
"""

import argparse

from repro import PrecisionOptimizer
from repro.config import ProfileSettings, SearchSettings
from repro.models import pretrained_model
from repro.pipeline import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--strict", action="store_true")
    args = parser.parse_args()

    # The offline stand-in for "download a Caffe Model Zoo checkpoint".
    network, train, test, info = pretrained_model("alexnet")
    print(f"pretrained alexnet replica: test accuracy {info['test_accuracy']:.3f}")

    optimizer = PrecisionOptimizer(
        network,
        test,
        profile_settings=ProfileSettings(num_images=32, num_delta_points=10),
        search_settings=SearchSettings(),
        strict=args.strict,
    )

    # One call per objective; profiling and the sigma search are shared.
    for objective in ("input", "mac"):
        outcome = optimizer.optimize(objective, accuracy_drop=0.01)
        print(f"\nOptimized for #{objective.upper()} (1% relative drop):")
        rows = [
            {
                "layer": name,
                "bits": bits,
                "xi": round(outcome.result.xi[name], 3),
            }
            for name, bits in outcome.bitwidths.items()
        ]
        print(format_table(rows))
        print(
            f"sigma_YL={outcome.sigma_result.sigma:.3f}  "
            f"quantized accuracy {outcome.validated_accuracy:.3f} "
            f"(target {outcome.sigma_result.target_accuracy:.3f}) -> "
            f"{'OK' if outcome.meets_constraint else 'VIOLATED'}"
        )


if __name__ == "__main__":
    main()
