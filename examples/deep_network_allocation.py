"""Scenario: layer-level precision for a very deep network (ResNet-50).

The paper's headline capability: "allocating precision at the
granularity of layers for very deep networks such as Resnet-152, which
hitherto was not achievable" — dynamic search over 150+ layers is
intractable, the analytic method is not.  This example allocates
per-layer bitwidths for the 54-layer ResNet-50 replica (use
``resnet152`` for the full 156 layers if you have a few minutes) and
summarizes the allocation by network stage.

Run:  python examples/deep_network_allocation.py [resnet50|resnet152]
"""

import sys
import time
from collections import defaultdict

from repro import PrecisionOptimizer
from repro.config import ProfileSettings
from repro.models import pretrained_model
from repro.pipeline import format_table


def stage_of(layer_name: str) -> str:
    """Group ResNet layer names (conv1, s1b2_a, ..., fc) by stage."""
    if layer_name.startswith("s"):
        return layer_name.split("b")[0]
    return layer_name


def main(model: str = "resnet50") -> None:
    t0 = time.time()
    network, train, test, info = pretrained_model(model)
    print(
        f"{model} replica: {len(network.analyzed_layer_names)} analyzed "
        f"layers, test accuracy {info['test_accuracy']:.3f} "
        f"(built in {time.time() - t0:.0f}s)"
    )

    optimizer = PrecisionOptimizer(
        network,
        test,
        profile_settings=ProfileSettings(num_images=16, num_delta_points=8),
    )
    t0 = time.time()
    outcome = optimizer.optimize("mac", accuracy_drop=0.05)
    print(f"full pipeline in {time.time() - t0:.0f}s")

    by_stage = defaultdict(list)
    for name, bits in outcome.bitwidths.items():
        by_stage[stage_of(name)].append(bits)
    rows = [
        {
            "stage": stage,
            "layers": len(bits),
            "min_bits": min(bits),
            "mean_bits": sum(bits) / len(bits),
            "max_bits": max(bits),
        }
        for stage, bits in by_stage.items()
    ]
    print("\nPer-stage bitwidth summary (optimized for MAC energy):")
    print(format_table(rows))
    print(
        f"\nsigma_YL={outcome.sigma_result.sigma:.3f}  quantized accuracy "
        f"{outcome.validated_accuracy:.3f} "
        f"({'OK' if outcome.meets_constraint else 'VIOLATED'})"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "resnet50")
