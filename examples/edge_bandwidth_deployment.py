"""Scenario: deploying NiN on a bandwidth-starved edge NPU.

An edge accelerator streams activations from a narrow LPDDR interface,
so the binding constraint is the number of bits read per inference.
This example optimizes the per-layer input bitwidths for total read
bandwidth (the paper's ``Opt_for_#Input``), compares against the
smallest accuracy-preserving uniform format, and reports the bit-serial
speedup the allocation buys on a Stripes-like engine.

Run:  python examples/edge_bandwidth_deployment.py
"""

from repro import PrecisionOptimizer
from repro.baselines import smallest_uniform_bitwidth
from repro.config import ProfileSettings
from repro.hardware import BitSerialAccelerator, bandwidth_saving_percent
from repro.models import pretrained_model
from repro.pipeline import format_table


def main() -> None:
    network, train, test, info = pretrained_model("nin")
    print(f"NiN replica: test accuracy {info['test_accuracy']:.3f}")

    optimizer = PrecisionOptimizer(
        network,
        test,
        profile_settings=ProfileSettings(num_images=32, num_delta_points=10),
    )
    accuracy_drop = 0.05

    outcome = optimizer.optimize("input", accuracy_drop=accuracy_drop)
    uniform = smallest_uniform_bitwidth(
        network,
        test,
        optimizer.ordered_stats(),
        optimizer.baseline_accuracy(),
        accuracy_drop,
    )

    stats = optimizer.stats()
    rows = [
        {
            "layer": name,
            "uniform_bits": uniform.allocation[name].total_bits,
            "optimized_bits": bits,
            "inputs/img": stats[name].num_inputs,
        }
        for name, bits in outcome.bitwidths.items()
    ]
    print(f"\nPer-layer formats ({accuracy_drop:.0%} relative drop allowed):")
    print(format_table(rows))

    saving = bandwidth_saving_percent(
        stats, uniform.allocation, outcome.result.allocation
    )
    print(f"\nactivation-read bandwidth saving vs uniform: {saving:+.1f}%")

    engine = BitSerialAccelerator()
    speedup_uniform = engine.speedup(stats, uniform.allocation)
    speedup_optimized = engine.speedup(stats, outcome.result.allocation)
    print(
        f"bit-serial speedup vs 16-bit engine: uniform {speedup_uniform:.2f}x,"
        f" optimized {speedup_optimized:.2f}x"
    )
    print(
        f"quantized accuracy {outcome.validated_accuracy:.3f} "
        f"(constraint {'met' if outcome.meets_constraint else 'VIOLATED'})"
    )


if __name__ == "__main__":
    main()
