"""Scenario: optimize a custom architecture defined as data.

The paper's tool was integrated into Caffe, where networks are declared
in prototxt files.  This example does the same here: a custom CNN is
declared as a JSON-able :class:`~repro.nn.NetworkSpec`, saved to disk,
rebuilt, pretrained on the synthetic task, and pushed through the full
precision-optimization pipeline — no architecture code written.

Run:  python examples/custom_network_spec.py
"""

import tempfile
from pathlib import Path

from repro import PrecisionOptimizer
from repro.config import ProfileSettings
from repro.data import SyntheticImageNet
from repro.models import lsuv_calibrate, pretrain
from repro.nn import LayerSpec, NetworkSpec
from repro.pipeline import describe_outcome


def declare_network() -> NetworkSpec:
    """A small inception-flavoured CNN, declared as pure data."""
    return NetworkSpec(
        name="custom_edge_net",
        input_shape=(3, 32, 32),
        layers=[
            LayerSpec("conv", "stem", {"out_channels": 12, "kernel": 3}),
            LayerSpec("max_pool", "pool1", {"kernel": 2}),
            # a two-branch block: 1x1 and 3x3 paths, concatenated
            LayerSpec(
                "conv", "b1", {"out_channels": 8, "kernel": 1},
                source="pool1",
            ),
            LayerSpec(
                "conv", "b3", {"out_channels": 8, "kernel": 3},
                source="pool1",
            ),
            LayerSpec("concat", "block1", sources=["b1_relu", "b3_relu"]),
            LayerSpec("max_pool", "pool2", {"kernel": 2}, source="block1"),
            LayerSpec("conv", "head_conv", {"out_channels": 24, "kernel": 3}),
            LayerSpec("global_pool", "gap"),
            LayerSpec("dense", "fc", {"out_features": 16}),
        ],
        analyzed_layers=["stem", "b1", "b3", "head_conv"],
    )


def main() -> None:
    spec = declare_network()
    with tempfile.TemporaryDirectory() as tmp:
        path = spec.save(Path(tmp) / "custom_edge_net.json")
        print(f"spec saved to {path.name} ({path.stat().st_size} bytes)")
        rebuilt = NetworkSpec.load(path)
        network = rebuilt.build(seed=11)

    source = SyntheticImageNet()
    train, test = source.train_test(384, 256)
    lsuv_calibrate(network, train.images[:32])
    info = pretrain(network, train, test)
    print(
        f"{network.name}: {len(network)} layers, "
        f"{network.num_parameters()} parameters, "
        f"test accuracy {info['test_accuracy']:.3f}"
    )

    optimizer = PrecisionOptimizer(
        network,
        test,
        profile_settings=ProfileSettings(num_images=24, num_delta_points=8),
    )
    outcome = optimizer.optimize("input", accuracy_drop=0.05)
    print()
    print(describe_outcome(outcome, stats=optimizer.stats()))


if __name__ == "__main__":
    main()
