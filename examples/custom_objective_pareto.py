"""Scenario: custom objectives and the bandwidth/energy Pareto frontier.

The paper closes with "It is conceivable that designers can formulate
different optimization criteria using our framework."  This example
shows two such formulations on the NiN replica:

1. A *custom* objective: only layers whose activations spill to DRAM
   pay bandwidth (on-chip SRAM-resident layers get rho = 0), modelling
   an accelerator with a small activation buffer.
2. A sweep of convex blends between the bandwidth and energy
   objectives, printing the resulting Pareto frontier.
3. A *budgeted* trade: minimize MAC energy subject to a hard cap on
   total input bits (the memory interface's ceiling).

Run:  python examples/custom_objective_pareto.py
"""

from repro import PrecisionOptimizer
from repro.config import ProfileSettings
from repro.models import pretrained_model
from repro.optimize import (
    Objective,
    input_bandwidth_objective,
    mac_energy_objective,
    optimize_xi,
    optimize_xi_constrained,
    tradeoff_frontier,
)
from repro.pipeline import format_table


def main() -> None:
    network, train, test, info = pretrained_model("nin")
    print(f"NiN replica: test accuracy {info['test_accuracy']:.3f}")
    optimizer = PrecisionOptimizer(
        network,
        test,
        profile_settings=ProfileSettings(num_images=24, num_delta_points=8),
    )
    stats = optimizer.stats()
    sigma = optimizer.sigma_for_drop(0.05).sigma
    names = optimizer.layer_names

    # --- 1. custom objective: DRAM-spilling layers only -----------------
    # Assume an SRAM activation buffer that holds up to 4096 elements:
    # larger inputs stream from DRAM and pay bandwidth.
    sram_capacity = 4096
    rho = {
        name: float(stats[name].num_inputs)
        if stats[name].num_inputs > sram_capacity
        else 0.0
        for name in names
    }
    dram_objective = Objective("dram_traffic", rho)
    outcome = optimizer.optimize(dram_objective, accuracy_drop=0.05)
    rows = [
        {
            "layer": name,
            "in_DRAM": "yes" if rho[name] > 0 else "no",
            "bits": outcome.bitwidths[name],
        }
        for name in names
    ]
    print("\nCustom objective: only DRAM-spilling layers pay bandwidth")
    print(format_table(rows))
    print(
        f"quantized accuracy {outcome.validated_accuracy:.3f} "
        f"({'OK' if outcome.meets_constraint else 'VIOLATED'})"
    )

    # --- 2. bandwidth <-> energy Pareto frontier -------------------------
    first = input_bandwidth_objective(stats)
    second = mac_energy_objective(stats)
    frontier = tradeoff_frontier(
        first,
        second,
        optimizer.profile().profiles,
        stats,
        sigma,
        num_points=7,
        ordered_names=names,
    )
    print("\nPareto frontier between bandwidth (alpha=1) and energy (alpha=0):")
    print(
        format_table(
            [
                {
                    "alpha": p.alpha,
                    "input_bits_total": p.cost_first,
                    "mac_bits_total": p.cost_second,
                }
                for p in frontier
            ],
            float_format="{:.3g}",
        )
    )

    # --- 3. budgeted: min energy s.t. bandwidth <= cap -------------------
    profiles = optimizer.profile().profiles

    def bandwidth_cost(xi):
        import numpy as np

        return sum(
            first.rho[n]
            * -np.log2(profiles[n].delta_for_sigma(sigma * xi[n] ** 0.5))
            for n in names
        )

    energy_opt = optimize_xi(second, profiles, sigma)
    bw_at_energy_opt = bandwidth_cost(energy_opt.xi)
    bw_opt = optimize_xi(first, profiles, sigma)
    bw_best = bandwidth_cost(bw_opt.xi)
    cap = 0.5 * (bw_best + bw_at_energy_opt)  # halfway between the optima
    result = optimize_xi_constrained(second, first, cap, profiles, sigma)
    print("\nBudgeted trade: minimize MAC energy s.t. input bits <= cap")
    print(
        f"bandwidth cost: unconstrained-energy-opt {bw_at_energy_opt:.4g}, "
        f"cap {cap:.4g}, achieved {result.cap_value:.4g} "
        f"({'cap met' if result.cap_satisfied else 'CAP VIOLATED'})"
    )


if __name__ == "__main__":
    main()
