"""Scenario: battery-powered device — minimize MAC energy per inference.

A wearable runs MobileNet-style inference on a fixed energy budget.
This example optimizes per-layer input bitwidths for total MAC energy
(the paper's ``Opt_for_#MAC``), searches the uniform weight bitwidth
afterwards (Sec. V-E), and reports picojoules per image under the
TSMC-40nm-class MAC energy model.

Run:  python examples/energy_constrained_accelerator.py
"""

from repro import PrecisionOptimizer
from repro.baselines import smallest_uniform_bitwidth
from repro.config import ProfileSettings
from repro.hardware import (
    MacEnergyModel,
    energy_saving_percent,
    uniform_weight_bits,
)
from repro.models import pretrained_model
from repro.pipeline import format_table


def main() -> None:
    network, train, test, info = pretrained_model("mobilenet")
    print(f"MobileNet replica: test accuracy {info['test_accuracy']:.3f}")

    optimizer = PrecisionOptimizer(
        network,
        test,
        profile_settings=ProfileSettings(num_images=24, num_delta_points=8),
    )
    accuracy_drop = 0.05

    outcome = optimizer.optimize(
        "mac", accuracy_drop=accuracy_drop, search_weights=True
    )
    uniform = smallest_uniform_bitwidth(
        network,
        test,
        optimizer.ordered_stats(),
        optimizer.baseline_accuracy(),
        accuracy_drop,
    )

    stats = optimizer.stats()
    model = MacEnergyModel()
    weight_bits = outcome.weight_search.bits
    wbits = uniform_weight_bits(uniform.allocation, weight_bits)
    base_pj = model.network_energy_pj(stats, uniform.allocation, wbits)
    opt_pj = model.network_energy_pj(stats, outcome.result.allocation, wbits)

    heavy = sorted(
        outcome.bitwidths,
        key=lambda n: stats[n].num_macs,
        reverse=True,
    )[:6]
    rows = [
        {
            "layer": name,
            "MACs/img": stats[name].num_macs,
            "uniform_bits": uniform.allocation[name].total_bits,
            "optimized_bits": outcome.bitwidths[name],
        }
        for name in heavy
    ]
    print(f"\nSix most MAC-hungry layers ({accuracy_drop:.0%} drop allowed):")
    print(format_table(rows))

    print(f"\nweight bitwidth from Sec. V-E search: {weight_bits}")
    print(
        f"MAC energy per image: uniform {base_pj / 1e6:.3f} uJ -> "
        f"optimized {opt_pj / 1e6:.3f} uJ "
        f"({energy_saving_percent(base_pj, opt_pj):+.1f}%)"
    )
    print(
        f"quantized accuracy {outcome.validated_accuracy:.3f} "
        f"(constraint {'met' if outcome.meets_constraint else 'VIOLATED'})"
    )


if __name__ == "__main__":
    main()
