"""Scenario: system-level energy — MACs are not the whole story.

The paper's Table III accounts for MAC energy; a deployed accelerator
also pays to move activations and weights.  This example uses the
extended hardware models to break down per-image energy (MAC + SRAM/
DRAM activation traffic + weight streaming) for three allocations of
SqueezeNet, and shows the Loom-style speedup when per-layer weight
bitwidths (Sec. V-E extension) are exploited too.

Run:  python examples/system_energy_breakdown.py
"""

from repro import PrecisionOptimizer
from repro.baselines import smallest_uniform_bitwidth
from repro.config import ProfileSettings
from repro.hardware import LoomAccelerator, system_energy
from repro.models import pretrained_model
from repro.pipeline import format_table
from repro.weights import search_per_layer_weight_bits


def main() -> None:
    network, train, test, info = pretrained_model("squeezenet")
    print(f"SqueezeNet replica: test accuracy {info['test_accuracy']:.3f}")
    optimizer = PrecisionOptimizer(
        network,
        test,
        profile_settings=ProfileSettings(num_images=24, num_delta_points=8),
    )
    drop = 0.05
    stats = optimizer.stats()
    names = optimizer.layer_names
    parameter_counts = {
        name: network[name].num_parameters() for name in names
    }

    out_input = optimizer.optimize("input", accuracy_drop=drop)
    out_mac = optimizer.optimize("mac", accuracy_drop=drop)
    uniform = smallest_uniform_bitwidth(
        network, test, optimizer.ordered_stats(),
        optimizer.baseline_accuracy(), drop,
    )

    weight_bits = search_per_layer_weight_bits(
        network,
        test,
        optimizer.baseline_accuracy(),
        drop,
        input_taps=out_mac.result.allocation.taps(network),
    )
    print(
        f"per-layer weight search: "
        f"{min(weight_bits.bits.values())}..{max(weight_bits.bits.values())} "
        f"bits over {len(weight_bits.bits)} layers "
        f"({weight_bits.evaluations} accuracy evaluations)"
    )

    rows = []
    for label, allocation in [
        ("uniform", uniform.allocation),
        ("opt_input", out_input.result.allocation),
        ("opt_mac", out_mac.result.allocation),
    ]:
        breakdown = system_energy(
            stats, allocation, weight_bits.bits, parameter_counts
        )
        rows.append(
            {
                "allocation": label,
                "mac_uJ": breakdown.mac_pj / 1e6,
                "act_traffic_uJ": breakdown.activation_pj / 1e6,
                "weight_traffic_uJ": breakdown.weight_pj / 1e6,
                "total_uJ": breakdown.total_pj / 1e6,
            }
        )
    print("\nPer-image energy breakdown:")
    print(format_table(rows, float_format="{:.4f}"))

    loom = LoomAccelerator()
    for label, allocation in [
        ("uniform", uniform.allocation),
        ("opt_mac", out_mac.result.allocation),
    ]:
        speedup = loom.speedup(stats, allocation, weight_bits.bits)
        print(f"Loom speedup vs 16x16 engine ({label}): {speedup:.2f}x")


if __name__ == "__main__":
    main()
