"""Tests for the allocation pipeline and multi-objective frontier."""

import numpy as np
import pytest

from repro.optimize import (
    allocate_equal_scheme,
    allocate_optimized,
    input_bandwidth_objective,
    mac_energy_objective,
    objective_cost,
    tradeoff_frontier,
)


@pytest.fixture()
def pieces(lenet, lenet_stats, lenet_profiles):
    return {
        "profiles": lenet_profiles.profiles,
        "stats": lenet_stats,
        "names": lenet.analyzed_layer_names,
    }


class TestAllocateOptimized:
    def test_produces_allocation_for_every_layer(self, pieces):
        result = allocate_optimized(
            "input", pieces["profiles"], pieces["stats"], 0.5,
            ordered_names=pieces["names"],
        )
        assert result.allocation.names == pieces["names"]

    def test_bitwidths_reasonable(self, pieces):
        result = allocate_optimized(
            "input", pieces["profiles"], pieces["stats"], 0.5,
            ordered_names=pieces["names"],
        )
        for bits in result.bitwidths().values():
            assert 1 <= bits <= 32

    def test_smaller_sigma_needs_more_bits(self, pieces):
        tight = allocate_optimized(
            "input", pieces["profiles"], pieces["stats"], 0.05,
            ordered_names=pieces["names"],
        )
        loose = allocate_optimized(
            "input", pieces["profiles"], pieces["stats"], 2.0,
            ordered_names=pieces["names"],
        )
        rho = input_bandwidth_objective(pieces["stats"]).rho
        assert tight.allocation.weighted_bits(rho) > loose.allocation.weighted_bits(
            rho
        )

    def test_optimized_beats_equal_on_its_objective(self, pieces):
        """The paper's core claim: optimizing xi reduces the weighted cost
        in continuous Delta terms (discretized bits are weakly better)."""
        sigma = 0.5
        rho = mac_energy_objective(pieces["stats"]).rho
        optimized = allocate_optimized(
            "mac", pieces["profiles"], pieces["stats"], sigma,
            ordered_names=pieces["names"],
        )
        equal = allocate_equal_scheme(
            pieces["profiles"], pieces["stats"], sigma,
            ordered_names=pieces["names"],
        )

        def continuous_cost(result):
            return sum(
                rho[name] * -np.log2(result.deltas[name])
                for name in pieces["names"]
            )

        assert continuous_cost(optimized) <= continuous_cost(equal) + 1e-9

    def test_xi_recorded_and_normalized(self, pieces):
        result = allocate_optimized(
            "mac", pieces["profiles"], pieces["stats"], 0.5,
            ordered_names=pieces["names"],
        )
        assert sum(result.xi.values()) == pytest.approx(1.0)


class TestEqualScheme:
    def test_equal_shares(self, pieces):
        result = allocate_equal_scheme(
            pieces["profiles"], pieces["stats"], 0.5,
            ordered_names=pieces["names"],
        )
        count = len(pieces["names"])
        for value in result.xi.values():
            assert value == pytest.approx(1.0 / count)

    def test_no_solver_involved(self, pieces):
        result = allocate_equal_scheme(
            pieces["profiles"], pieces["stats"], 0.5,
            ordered_names=pieces["names"],
        )
        assert result.solution is None


class TestFrontier:
    def test_frontier_is_non_dominated(self, pieces):
        first = input_bandwidth_objective(pieces["stats"])
        second = mac_energy_objective(pieces["stats"])
        front = tradeoff_frontier(
            first, second, pieces["profiles"], pieces["stats"], 0.5,
            num_points=5, ordered_names=pieces["names"],
        )
        assert front
        for p in front:
            dominated = any(
                q.cost_first <= p.cost_first
                and q.cost_second <= p.cost_second
                and (q.cost_first < p.cost_first or q.cost_second < p.cost_second)
                for q in front
            )
            assert not dominated

    def test_costs_match_objective_cost_helper(self, pieces):
        first = input_bandwidth_objective(pieces["stats"])
        second = mac_energy_objective(pieces["stats"])
        front = tradeoff_frontier(
            first, second, pieces["profiles"], pieces["stats"], 0.5,
            num_points=3, ordered_names=pieces["names"],
        )
        for p in front:
            assert p.cost_first == pytest.approx(
                objective_cost(p.result, first)
            )
