"""Tests for the projected-gradient cross-check solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OptimizationError
from repro.optimize import (
    Objective,
    optimize_xi,
    optimize_xi_projected,
    project_to_simplex,
)

from .test_sqp import make_profile


class TestProjection:
    def test_already_feasible_point_unchanged(self):
        floors = np.zeros(3)
        x = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(project_to_simplex(x, floors), x)

    def test_result_on_simplex(self):
        floors = np.full(4, 0.01)
        x = np.array([3.0, -1.0, 0.2, 0.8])
        projected = project_to_simplex(x, floors)
        assert projected.sum() == pytest.approx(1.0)
        assert np.all(projected >= floors - 1e-12)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 500), n=st.integers(2, 10))
    def test_projection_properties(self, seed, n):
        """PROPERTY: projection lands on the floored simplex and is a
        fixed point (projecting twice changes nothing)."""
        rng = np.random.default_rng(seed)
        floors = rng.uniform(0, 0.5 / n, size=n)
        x = rng.normal(size=n)
        p = project_to_simplex(x, floors)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= floors - 1e-12)
        np.testing.assert_allclose(project_to_simplex(p, floors), p, atol=1e-9)

    def test_infeasible_floors_raise(self):
        with pytest.raises(OptimizationError):
            project_to_simplex(np.ones(2), np.array([0.8, 0.8]))


class TestSolverAgreement:
    def test_matches_closed_form(self):
        """theta=0 closed form: xi_K = rho_K / sum(rho)."""
        profiles = {
            "a": make_profile("a", 40.0),
            "b": make_profile("b", 90.0),
        }
        objective = Objective("t", {"a": 3.0, "b": 1.0})
        solution = optimize_xi_projected(objective, profiles, 0.5)
        assert solution.xi["a"] == pytest.approx(0.75, abs=5e-3)

    def test_agrees_with_slsqp(self):
        """Two independent solvers must land on the same optimum."""
        profiles = {
            "a": make_profile("a", 40.0, theta=0.002),
            "b": make_profile("b", 90.0, theta=-0.001),
            "c": make_profile("c", 20.0, theta=0.0),
        }
        objective = Objective("t", {"a": 1.0, "b": 5.0, "c": 2.0})
        slsqp = optimize_xi(objective, profiles, 0.7)
        projected = optimize_xi_projected(objective, profiles, 0.7)
        for name in profiles:
            assert projected.xi[name] == pytest.approx(
                slsqp.xi[name], abs=0.02
            )
        assert projected.objective_value == pytest.approx(
            slsqp.objective_value, abs=1e-3
        )

    @settings(max_examples=15, deadline=None)
    @given(
        rho_a=st.floats(min_value=0.2, max_value=5),
        rho_b=st.floats(min_value=0.2, max_value=5),
        sigma=st.floats(min_value=0.1, max_value=2.0),
    )
    def test_agreement_property(self, rho_a, rho_b, sigma):
        """PROPERTY: solver agreement across random two-layer problems."""
        profiles = {
            "a": make_profile("a", 30.0),
            "b": make_profile("b", 70.0),
        }
        objective = Objective("t", {"a": rho_a, "b": rho_b})
        slsqp = optimize_xi(objective, profiles, sigma)
        projected = optimize_xi_projected(objective, profiles, sigma)
        assert projected.xi["a"] == pytest.approx(slsqp.xi["a"], abs=0.02)

    def test_on_real_profiles(self, lenet_profiles, lenet_stats):
        from repro.optimize import mac_energy_objective

        objective = mac_energy_objective(lenet_stats)
        profiles = lenet_profiles.profiles
        slsqp = optimize_xi(objective, profiles, 0.5)
        projected = optimize_xi_projected(objective, profiles, 0.5)
        for name in profiles:
            assert projected.xi[name] == pytest.approx(
                slsqp.xi[name], abs=0.03
            )
