"""Unit tests for objective construction (paper Eq. 8's rho vectors)."""

import pytest

from repro.errors import OptimizationError
from repro.nn.statistics import LayerStats
from repro.optimize import (
    Objective,
    blended_objective,
    input_bandwidth_objective,
    mac_energy_objective,
    resolve_objective,
)


@pytest.fixture()
def stats():
    return {
        "a": LayerStats("a", num_inputs=100, num_macs=5000, max_abs_input=10),
        "b": LayerStats("b", num_inputs=300, num_macs=1000, max_abs_input=10),
    }


class TestObjective:
    def test_normalized_sums_to_one(self):
        obj = Objective("x", {"a": 2.0, "b": 6.0}).normalized()
        assert sum(obj.rho.values()) == pytest.approx(1.0)
        assert obj.rho["b"] == pytest.approx(0.75)

    def test_rejects_empty(self):
        with pytest.raises(OptimizationError):
            Objective("x", {})

    def test_rejects_negative_weights(self):
        with pytest.raises(OptimizationError):
            Objective("x", {"a": -1.0})

    def test_rejects_all_zero(self):
        with pytest.raises(OptimizationError):
            Objective("x", {"a": 0.0, "b": 0.0})


class TestBuilders:
    def test_input_objective_uses_input_counts(self, stats):
        obj = input_bandwidth_objective(stats)
        assert obj.rho == {"a": 100.0, "b": 300.0}

    def test_mac_objective_uses_mac_counts(self, stats):
        obj = mac_energy_objective(stats)
        assert obj.rho == {"a": 5000.0, "b": 1000.0}


class TestBlended:
    def test_endpoints(self, stats):
        a = input_bandwidth_objective(stats)
        b = mac_energy_objective(stats)
        only_a = blended_objective(a, b, 1.0)
        assert only_a.rho == a.normalized().rho

    def test_midpoint(self, stats):
        a = Objective("a", {"x": 1.0, "y": 0.0})
        b = Objective("b", {"x": 0.0, "y": 1.0})
        mid = blended_objective(a, b, 0.5)
        assert mid.rho == {"x": 0.5, "y": 0.5}

    def test_rejects_alpha_out_of_range(self, stats):
        a = input_bandwidth_objective(stats)
        with pytest.raises(OptimizationError):
            blended_objective(a, a, 1.5)

    def test_rejects_layer_mismatch(self):
        a = Objective("a", {"x": 1.0})
        b = Objective("b", {"y": 1.0})
        with pytest.raises(OptimizationError):
            blended_objective(a, b, 0.5)


class TestResolve:
    def test_passthrough(self, stats):
        obj = Objective("mine", {"a": 1.0})
        assert resolve_objective(obj, stats) is obj

    def test_input_string(self, stats):
        assert resolve_objective("input", stats).rho["b"] == 300.0

    def test_mac_string(self, stats):
        assert resolve_objective("mac", stats).rho["a"] == 5000.0

    def test_mapping(self, stats):
        obj = resolve_objective({"a": 1.0, "b": 2.0}, stats)
        assert obj.name == "custom"

    def test_rejects_garbage(self, stats):
        with pytest.raises(OptimizationError):
            resolve_objective("bandwidth?", stats)
