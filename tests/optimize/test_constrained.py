"""Tests for budgeted (inequality-constrained) xi optimization."""

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.optimize import (
    Objective,
    optimize_xi,
    optimize_xi_constrained,
)

from .test_sqp import make_profile


@pytest.fixture()
def problem():
    profiles = {
        "a": make_profile("a", 40.0),
        "b": make_profile("b", 90.0),
        "c": make_profile("c", 25.0),
    }
    energy = Objective("energy", {"a": 5.0, "b": 1.0, "c": 1.0})
    bandwidth = Objective("bandwidth", {"a": 1.0, "b": 4.0, "c": 2.0})
    return profiles, energy, bandwidth


def cap_cost(xi, cap, profiles, sigma):
    total = 0.0
    for name, share in xi.items():
        delta = profiles[name].delta_for_sigma(sigma * np.sqrt(share))
        total += cap.rho[name] * -np.log2(delta)
    return total


class TestConstrainedOptimization:
    def test_loose_budget_recovers_unconstrained(self, problem):
        """With a huge cap budget, the constraint is inactive and the
        solution equals the unconstrained optimum."""
        profiles, energy, bandwidth = problem
        sigma = 0.5
        unconstrained = optimize_xi(energy, profiles, sigma)
        constrained = optimize_xi_constrained(
            energy, bandwidth, cap_budget=1e9, profiles=profiles, sigma=sigma
        )
        for name in profiles:
            assert constrained.xi[name] == pytest.approx(
                unconstrained.xi[name], abs=0.02
            )

    def test_tight_budget_binds(self, problem):
        """A budget between the two optima must be met with equality-ish
        and must cost some objective value vs unconstrained."""
        profiles, energy, bandwidth = problem
        sigma = 0.5
        energy_opt = optimize_xi(energy, profiles, sigma)
        bw_at_energy_opt = cap_cost(energy_opt.xi, bandwidth, profiles, sigma)
        bw_opt = optimize_xi(bandwidth, profiles, sigma)
        bw_best = cap_cost(bw_opt.xi, bandwidth, profiles, sigma)
        # pick a budget strictly between best and the energy-optimal cost
        budget = 0.5 * (bw_best + bw_at_energy_opt)
        result = optimize_xi_constrained(
            energy, bandwidth, budget, profiles, sigma
        )
        assert result.cap_satisfied
        assert result.cap_value == pytest.approx(budget, rel=0.02)
        # Constraining must cost energy vs the unconstrained optimum
        # (compare both in the same raw-rho units).
        unconstrained_cost = cap_cost(energy_opt.xi, energy, profiles, sigma)
        assert result.objective_value >= unconstrained_cost - 1e-9

    def test_infeasible_budget_raises(self, problem):
        profiles, energy, bandwidth = problem
        sigma = 0.5
        bw_opt = optimize_xi(bandwidth, profiles, sigma)
        best = cap_cost(bw_opt.xi, bandwidth, profiles, sigma)
        # a budget strictly below the best achievable cost (weighted
        # bits may be negative, so subtract rather than scale)
        impossible = best - abs(best) * 0.05 - 1.0
        with pytest.raises(OptimizationError):
            optimize_xi_constrained(
                energy, bandwidth, impossible, profiles, sigma
            )

    def test_xi_on_simplex(self, problem):
        profiles, energy, bandwidth = problem
        result = optimize_xi_constrained(
            energy, bandwidth, cap_budget=1e6, profiles=profiles, sigma=0.4
        )
        assert sum(result.xi.values()) == pytest.approx(1.0)
        assert all(v > 0 for v in result.xi.values())

    def test_layer_mismatch_rejected(self, problem):
        profiles, energy, __ = problem
        other = Objective("cap", {"a": 1.0})
        with pytest.raises(OptimizationError):
            optimize_xi_constrained(energy, other, 10.0, profiles, 0.5)

    def test_on_real_profiles(self, lenet_profiles, lenet_stats):
        from repro.optimize import (
            input_bandwidth_objective,
            mac_energy_objective,
        )

        profiles = lenet_profiles.profiles
        energy = mac_energy_objective(lenet_stats)
        bandwidth = input_bandwidth_objective(lenet_stats)
        sigma = 0.4
        bw_opt = optimize_xi(bandwidth, profiles, sigma)
        best = cap_cost(bw_opt.xi, bandwidth, profiles, sigma)
        budget = best + abs(best) * 0.02 + 0.5
        result = optimize_xi_constrained(
            energy, bandwidth, budget, profiles, sigma
        )
        assert result.cap_satisfied
