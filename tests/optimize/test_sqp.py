"""Tests for the Eq. 8 SQP solver, including its analytic solution.

With theta = 0 the Lagrangian gives a closed form: xi_K proportional to
rho_K.  The solver must recover it, and must respect the simplex
constraint and feasibility floors in general.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.profiler import LayerErrorProfile
from repro.errors import OptimizationError
from repro.optimize import Objective, equal_xi, optimize_xi


def make_profile(name, lam, theta=0.0):
    deltas = np.geomspace(0.01, 1.0, 5)
    return LayerErrorProfile(
        name=name,
        lam=lam,
        theta=theta,
        r_squared=1.0,
        max_relative_error=0.0,
        deltas=deltas,
        sigmas=(deltas - theta) / lam,
    )


class TestAnalyticSolution:
    def test_xi_proportional_to_rho_when_theta_zero(self):
        """Closed form: xi_K* = rho_K / sum(rho) for theta = 0."""
        profiles = {
            "a": make_profile("a", 50.0),
            "b": make_profile("b", 80.0),
            "c": make_profile("c", 120.0),
        }
        objective = Objective("t", {"a": 1.0, "b": 2.0, "c": 5.0})
        solution = optimize_xi(objective, profiles, sigma=0.5)
        assert solution.xi["a"] == pytest.approx(1 / 8, abs=1e-3)
        assert solution.xi["b"] == pytest.approx(2 / 8, abs=1e-3)
        assert solution.xi["c"] == pytest.approx(5 / 8, abs=1e-3)

    def test_lambda_does_not_affect_theta_zero_solution(self):
        """With theta = 0, lambda only shifts the objective constant."""
        profiles_a = {"a": make_profile("a", 10.0), "b": make_profile("b", 10.0)}
        profiles_b = {"a": make_profile("a", 500.0), "b": make_profile("b", 3.0)}
        objective = Objective("t", {"a": 3.0, "b": 1.0})
        xi_a = optimize_xi(objective, profiles_a, 1.0).xi
        xi_b = optimize_xi(objective, profiles_b, 1.0).xi
        assert xi_a["a"] == pytest.approx(xi_b["a"], abs=1e-3)

    @settings(max_examples=25, deadline=None)
    @given(
        rho_a=st.floats(min_value=0.1, max_value=10),
        rho_b=st.floats(min_value=0.1, max_value=10),
        sigma=st.floats(min_value=0.05, max_value=5.0),
    )
    def test_two_layer_closed_form_property(self, rho_a, rho_b, sigma):
        """PROPERTY: two-layer theta=0 case matches rho_K/sum(rho)."""
        profiles = {"a": make_profile("a", 30.0), "b": make_profile("b", 70.0)}
        objective = Objective("t", {"a": rho_a, "b": rho_b})
        xi = optimize_xi(objective, profiles, sigma).xi
        assert xi["a"] == pytest.approx(rho_a / (rho_a + rho_b), abs=5e-3)


class TestConstraints:
    def test_xi_sums_to_one(self):
        profiles = {
            n: make_profile(n, lam, theta)
            for n, lam, theta in [
                ("a", 40.0, -0.01),
                ("b", 90.0, 0.02),
                ("c", 20.0, 0.0),
            ]
        }
        objective = Objective("t", {"a": 1.0, "b": 4.0, "c": 2.0})
        solution = optimize_xi(objective, profiles, 0.7)
        assert sum(solution.xi.values()) == pytest.approx(1.0)
        assert all(x > 0 for x in solution.xi.values())

    def test_negative_theta_respects_feasibility_floor(self):
        """Deltas must stay positive even with strongly negative theta."""
        profiles = {
            "a": make_profile("a", 10.0, theta=-0.5),
            "b": make_profile("b", 10.0, theta=0.0),
        }
        objective = Objective("t", {"a": 1.0, "b": 1.0})
        solution = optimize_xi(objective, profiles, sigma=1.0)
        for name, profile in profiles.items():
            delta = profile.delta_for_sigma(1.0 * np.sqrt(solution.xi[name]))
            assert delta > 0

    def test_infeasible_floors_raise(self):
        """theta so negative that no xi in the simplex gives Delta > 0."""
        profiles = {
            "a": make_profile("a", 1.0, theta=-100.0),
            "b": make_profile("b", 1.0, theta=-100.0),
        }
        objective = Objective("t", {"a": 1.0, "b": 1.0})
        with pytest.raises(OptimizationError):
            optimize_xi(objective, profiles, sigma=1.0)

    def test_rejects_non_positive_sigma(self):
        profiles = {"a": make_profile("a", 10.0), "b": make_profile("b", 10.0)}
        objective = Objective("t", {"a": 1.0, "b": 1.0})
        with pytest.raises(OptimizationError):
            optimize_xi(objective, profiles, sigma=0.0)

    def test_rejects_unprofiled_layers(self):
        profiles = {"a": make_profile("a", 10.0)}
        objective = Objective("t", {"a": 1.0, "zz": 1.0})
        with pytest.raises(OptimizationError):
            optimize_xi(objective, profiles, sigma=1.0)


class TestOptimality:
    def test_beats_equal_scheme_on_skewed_objective(self):
        """The optimized xi must (weakly) beat xi = 1/L on its objective."""
        profiles = {
            "a": make_profile("a", 30.0, 0.001),
            "b": make_profile("b", 60.0, -0.002),
            "c": make_profile("c", 100.0, 0.0),
        }
        rho = {"a": 10.0, "b": 1.0, "c": 1.0}
        objective = Objective("t", rho)
        sigma = 0.8

        def cost(xi):
            total = 0.0
            for name, profile in profiles.items():
                delta = profile.delta_for_sigma(sigma * np.sqrt(xi[name]))
                total += rho[name] * -np.log2(delta)
            return total

        optimized = optimize_xi(objective, profiles, sigma)
        assert cost(optimized.xi) <= cost(equal_xi(list(profiles))) + 1e-9


class TestEqualXi:
    def test_shares(self):
        xi = equal_xi(["a", "b", "c", "d"])
        assert all(v == 0.25 for v in xi.values())

    def test_rejects_empty(self):
        with pytest.raises(OptimizationError):
            equal_xi([])
