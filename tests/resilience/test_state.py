"""Unit tests for the on-disk resumable run state."""

import json

import numpy as np
import pytest

from repro.analysis.profiler import LayerErrorProfile
from repro.analysis.sigma_search import SigmaSearchResult
from repro.errors import ResumeError
from repro.resilience import STATE_VERSION, RunState


def make_profile(name="conv1", lam=2.5):
    return LayerErrorProfile(
        name=name,
        lam=lam,
        theta=-0.003,
        r_squared=0.998,
        max_relative_error=0.04,
        deltas=np.geomspace(1e-4, 1e-1, 8),
        sigmas=np.geomspace(1e-4, 1e-1, 8) / lam,
    )


def make_sigma_result():
    return SigmaSearchResult(
        sigma=0.125,
        baseline_accuracy=0.75,
        target_accuracy=0.7125,
        achieved_accuracy=0.73,
        evaluations=[(1.0, 0.5), (0.5, 0.7), (0.125, 0.73)],
        elapsed_seconds=1.5,
    )


class TestManifest:
    def test_bind_creates_layout(self, tmp_path):
        state = RunState(tmp_path / "run")
        manifest = state.bind("lenet")
        assert manifest["version"] == STATE_VERSION
        assert state.manifest_path.exists()
        assert state.profiles_dir.is_dir()
        assert state.sigma_dir.is_dir()

    def test_rebind_same_network_ok(self, tmp_path):
        state = RunState(tmp_path)
        state.bind("lenet")
        assert RunState(tmp_path).bind("lenet")["network"] == "lenet"

    def test_bind_rejects_other_network(self, tmp_path):
        RunState(tmp_path).bind("lenet")
        with pytest.raises(ResumeError):
            RunState(tmp_path).bind("alexnet")

    def test_bind_rejects_version_mismatch(self, tmp_path):
        state = RunState(tmp_path)
        state.bind("lenet")
        payload = json.loads(state.manifest_path.read_text())
        payload["version"] = 999
        state.manifest_path.write_text(json.dumps(payload))
        with pytest.raises(ResumeError):
            RunState(tmp_path).bind("lenet")

    def test_corrupt_manifest_raises(self, tmp_path):
        state = RunState(tmp_path)
        state.bind("lenet")
        state.manifest_path.write_text("{not json")
        with pytest.raises(ResumeError):
            RunState(tmp_path).bind("lenet")


class TestLayerProfiles:
    def test_roundtrip(self, tmp_path):
        state = RunState(tmp_path)
        state.bind("lenet")
        original = make_profile()
        state.save_layer_profile(original)
        loaded = state.load_layer_profiles()["conv1"]
        assert loaded.lam == original.lam
        assert loaded.theta == original.theta
        assert loaded.r_squared == original.r_squared
        np.testing.assert_array_equal(loaded.deltas, original.deltas)
        np.testing.assert_array_equal(loaded.sigmas, original.sigmas)

    def test_empty_state_loads_nothing(self, tmp_path):
        assert RunState(tmp_path / "nowhere").load_layer_profiles() == {}

    def test_multiple_layers(self, tmp_path):
        state = RunState(tmp_path)
        state.bind("lenet")
        for name in ("conv1", "conv2", "fc"):
            state.save_layer_profile(make_profile(name))
        assert set(state.load_layer_profiles()) == {"conv1", "conv2", "fc"}

    def test_corrupt_profile_raises(self, tmp_path):
        state = RunState(tmp_path)
        state.bind("lenet")
        state.save_layer_profile(make_profile())
        path = next(state.profiles_dir.glob("*.npz"))
        path.write_bytes(b"garbage")
        with pytest.raises(ResumeError):
            state.load_layer_profiles()

    def test_odd_layer_names_are_slugged(self, tmp_path):
        state = RunState(tmp_path)
        state.bind("lenet")
        state.save_layer_profile(make_profile("block/3x3:a"))
        assert "block/3x3:a" in state.load_layer_profiles()


class TestSigmaResults:
    def test_roundtrip(self, tmp_path):
        state = RunState(tmp_path)
        state.bind("lenet")
        state.save_sigma_result(0.05, make_sigma_result())
        loaded = state.load_sigma_result(0.05)
        assert loaded.sigma == 0.125
        assert loaded.evaluations == [(1.0, 0.5), (0.5, 0.7), (0.125, 0.73)]
        assert loaded.num_evaluations == 3

    def test_missing_returns_none(self, tmp_path):
        state = RunState(tmp_path)
        state.bind("lenet")
        assert state.load_sigma_result(0.01) is None

    def test_distinct_drops_stored_separately(self, tmp_path):
        state = RunState(tmp_path)
        state.bind("lenet")
        state.save_sigma_result(0.05, make_sigma_result())
        assert state.load_sigma_result(0.01) is None
        assert state.load_sigma_result(0.05) is not None

    def test_corrupt_sigma_raises(self, tmp_path):
        state = RunState(tmp_path)
        state.bind("lenet")
        state.save_sigma_result(0.05, make_sigma_result())
        state._sigma_path(0.05).write_text("{broken")
        with pytest.raises(ResumeError):
            state.load_sigma_result(0.05)
