"""Unit tests for the numerical guardrails."""

import numpy as np
import pytest

from repro.errors import DegradedResultWarning, NumericalGuardError
from repro.resilience import (
    Diagnostic,
    check_finite_array,
    check_finite_scalar,
    check_profile_fit,
    check_sigma_bracket,
    enforce,
)


class TestFiniteChecks:
    def test_clean_array_no_diagnostics(self):
        assert check_finite_array(np.ones(10), "profiling") == []

    def test_nan_and_inf_counted(self):
        array = np.array([1.0, np.nan, np.inf, -np.inf, 2.0])
        (diag,) = check_finite_array(array, "profiling", layer="conv1")
        assert diag.code == "non_finite"
        assert diag.layer == "conv1"
        assert "1 NaN" in diag.message and "2 Inf" in diag.message

    def test_scalar_check(self):
        assert check_finite_scalar(0.5, "sigma_search", "accuracy") == []
        (diag,) = check_finite_scalar(
            float("nan"), "sigma_search", "accuracy"
        )
        assert "accuracy" in diag.message


class TestProfileFitChecks:
    def test_clean_fit(self):
        assert check_profile_fit("conv1", 2.0, 0.01, 0.99) == []

    def test_non_positive_lambda(self):
        codes = [d.code for d in check_profile_fit("conv1", -1.0, 0.0, 0.99)]
        assert "non_positive_lambda" in codes

    def test_low_r_squared(self):
        (diag,) = check_profile_fit("fc", 2.0, 0.0, 0.01)
        assert diag.code == "low_r_squared"
        assert diag.layer == "fc"

    def test_non_finite_short_circuits(self):
        diags = check_profile_fit("fc", float("nan"), 0.0, 0.01)
        assert all(d.code == "non_finite" for d in diags)


class TestBracketChecks:
    def test_clean_bracket(self):
        assert check_sigma_bracket(0.5, 1.0, 4) == []

    def test_inverted_bracket(self):
        (diag,) = check_sigma_bracket(1.0, 0.5, 4)
        assert diag.code == "inverted_bracket"

    def test_non_finite_bracket(self):
        diags = check_sigma_bracket(float("inf"), 0.5, 4)
        assert diags and diags[0].code == "non_finite"


class TestEnforce:
    DIAG = Diagnostic(stage="regression", code="low_r_squared", message="x")
    FATAL = Diagnostic(stage="profiling", code="non_finite", message="x")

    def test_empty_is_silent(self):
        assert enforce([], strict=True) == []

    def test_strict_raises_with_diagnostics_attached(self):
        with pytest.raises(NumericalGuardError) as excinfo:
            enforce([self.DIAG], strict=True)
        assert excinfo.value.diagnostics == [self.DIAG]

    def test_permissive_warns_and_returns(self):
        with pytest.warns(DegradedResultWarning):
            out = enforce([self.DIAG], strict=False)
        assert out == [self.DIAG]

    def test_non_finite_always_raises(self):
        with pytest.raises(NumericalGuardError):
            enforce([self.FATAL], strict=False)
