"""Unit tests for the solver fallback chain and retry primitive."""

import numpy as np
import pytest

from repro.analysis.profiler import LayerErrorProfile
from repro.errors import (
    DegradedResultWarning,
    RetryExhaustedError,
    TransientError,
)
from repro.optimize.objective import Objective
from repro.resilience import (
    broken_solver,
    call_with_retries,
    solve_xi_with_fallback,
)


def make_profiles(lams=(2.0, 1.0, 0.5)):
    profiles = {}
    for i, lam in enumerate(lams):
        name = f"layer{i}"
        profiles[name] = LayerErrorProfile(
            name=name,
            lam=lam,
            theta=0.001,
            r_squared=0.999,
            max_relative_error=0.01,
            deltas=np.geomspace(1e-3, 1e-1, 8),
            sigmas=np.geomspace(1e-3, 1e-1, 8) / lam,
        )
    return profiles


def make_objective(profiles):
    return Objective("test", {name: 1.0 for name in profiles})


class TestCallWithRetries:
    def test_passthrough_on_success(self):
        assert call_with_retries(lambda x: x + 1, 41) == 42

    def test_retries_transient_then_succeeds(self):
        calls = {"n": 0}

        def flaky_fn():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("flaky")
            return "ok"

        assert call_with_retries(flaky_fn, retries=2) == "ok"
        assert calls["n"] == 3

    def test_exhaustion_raises_with_attempts(self):
        def always_fails():
            raise TransientError("nope")

        with pytest.raises(RetryExhaustedError) as excinfo:
            call_with_retries(always_fails, retries=2, label="probe")
        assert len(excinfo.value.attempts) == 3

    def test_non_transient_propagates_immediately(self):
        calls = {"n": 0}

        def bad():
            calls["n"] += 1
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            call_with_retries(bad, retries=5)
        assert calls["n"] == 1


class TestSolveXiWithFallback:
    def test_clean_solve_first_attempt(self):
        profiles = make_profiles()
        solution, report = solve_xi_with_fallback(
            make_objective(profiles), profiles, sigma=0.5
        )
        assert solution.success
        assert report.attempts == 1
        assert not report.degraded
        assert sum(solution.xi.values()) == pytest.approx(1.0)

    def test_recovers_via_multi_start(self):
        profiles = make_profiles()
        solver = broken_solver(fail_times=2)
        solution, report = solve_xi_with_fallback(
            make_objective(profiles), profiles, sigma=0.5, solver=solver
        )
        assert solution.success
        assert report.attempts == 3
        assert not report.degraded
        assert len(report.failures) == 2
        # retries passed the multi-start knobs through
        assert solver.state["calls"] == 3

    def test_exhaustion_degrades_to_equal_xi(self):
        profiles = make_profiles()
        with pytest.warns(DegradedResultWarning):
            solution, report = solve_xi_with_fallback(
                make_objective(profiles),
                profiles,
                sigma=0.5,
                solver=broken_solver(fail_times=None),
            )
        assert report.degraded
        assert not solution.success
        shares = set(round(x, 9) for x in solution.xi.values())
        assert shares == {round(1.0 / len(profiles), 9)}
        assert "degraded" in report.describe().lower()

    def test_strict_raises_retry_exhausted(self):
        profiles = make_profiles()
        with pytest.raises(RetryExhaustedError) as excinfo:
            solve_xi_with_fallback(
                make_objective(profiles),
                profiles,
                sigma=0.5,
                strict=True,
                solver=broken_solver(fail_times=None),
            )
        # every attempt's failure is recorded in order
        assert len(excinfo.value.attempts) >= 2

    def test_unsuccessful_solution_triggers_retry(self):
        profiles = make_profiles()
        from repro.optimize.sqp import XiSolution, optimize_xi

        calls = {"n": 0}

        def soft_failer(objective, profiles_, sigma, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                share = 1.0 / len(profiles_)
                return XiSolution(
                    xi={name: share for name in profiles_},
                    objective_value=0.0,
                    success=False,
                    message="iteration limit",
                    num_iterations=200,
                )
            return optimize_xi(objective, profiles_, sigma, **kwargs)

        solution, report = solve_xi_with_fallback(
            make_objective(profiles), profiles, sigma=0.5, solver=soft_failer
        )
        assert solution.success
        assert report.attempts == 2
        assert "solver reported failure" in report.failures[0]

    def test_seeded_retries_are_deterministic(self):
        profiles = make_profiles()
        results = []
        for __ in range(2):
            solution, __report = solve_xi_with_fallback(
                make_objective(profiles),
                profiles,
                sigma=0.5,
                seed=7,
                solver=broken_solver(fail_times=1),
            )
            results.append(solution.xi)
        assert results[0] == results[1]
