"""End-to-end chaos tests: every degradation path, proven on a real model.

These are the acceptance tests for the resilience layer: a simulated
crash mid-profiling must be resumable without re-profiling completed
layers, NaN activations must trip the guardrails, transient evaluator
faults must be retried, and forced SLSQP failure must degrade to an
equal-xi allocation tagged ``degraded=True`` instead of raising.
"""

import pytest

from repro.analysis.profiler import ErrorProfiler
from repro.analysis.sigma_search import Scheme1Evaluator, find_sigma
from repro.config import ProfileSettings, SearchSettings
from repro.errors import (
    DegradedResultWarning,
    NumericalGuardError,
    ReproError,
    RetryExhaustedError,
    TransientError,
)
from repro.pipeline import PrecisionOptimizer, describe_outcome
from repro.resilience import (
    ChaosNetwork,
    FaultSchedule,
    RunState,
    SimulatedCrash,
    broken_solver,
    crash_after_layers,
    flaky,
    resumable_profile,
)

SETTINGS = ProfileSettings(num_images=8, num_delta_points=6, seed=99)
SEARCH = SearchSettings(num_images=64, tolerance=0.05, num_trials=1, seed=99)


class CountingProfiler(ErrorProfiler):
    """Records which layers actually get (re-)profiled."""

    def profile(self, layer_names=None, progress=False):
        names = list(layer_names or self.network.analyzed_layer_names)
        self.profiled_layers = getattr(self, "profiled_layers", []) + names
        return super().profile(names, progress=progress)


class TestFaultSchedule:
    def test_explicit_indices_fire_exactly(self):
        sched = FaultSchedule(at={1, 3})
        assert [sched.should_fault() for __ in range(5)] == [
            False, True, False, True, False,
        ]
        assert sched.fired == 2

    def test_max_faults_caps_injection(self):
        sched = FaultSchedule(rate=1.0, max_faults=2)
        fired = sum(sched.should_fault() for __ in range(10))
        assert fired == 2

    def test_seeded_rate_is_deterministic(self):
        a = FaultSchedule(rate=0.5, seed=3)
        b = FaultSchedule(rate=0.5, seed=3)
        assert [a.should_fault() for __ in range(20)] == [
            b.should_fault() for __ in range(20)
        ]

    def test_max_faults_exact_when_at_and_rate_interleave(self):
        # rate=1.0 fires on events 0,1,2; the cap must then silence the
        # later explicit indices 5 and 9 — exactly max_faults total.
        sched = FaultSchedule(at={0, 5, 9}, rate=1.0, max_faults=3)
        hits = [sched.should_fault() for __ in range(20)]
        assert hits == [True, True, True] + [False] * 17
        assert sched.fired == 3

    def test_coinciding_at_and_rate_count_as_one_fault(self):
        sched = FaultSchedule(at={0}, rate=1.0, max_faults=2)
        assert [sched.should_fault() for __ in range(5)] == [
            True, True, False, False, False,
        ]
        assert sched.fired == 2

    def test_at_hits_do_not_shift_the_rate_stream(self):
        plain = FaultSchedule(rate=0.3, seed=7)
        mixed = FaultSchedule(at={2}, rate=0.3, seed=7)
        base = {i for i in range(50) if plain.should_fault()}
        combined = {i for i in range(50) if mixed.should_fault()}
        assert combined == base | {2}

    def test_consumption_from_second_process_raises(self, monkeypatch):
        import repro.resilience.chaos as chaos_mod

        sched = FaultSchedule(at={1})
        assert sched.should_fault() is False  # binds the consumer pid
        elsewhere = chaos_mod.os.getpid() + 1
        monkeypatch.setattr(chaos_mod.os, "getpid", lambda: elsewhere)
        with pytest.raises(ReproError, match="single-consumer"):
            sched.should_fault()


class TestNaNGuardrail:
    def test_nan_activations_trip_profiler_guard(self, lenet, datasets):
        __, test = datasets
        chaos = ChaosNetwork(lenet, nan_schedule=FaultSchedule.once(2))
        profiler = ErrorProfiler(chaos, test.images, settings=SETTINGS)
        with pytest.raises(NumericalGuardError) as excinfo:
            profiler.profile()
        diags = excinfo.value.diagnostics
        assert diags and diags[0].code == "non_finite"
        assert diags[0].layer in lenet.analyzed_layer_names

    def test_nan_accuracy_trips_sigma_search_guard(self):
        from repro.errors import SearchError

        def poisoned_accuracy(sigma):
            return float("nan")

        with pytest.raises(SearchError, match="numerically broken"):
            find_sigma(poisoned_accuracy, 0.8, 0.05, SEARCH)


class TestTransientRetry:
    def test_flaky_evaluator_is_retried(self):
        def accuracy(sigma):
            return 0.9 if sigma <= 0.5 else 0.4

        flaky_fn = flaky(accuracy, FaultSchedule(at={0, 3}))
        result = find_sigma(flaky_fn, 0.9, 0.05, SEARCH)
        assert result.sigma > 0

    def test_persistent_faults_exhaust_retries(self):
        def accuracy(sigma):
            return 0.9

        always_bad = flaky(accuracy, FaultSchedule(rate=1.0))
        with pytest.raises(RetryExhaustedError):
            find_sigma(always_bad, 0.9, 0.05, SEARCH)

    def test_transient_network_fault_retried_end_to_end(
        self, lenet, datasets, lenet_profiles
    ):
        __, test = datasets
        chaos = ChaosNetwork(
            lenet, transient_schedule=FaultSchedule.once(0)
        )
        evaluator = Scheme1Evaluator(
            chaos,
            test.subset(32),
            lenet_profiles.profiles,
            batch_size=32,
            num_trials=1,
            seed=5,
        )

        def accuracy(sigma):
            try:
                return evaluator.accuracy(sigma)
            except TransientError:
                raise  # let find_sigma's retry loop handle it

        result = find_sigma(accuracy, 0.8, 0.10, SEARCH)
        assert result.sigma > 0
        assert chaos.transient_schedule.fired == 1


class TestCrashAndResume:
    """Acceptance: kill mid-profiling, resume without redoing work."""

    def test_crash_then_resume_skips_completed_layers(
        self, lenet, datasets, tmp_path
    ):
        __, test = datasets
        layers = lenet.analyzed_layer_names
        assert len(layers) >= 3, "test needs a multi-layer network"
        completed = 2

        state = RunState(tmp_path / "run")
        state.bind(lenet.name)
        chaos = ChaosNetwork(
            lenet,
            crash_schedule=crash_after_layers(
                completed,
                SETTINGS.num_delta_points,
                SETTINGS.num_repeats,
            ),
        )
        profiler = ErrorProfiler(chaos, test.images, settings=SETTINGS)
        with pytest.raises(SimulatedCrash):
            resumable_profile(profiler, state)

        # exactly the first `completed` layers were checkpointed
        assert set(state.load_layer_profiles()) == set(layers[:completed])
        mtimes = {
            p.name: p.stat().st_mtime_ns
            for p in state.profiles_dir.glob("*.npz")
        }

        # resume on a clean (chaos-free) profiler
        fresh = CountingProfiler(lenet, test.images, settings=SETTINGS)
        report = resumable_profile(fresh, state)
        assert set(report.profiles) == set(layers)
        # only the unfinished layers were re-profiled...
        assert fresh.profiled_layers == layers[completed:]
        # ...and the completed checkpoints were not rewritten
        for path in state.profiles_dir.glob("*.npz"):
            if path.name in mtimes:
                assert path.stat().st_mtime_ns == mtimes[path.name]

    def test_resumed_profiles_match_uninterrupted_run(
        self, lenet, datasets, tmp_path
    ):
        __, test = datasets
        state_a = RunState(tmp_path / "a")
        state_a.bind(lenet.name)
        clean = resumable_profile(
            ErrorProfiler(lenet, test.images, settings=SETTINGS), state_a
        )

        state_b = RunState(tmp_path / "b")
        state_b.bind(lenet.name)
        chaos = ChaosNetwork(
            lenet,
            crash_schedule=crash_after_layers(
                1, SETTINGS.num_delta_points, SETTINGS.num_repeats
            ),
        )
        with pytest.raises(SimulatedCrash):
            resumable_profile(
                ErrorProfiler(chaos, test.images, settings=SETTINGS), state_b
            )
        resumed = resumable_profile(
            ErrorProfiler(lenet, test.images, settings=SETTINGS), state_b
        )
        for name in clean.profiles:
            assert resumed.profiles[name].lam == pytest.approx(
                clean.profiles[name].lam
            )
            assert resumed.profiles[name].theta == pytest.approx(
                clean.profiles[name].theta
            )

    def test_optimizer_resumes_profile_and_sigma(
        self, lenet, datasets, tmp_path
    ):
        __, test = datasets
        state_dir = tmp_path / "opt-run"
        chaos = ChaosNetwork(
            lenet,
            crash_schedule=crash_after_layers(
                2, SETTINGS.num_delta_points, SETTINGS.num_repeats
            ),
        )
        crashed = PrecisionOptimizer(
            chaos,
            test,
            profile_settings=SETTINGS,
            search_settings=SEARCH,
            refine=False,
            state_dir=state_dir,
        )
        with pytest.raises(SimulatedCrash):
            crashed.profile()
        assert len(crashed.state.load_layer_profiles()) == 2

        resumed = PrecisionOptimizer(
            lenet,
            test,
            profile_settings=SETTINGS,
            search_settings=SEARCH,
            refine=False,
            state_dir=state_dir,
        )
        outcome = resumed.optimize("input", accuracy_drop=0.05)
        assert outcome.sigma_result.sigma > 0
        assert set(outcome.bitwidths) == set(lenet.analyzed_layer_names)

        # the finished sigma search persisted; a third optimizer loads
        # it instead of re-searching (its evaluations match exactly)
        third = PrecisionOptimizer(
            lenet,
            test,
            profile_settings=SETTINGS,
            search_settings=SEARCH,
            refine=False,
            state_dir=state_dir,
        )
        stored = third.sigma_for_drop(0.05)
        assert stored.sigma == outcome.sigma_result.sigma
        assert stored.evaluations == outcome.sigma_result.evaluations


class TestSolverDegradation:
    """Acceptance: forced SLSQP failure returns degraded equal-xi."""

    def test_forced_failure_degrades_to_equal_xi(self, lenet, datasets):
        __, test = datasets
        opt = PrecisionOptimizer(
            lenet,
            test,
            profile_settings=SETTINGS,
            search_settings=SEARCH,
            refine=False,
            xi_solver=broken_solver(fail_times=None),
        )
        with pytest.warns(DegradedResultWarning):
            outcome = opt.optimize(
                "input", accuracy_drop=0.05, validate=False
            )
        assert outcome.degraded is True
        shares = set(round(x, 9) for x in outcome.result.xi.values())
        assert len(shares) == 1  # equal-xi fallback
        assert "DEGRADED" in describe_outcome(outcome)

    def test_strict_mode_raises_instead_of_degrading(self, lenet, datasets):
        __, test = datasets
        opt = PrecisionOptimizer(
            lenet,
            test,
            profile_settings=SETTINGS,
            search_settings=SEARCH,
            refine=False,
            strict=True,
            xi_solver=broken_solver(fail_times=None),
        )
        with pytest.raises(RetryExhaustedError):
            opt.optimize("input", accuracy_drop=0.05, validate=False)

    def test_multi_start_recovery_is_not_degraded(self, lenet, datasets):
        __, test = datasets
        opt = PrecisionOptimizer(
            lenet,
            test,
            profile_settings=SETTINGS,
            search_settings=SEARCH,
            refine=False,
            xi_solver=broken_solver(fail_times=1),
        )
        outcome = opt.optimize("input", accuracy_drop=0.05, validate=False)
        assert outcome.degraded is False
        assert outcome.result.fallback.attempts == 2
