"""Tests for result export (JSON / CSV)."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ReproError
from repro.experiments import export_csv, export_json, load_json


@dataclasses.dataclass
class FakeResult:
    model: str
    values: np.ndarray
    nested: dict


class TestExportJson:
    def test_roundtrip_dataclass(self, tmp_path):
        result = FakeResult(
            model="alexnet",
            values=np.array([1.0, 2.0]),
            nested={"sigma": np.float64(0.25)},
        )
        path = export_json(result, tmp_path / "out.json")
        data = load_json(path)
        assert data["model"] == "alexnet"
        assert data["values"] == [1.0, 2.0]
        assert data["nested"]["sigma"] == 0.25

    def test_roundtrip_plain_dict(self, tmp_path):
        path = export_json({"a": [1, 2, {"b": np.int64(3)}]}, tmp_path / "d.json")
        assert load_json(path) == {"a": [1, 2, {"b": 3}]}

    def test_creates_parent_dirs(self, tmp_path):
        path = export_json({"x": 1}, tmp_path / "deep" / "dir" / "f.json")
        assert path.exists()

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_json(tmp_path / "nope.json")


class TestExportCsv:
    def test_writes_rows(self, tmp_path):
        rows = [{"layer": "c1", "bits": 6}, {"layer": "c2", "bits": 7}]
        path = export_csv(rows, tmp_path / "t.csv")
        text = path.read_text()
        assert "layer,bits" in text
        assert "c2,7" in text

    def test_column_selection(self, tmp_path):
        rows = [{"a": 1, "b": 2}]
        path = export_csv(rows, tmp_path / "t.csv", columns=["b"])
        assert path.read_text().splitlines()[0] == "b"

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ReproError):
            export_csv([], tmp_path / "t.csv")
