"""Smoke + behaviour tests for the experiment drivers on a small model."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    clear_context_cache,
    make_context,
    run_additivity_check,
    run_cost_comparison,
    run_fig1,
    run_fig2,
    run_fig3,
    run_negative_fraction_ablation,
    run_profile_stability,
    run_scheme_agreement,
    run_xi_ablation,
)


CFG = ExperimentConfig(
    model="lenet",
    num_classes=8,
    train_count=192,
    test_count=96,
    profile_images=12,
    profile_points=6,
    seed=77,
)


@pytest.fixture(scope="module")
def context():
    return make_context(CFG)


class TestContextCache:
    def test_same_config_returns_same_context(self, context):
        assert make_context(CFG) is context

    def test_different_config_differs(self, context):
        other = make_context(
            ExperimentConfig(
                model="lenet",
                num_classes=8,
                train_count=192,
                test_count=96,
                profile_images=12,
                profile_points=6,
                seed=78,
            )
        )
        assert other is not context

    def test_cache_can_be_cleared(self):
        cfg = ExperimentConfig(model="lenet", train_count=64, test_count=32,
                               profile_images=4, profile_points=4, seed=5)
        first = make_context(cfg)
        clear_context_cache()
        assert make_context(cfg) is not first

    def test_pretrain_info_present(self, context):
        assert context.pretrain_info["test_accuracy"] > 0.3


class TestFig1(object):
    def test_error_shapes(self, context):
        result = run_fig1(context=context, delta=1.0)
        input_shape = result.shape("layer_input")
        output_shape = result.shape("network_output")
        # injected input error is uniform: strongly negative kurtosis
        assert input_shape.excess_kurtosis < -0.5
        # final-layer error is much closer to Gaussian (Fig. 3 histogram)
        assert abs(output_shape.excess_kurtosis) < abs(
            input_shape.excess_kurtosis
        )

    def test_unknown_probe_raises(self, context):
        result = run_fig1(context=context)
        with pytest.raises(KeyError):
            result.shape("nowhere")


class TestFig2:
    def test_series_per_layer(self, context):
        result = run_fig2(context=context)
        assert len(result.series) == len(
            context.network.analyzed_layer_names
        )

    def test_fit_quality_band(self, context):
        result = run_fig2(context=context)
        assert result.median_relative_error < 0.25
        assert result.worst_relative_error < 0.6

    def test_summary_rows(self, context):
        rows = run_fig2(context=context).summary_rows()
        assert {"layer", "lambda", "theta", "R^2", "max_rel_err"} == set(
            rows[0]
        )


class TestFig3:
    def test_accuracy_monotone_along_sigma(self, context):
        result = run_fig3(
            context=context, sigmas=[0.1, 1.0, 8.0], with_corners=False
        )
        accs = [p.gaussian_approx_accuracy for p in result.points]
        assert accs[0] >= accs[-1]

    def test_schemes_track_each_other(self, context):
        result = run_fig3(
            context=context, sigmas=[0.25, 1.0], with_corners=False
        )
        for p in result.points:
            assert p.scheme_gap < 0.35

    def test_corner_bars_present_when_requested(self, context):
        result = run_fig3(context=context, sigmas=[0.5], with_corners=True)
        p = result.points[0]
        assert p.corner_min_accuracy is not None
        assert p.corner_min_accuracy <= p.corner_max_accuracy

    def test_final_error_is_near_gaussian(self, context):
        result = run_fig3(
            context=context, sigmas=[0.5], with_corners=False
        )
        assert abs(result.error_excess_kurtosis) < 1.0


class TestAblations:
    def test_xi_ablation_optimized_not_worse(self, context):
        result = run_xi_ablation(context=context, objective="mac")
        assert result.optimized_cost_bits <= result.equal_cost_bits * 1.05

    def test_scheme_agreement(self, context):
        result = run_scheme_agreement(context=context)
        assert result.relative_gap < 0.8

    def test_profile_stability(self, context):
        result = run_profile_stability(
            context=context, image_counts=(8, 16), point_counts=(6,)
        )
        assert result.worst_spread < 0.5

    def test_negative_fraction_never_hurts(self, context):
        result = run_negative_fraction_ablation(context=context)
        assert result.cost_with_dropping <= result.cost_without_dropping

    def test_additivity_within_tolerance(self, context):
        """Eq. 6 check: measured joint sigma within 35% of the RSS value."""
        result = run_additivity_check(context=context, sigma=0.5)
        assert result.relative_error < 0.35


class TestCostComparison:
    def test_analytic_needs_fewer_evaluations(self, context):
        result = run_cost_comparison(context=context, accuracy_drop=0.05)
        assert result.evaluation_ratio >= 1.0
        assert result.analytic_total_seconds > 0

    def test_reoptimize_is_cheap(self, context):
        """Paper Sec. VI-A: changing objectives only reruns the last step."""
        result = run_cost_comparison(context=context, accuracy_drop=0.05)
        assert result.reoptimize_seconds < result.analytic_total_seconds


class TestChannelwiseAblation:
    def test_refinement_never_hurts_bits(self, context):
        from repro.experiments import run_channelwise_ablation

        result = run_channelwise_ablation(context=context, objective="input")
        assert result.channelwise_effective_bits <= (
            result.layerwise_effective_bits
        )

    def test_accuracy_preserved(self, context):
        from repro.experiments import run_channelwise_ablation

        result = run_channelwise_ablation(context=context, objective="input")
        assert result.channelwise_accuracy >= result.layerwise_accuracy - 0.05


class TestSuite:
    def test_selected_experiments_run_and_export(self, context, tmp_path):
        from repro.experiments import run_suite

        results = run_suite(
            CFG,
            only=["fig1", "ablation_negative_f"],
            output_dir=tmp_path,
        )
        assert "fig1" in results and "ablation_negative_f" in results
        assert (tmp_path / "fig1.json").exists()
        assert (tmp_path / "_timings.json").exists()

    def test_unknown_experiment_rejected(self):
        from repro.experiments import run_suite

        with pytest.raises(ValueError):
            run_suite(CFG, only=["figure_nine"])


class TestClippingAblation:
    def test_clipping_saves_bits_safely(self, context):
        from repro.experiments import run_clipping_ablation

        result = run_clipping_ablation(context=context, percentile=99.0)
        assert result.clipped_effective_bits <= result.unclipped_effective_bits
        assert result.clipped_accuracy >= result.unclipped_accuracy - 0.06


class TestBudgetAudit:
    def test_audit_runs_and_is_safe(self, context):
        from repro.experiments import run_budget_audit

        result = run_budget_audit(context=context, num_images=32)
        assert result.joint_utilization < 1.5
        assert len(result.layers) == len(
            context.network.analyzed_layer_names
        )


class TestDropSweep:
    def test_sweep_points_ordered_and_safe(self, context):
        from repro.experiments import run_drop_sweep

        result = run_drop_sweep(
            context=context, accuracy_drops=(0.02, 0.10)
        )
        assert len(result.points) == 2
        assert result.points[0].accuracy_drop < result.points[1].accuracy_drop
        for p in result.points:
            assert p.meets_constraint

    def test_looser_constraint_never_needs_more_bits(self, context):
        from repro.experiments import run_drop_sweep

        result = run_drop_sweep(
            context=context, accuracy_drops=(0.02, 0.05, 0.15)
        )
        assert result.is_monotone

    def test_rows_structure(self, context):
        from repro.experiments import run_drop_sweep

        result = run_drop_sweep(context=context, accuracy_drops=(0.05,))
        assert {"drop", "sigma", "eff_input_bits", "eff_mac_bits",
                "accuracy"} == set(result.rows()[0])
