"""Distributed sweep executor: plans, workers, chaos, bit-identity.

The contract under test (``docs/distributed.md``): report rows are
bit-identical to the serial scheduler for any worker count, any claim
interleaving, and any crash/steal/re-dispatch history — only
``elapsed_seconds`` and worker attribution may differ.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.cache.leases import LeaseSettings, acquire_lease
from repro.errors import ReproError
from repro.experiments import ExperimentConfig, SweepSpec, run_sweep
from repro.experiments.distributed import (
    DistributedSettings,
    cell_slug,
    collect_report,
    execute_cell,
    lease_path,
    load_cell_row,
    load_plan,
    plan_fingerprint,
    publish_plan,
    result_path,
    run_sweep_distributed,
    run_worker,
)

#: Smallest real substrate (matches tests/cache/test_scheduler.py).
TINY = ExperimentConfig(
    model="lenet",
    num_classes=8,
    train_count=96,
    test_count=48,
    profile_images=8,
    profile_points=4,
    search_trials=1,
    seed=1234,
)

SPEC = SweepSpec(
    models=("lenet",), accuracy_drops=(0.01, 0.05), objectives=("input", "mac")
)

#: Fast lease timing for tests; TTL still far above heartbeat.
FAST = LeaseSettings(ttl_seconds=5.0, heartbeat_seconds=0.1, poll_seconds=0.05)


def _synthetic_plan(tmp_path, spec=SPEC, seconds=0.05):
    return publish_plan(tmp_path, spec, TINY, synthetic_seconds=seconds)


def _identity_rows(report):
    return [cell.identity_dict() for cell in report.cells]


class TestPlan:
    def test_publish_then_load_roundtrip(self, tmp_path):
        plan = _synthetic_plan(tmp_path)
        loaded = load_plan(tmp_path)
        assert loaded == plan

    def test_republish_same_plan_resumes(self, tmp_path):
        first = _synthetic_plan(tmp_path)
        again = _synthetic_plan(tmp_path)
        assert again.fingerprint == first.fingerprint

    def test_mismatched_plan_refused(self, tmp_path):
        _synthetic_plan(tmp_path)
        other = replace(TINY, seed=999)
        with pytest.raises(ReproError, match="different sweep"):
            publish_plan(tmp_path, SPEC, other, synthetic_seconds=0.05)

    def test_edited_plan_file_refused(self, tmp_path):
        _synthetic_plan(tmp_path)
        plan_file = tmp_path / "sweep-plan.json"
        payload = json.loads(plan_file.read_text())
        payload["config"]["seed"] = 4321  # result-determining edit
        plan_file.write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="fingerprint"):
            load_plan(tmp_path)

    def test_missing_plan_is_a_clear_error(self, tmp_path):
        with pytest.raises(ReproError, match="not a distributed sweep"):
            load_plan(tmp_path)

    def test_fingerprint_keyed_fields_only(self):
        base = plan_fingerprint(SPEC, TINY)
        # Coordination/observability knobs must not change the identity.
        assert plan_fingerprint(SPEC, replace(TINY, jobs=4)) == base
        assert plan_fingerprint(SPEC, replace(TINY, events_dir="x")) == base
        assert plan_fingerprint(SPEC, replace(TINY, cache_dir="y")) == base
        # Result-determining fields must.
        assert plan_fingerprint(SPEC, replace(TINY, seed=1)) != base
        assert (
            plan_fingerprint(SweepSpec(models=("nin",)), TINY) != base
        )
        assert plan_fingerprint(SPEC, TINY, synthetic_seconds=1.0) != base


class TestWorker:
    def test_single_worker_drains_the_grid(self, tmp_path):
        plan = _synthetic_plan(tmp_path)
        report = run_worker(tmp_path, worker_id="w0", settings=FAST)
        assert report.cells_published == plan.spec.num_cells
        for cell in plan.spec.cells():
            assert result_path(tmp_path, cell).exists()
            assert not lease_path(tmp_path, cell).exists()

    def test_worker_skips_published_cells(self, tmp_path):
        _synthetic_plan(tmp_path)
        run_worker(tmp_path, worker_id="w0", settings=FAST)
        again = run_worker(tmp_path, worker_id="w1", settings=FAST)
        assert again.cells_claimed == 0

    def test_max_cells_bounds_one_workers_share(self, tmp_path):
        _synthetic_plan(tmp_path)
        report = run_worker(
            tmp_path, worker_id="w0", settings=FAST, max_cells=1
        )
        assert report.cells_claimed == 1

    def test_worker_writes_event_shard_and_record(self, tmp_path):
        _synthetic_plan(tmp_path)
        run_worker(tmp_path, worker_id="w0", settings=FAST)
        shard = tmp_path / "events-w0.jsonl"
        assert shard.exists()
        events = [
            json.loads(line) for line in shard.read_text().splitlines()
        ]
        kinds = [(e["type"], e["event"]) for e in events]
        assert ("run", "started") in kinds
        assert ("run", "finished") in kinds
        assert ("cell", "done") in kinds
        record = json.loads((tmp_path / "workers" / "w0.json").read_text())
        assert record["cells_published"] == SPEC.num_cells
        assert record["resources"]["peak_rss_bytes"] > 0

    def test_worker_waits_out_a_live_lease_then_finishes(self, tmp_path):
        plan = _synthetic_plan(
            tmp_path, spec=SweepSpec(models=("lenet",),
                                     accuracy_drops=(0.01,),
                                     objectives=("input",)),
        )
        cell = next(plan.spec.cells())
        held = acquire_lease(lease_path(tmp_path, cell), "other", FAST)

        def release_soon():
            time.sleep(0.3)
            held.release()

        releaser = threading.Thread(target=release_soon)
        releaser.start()
        report = run_worker(tmp_path, worker_id="w0", settings=FAST)
        releaser.join()
        assert report.cells_published == 1


class TestRace:
    def test_two_workers_race_one_cell_exactly_one_result(self, tmp_path):
        """Both workers contend for a single-cell grid; the loser must
        neither double-execute nor double-publish."""
        plan = _synthetic_plan(
            tmp_path,
            spec=SweepSpec(models=("lenet",), accuracy_drops=(0.01,),
                           objectives=("input",)),
            seconds=0.3,
        )
        reports = {}

        def attach(name):
            reports[name] = run_worker(
                tmp_path, worker_id=name, settings=FAST
            )

        threads = [
            threading.Thread(target=attach, args=(f"w{i}",))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        claims = sum(r.cells_claimed for r in reports.values())
        published = sum(r.cells_published for r in reports.values())
        assert claims == 1
        assert published == 1
        cell = next(plan.spec.cells())
        results = list((tmp_path / "cells").glob("*.json"))
        assert len(results) == 1
        assert load_cell_row(tmp_path, cell)["status"] == "ok"

    def test_many_workers_full_grid_identity(self, tmp_path):
        plan = _synthetic_plan(tmp_path, seconds=0.02)
        threads = [
            threading.Thread(
                target=run_worker,
                args=(tmp_path,),
                kwargs={"worker_id": f"w{i}", "settings": FAST},
            )
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        report = collect_report(tmp_path, plan)
        assert len(report.cells) == plan.spec.num_cells

    def test_duplicate_completion_publishes_identical_row(self, tmp_path):
        """A stalled worker finishing after a steal republishes the
        same bits — idempotent publication, last writer wins."""
        plan = _synthetic_plan(tmp_path)
        cell = next(plan.spec.cells())
        first = execute_cell(plan, cell)
        second = execute_cell(plan, cell)
        first.pop("elapsed_seconds", None)
        second.pop("elapsed_seconds", None)
        assert first == second


class TestChaos:
    def _spawn_worker(self, run_dir, worker_id, ttl):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker", str(run_dir),
                "--worker-id", worker_id,
                "--lease-ttl", str(ttl),
                "--heartbeat", "0.1",
                "--poll", "0.05",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def test_sigkilled_worker_lease_expires_and_cell_redispatches(
        self, tmp_path
    ):
        """The headline chaos contract: SIGKILL mid-cell, the lease
        expires after its TTL, another worker steals and re-executes,
        and the final report is bit-identical to serial."""
        spec = SweepSpec(
            models=("lenet",), accuracy_drops=(0.01, 0.05),
            objectives=("input",),
        )
        run_dir = tmp_path / "run"
        plan = publish_plan(run_dir, spec, TINY, synthetic_seconds=3.0)
        ttl = 0.8
        victim = self._spawn_worker(run_dir, "victim", ttl)
        try:
            # Wait until the victim holds a lease (is mid-cell).
            deadline = time.time() + 30.0
            leases = run_dir / "leases"
            while time.time() < deadline:
                if leases.is_dir() and list(leases.glob("*.lease")):
                    break
                time.sleep(0.05)
            held = list(leases.glob("*.lease"))
            assert held, "victim never claimed a cell"
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10)
        finally:
            if victim.poll() is None:  # pragma: no cover - cleanup
                victim.kill()
        assert not list((run_dir / "cells").glob("*.json"))
        # The orphaned lease is still on disk, heartbeat dead.
        assert list(leases.glob("*.lease"))
        rescuer = run_worker(
            run_dir,
            worker_id="rescuer",
            settings=LeaseSettings(
                ttl_seconds=ttl, heartbeat_seconds=0.1, poll_seconds=0.05
            ),
        )
        assert rescuer.leases_stolen >= 1
        assert rescuer.cells_published == spec.num_cells
        distributed = collect_report(run_dir, plan)
        serial_dir = tmp_path / "serial"
        serial_plan = publish_plan(
            serial_dir, spec, TINY, synthetic_seconds=3.0
        )
        run_worker(serial_dir, worker_id="solo", settings=FAST)
        serial = collect_report(serial_dir, serial_plan)
        assert _identity_rows(distributed) == _identity_rows(serial)

    def test_failed_cell_publishes_failure_row_not_livelock(self, tmp_path):
        """A deterministically-crashing cell must not re-dispatch
        forever: the failure row is published and the grid completes."""
        bad = replace(TINY, model="lenet", train_count=-1)  # invalid
        spec = SweepSpec(
            models=("lenet",), accuracy_drops=(0.01,), objectives=("input",)
        )
        plan = publish_plan(tmp_path, spec, bad)
        report = run_worker(tmp_path, worker_id="w0", settings=FAST)
        assert report.cells_published == 1
        row = load_cell_row(tmp_path, next(plan.spec.cells()))
        assert row["status"] == "failed"
        assert row["failure"]["error_class"]
        collected = collect_report(tmp_path, plan)
        assert len(collected.failures) == 1
        assert collected.failures[0].failure.error_class


class TestCoordinator:
    def test_thread_fanout_identity_across_worker_counts(self, tmp_path):
        reports = {}
        for workers in (1, 3):
            reports[workers] = run_sweep_distributed(
                SPEC,
                TINY,
                distribution=DistributedSettings(
                    workers=workers, spawn="thread"
                ),
                lease=FAST,
                run_dir=tmp_path / f"w{workers}",
                synthetic_seconds=0.05,
            )
        assert _identity_rows(reports[1]) == _identity_rows(reports[3])
        assert len(reports[1].cells) == SPEC.num_cells

    def test_rows_in_grid_order_regardless_of_completion(self, tmp_path):
        report = run_sweep_distributed(
            SPEC,
            TINY,
            distribution=DistributedSettings(workers=3, spawn="thread"),
            lease=FAST,
            run_dir=tmp_path,
            synthetic_seconds=0.05,
        )
        expected = [
            (model, drop, objective) for model, drop, objective in SPEC.cells()
        ]
        actual = [
            (cell.model, cell.accuracy_drop, cell.objective)
            for cell in report.cells
        ]
        assert actual == expected

    def test_incomplete_run_collect_raises(self, tmp_path):
        plan = _synthetic_plan(tmp_path)
        run_worker(tmp_path, worker_id="w0", settings=FAST, max_cells=1)
        with pytest.raises(ReproError, match="incomplete"):
            collect_report(tmp_path, plan)

    def test_resume_executes_only_missing_cells(self, tmp_path):
        _synthetic_plan(tmp_path)
        run_worker(tmp_path, worker_id="w0", settings=FAST, max_cells=2)
        report = run_sweep_distributed(
            SPEC,
            TINY,
            distribution=DistributedSettings(workers=1, spawn="thread"),
            lease=FAST,
            run_dir=tmp_path,
            synthetic_seconds=0.05,
        )
        assert len(report.cells) == SPEC.num_cells
        record = json.loads(
            (tmp_path / "workers" / "w0.json").read_text()
        )
        assert record["cells_published"] == 2  # first worker's share kept

    def test_manifest_folds_worker_resources(self, tmp_path):
        run_sweep_distributed(
            SPEC,
            TINY,
            distribution=DistributedSettings(workers=2, spawn="thread"),
            lease=FAST,
            run_dir=tmp_path,
            synthetic_seconds=0.05,
        )
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["num_cells"] == SPEC.num_cells
        assert manifest["num_workers"] == 2
        assert manifest["cells_per_second"] > 0
        assert manifest["manifest"]["config_hash"]
        for record in manifest["workers"].values():
            assert record["resources"]["peak_rss_bytes"] > 0

    def test_bad_settings_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="at least one worker"):
            run_sweep_distributed(
                SPEC, TINY,
                distribution=DistributedSettings(workers=0),
                run_dir=tmp_path,
            )
        with pytest.raises(ReproError, match="spawn"):
            run_sweep_distributed(
                SPEC, TINY,
                distribution=DistributedSettings(workers=1, spawn="mpi"),
                run_dir=tmp_path,
            )


@pytest.mark.slow
class TestRealCellIdentity:
    def test_distributed_real_grid_bit_identical_to_serial(self, tmp_path):
        spec = SweepSpec(
            models=("lenet",), accuracy_drops=(0.05,),
            objectives=("input", "mac"),
        )
        serial = run_sweep(spec, TINY)
        distributed = run_sweep_distributed(
            spec,
            TINY,
            distribution=DistributedSettings(workers=2, spawn="thread"),
            lease=FAST,
            run_dir=tmp_path,
        )
        assert _identity_rows(distributed) == _identity_rows(serial)

    def test_cell_slug_roundtrip_unique(self):
        slugs = {cell_slug(*cell) for cell in SPEC.cells()}
        assert len(slugs) == SPEC.num_cells
