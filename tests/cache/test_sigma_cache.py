"""Persistent memoization of sigma-search accuracy evaluations."""

import pytest

from repro.analysis import find_sigma
from repro.analysis.sigma_search import Scheme1Evaluator, Scheme2Evaluator
from repro.cache import ResultCache
from repro.config import SearchSettings

TEST_SEED = 1234


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "store")


@pytest.fixture(scope="module")
def search_dataset(datasets):
    __, test = datasets
    return test.subset(48)


def scheme1(lenet, dataset, profiles, cache):
    return Scheme1Evaluator(
        lenet,
        dataset,
        profiles,
        num_trials=1,
        seed=TEST_SEED,
        cache=cache,
    )


class TestScheme1Persistence:
    def test_fresh_evaluator_reuses_stored_value(
        self, lenet, search_dataset, lenet_profiles, cache
    ):
        profiles = {p.name: p for p in lenet_profiles}
        first = scheme1(lenet, search_dataset, profiles, cache)
        value = first.accuracy(0.05)
        assert first.cache_hits == 0
        second = scheme1(lenet, search_dataset, profiles, cache)
        assert second.accuracy(0.05) == value
        assert second.cache_hits == 1

    def test_sigma_bits_are_the_key(
        self, lenet, search_dataset, lenet_profiles, cache
    ):
        profiles = {p.name: p for p in lenet_profiles}
        scheme1(lenet, search_dataset, profiles, cache).accuracy(0.05)
        fresh = scheme1(lenet, search_dataset, profiles, cache)
        fresh.accuracy(0.06)
        assert fresh.cache_hits == 0

    def test_no_cache_evaluator_unaffected(
        self, lenet, search_dataset, lenet_profiles, cache
    ):
        profiles = {p.name: p for p in lenet_profiles}
        cached = scheme1(lenet, search_dataset, profiles, cache)
        plain = scheme1(lenet, search_dataset, profiles, None)
        assert plain.accuracy(0.05) == cached.accuracy(0.05)


class TestScheme2Persistence:
    def test_fresh_evaluator_reuses_stored_value(
        self, lenet, search_dataset, cache
    ):
        first = Scheme2Evaluator(
            lenet, search_dataset, seed=TEST_SEED, cache=cache
        )
        value = first.accuracy(0.3)
        second = Scheme2Evaluator(
            lenet, search_dataset, seed=TEST_SEED, cache=cache
        )
        assert second.accuracy(0.3) == value
        assert second.cache_hits == 1


class TestFindSigmaSavings:
    def test_warm_search_reports_saved_evaluations(
        self, lenet, search_dataset, cache
    ):
        settings = SearchSettings(
            tolerance=0.05, num_trials=1, seed=TEST_SEED
        )

        def search():
            evaluator = Scheme2Evaluator(
                lenet, search_dataset, seed=TEST_SEED, cache=cache
            )
            baseline = evaluator.accuracy(0.0)
            return find_sigma(
                evaluator.accuracy,
                baseline,
                0.05,
                settings,
                evaluations_saved_fn=lambda: evaluator.cache_hits,
            )

        cold = search()
        warm = search()
        assert warm.sigma == cold.sigma
        assert warm.achieved_accuracy == cold.achieved_accuracy
        assert warm.evaluations == cold.evaluations
        # Every unique probe of the warm search was answered by the
        # persistent store.
        assert warm.num_evaluations_saved >= len(warm.evaluations)
        assert warm.num_evaluations_saved > cold.num_evaluations_saved
