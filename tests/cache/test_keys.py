"""Cache-key stability: what must change a key, and what must not."""

import numpy as np
import pytest

from repro.cache import (
    array_digest,
    dataset_digest,
    make_key,
    network_digest,
)
from repro.cache import keys as keys_module
from repro.data import SyntheticImageNet


class TestMakeKey:
    def test_deterministic(self):
        parts = {"kind": "x", "seed": 3, "grid": [0.1, 0.2]}
        assert make_key(parts) == make_key(dict(parts))

    def test_insertion_order_irrelevant(self):
        a = make_key({"a": 1, "b": 2})
        b = make_key({"b": 2, "a": 1})
        assert a == b

    def test_every_part_matters(self):
        base = {"kind": "x", "seed": 3, "grid": [0.1, 0.2]}
        assert make_key(base) != make_key({**base, "seed": 4})
        assert make_key(base) != make_key({**base, "grid": [0.1, 0.3]})
        assert make_key(base) != make_key({**base, "kind": "y"})

    def test_code_salt_in_every_key(self, monkeypatch):
        parts = {"kind": "x"}
        before = make_key(parts)
        monkeypatch.setattr(keys_module, "CODE_SALT", "repro-cache-v999")
        assert make_key(parts) != before

    def test_floats_keyed_on_exact_bits(self):
        sigma = 0.1
        nudged = np.nextafter(sigma, 1.0)
        assert make_key({"sigma": sigma}) != make_key({"sigma": nudged})

    def test_int_and_float_distinct(self):
        assert make_key({"v": 1}) != make_key({"v": 1.0})

    def test_arrays_keyed_on_content(self):
        grid = np.linspace(0.0, 1.0, 5)
        assert make_key({"grid": grid}) == make_key({"grid": grid.copy()})
        bumped = grid.copy()
        bumped[2] = np.nextafter(bumped[2], 2.0)
        assert make_key({"grid": grid}) != make_key({"grid": bumped})

    def test_unkeyable_value_raises(self):
        with pytest.raises(TypeError):
            make_key({"v": object()})


class TestArrayDigest:
    def test_content_sensitivity(self, rng):
        a = rng.normal(size=(4, 3))
        b = a.copy()
        b[0, 0] = np.nextafter(b[0, 0], np.inf)
        assert array_digest(a) == array_digest(a.copy())
        assert array_digest(a) != array_digest(b)

    def test_dtype_sensitivity(self):
        a = np.ones((3, 3), dtype=np.float64)
        assert array_digest(a) != array_digest(a.astype(np.float32))

    def test_shape_sensitivity(self):
        a = np.arange(12, dtype=np.float64)
        assert array_digest(a.reshape(3, 4)) != array_digest(a.reshape(4, 3))

    def test_memory_layout_irrelevant(self, rng):
        c_order = np.ascontiguousarray(rng.normal(size=(5, 7)))
        f_order = np.asfortranarray(c_order)
        assert array_digest(c_order) == array_digest(f_order)


class TestNetworkDigest:
    def test_stable_across_calls(self, lenet):
        assert network_digest(lenet) == network_digest(lenet)

    def test_weight_change_changes_digest(self, fresh_lenet):
        before = network_digest(fresh_lenet)
        for layer in fresh_lenet.layers:
            weight = getattr(layer, "weight", None)
            if isinstance(weight, np.ndarray):
                weight.flat[0] = np.nextafter(weight.flat[0], np.inf)
                break
        else:  # pragma: no cover - lenet always has a weighted layer
            pytest.fail("no weighted layer found")
        assert network_digest(fresh_lenet) != before


class TestDatasetDigest:
    def test_images_and_labels_matter(self, datasets):
        __, test = datasets
        base = dataset_digest(test)
        assert base == dataset_digest(test)
        other = SyntheticImageNet(num_classes=8, seed=99).train_test(8, 8)[1]
        assert dataset_digest(other) != base
