"""Incremental sweep scheduler: grid semantics and naive-loop parity."""

from dataclasses import replace

import pytest

from repro.errors import ReproError
from repro.experiments import (
    ExperimentConfig,
    SweepSpec,
    clear_context_cache,
    make_context,
    run_sweep,
)

TINY = ExperimentConfig(
    model="lenet",
    num_classes=8,
    train_count=96,
    test_count=48,
    profile_images=8,
    profile_points=4,
    search_trials=1,
    seed=1234,
)


class TestSweepSpec:
    def test_cell_order_is_model_major_drops_before_objectives(self):
        spec = SweepSpec(
            models=("a", "b"),
            accuracy_drops=(0.01, 0.05),
            objectives=("input", "mac"),
        )
        cells = list(spec.cells())
        assert spec.num_cells == len(cells) == 8
        assert cells[0] == ("a", 0.01, "input")
        assert cells[1] == ("a", 0.01, "mac")
        assert cells[2] == ("a", 0.05, "input")
        assert cells[4] == ("b", 0.01, "input")

    def test_empty_spec_rejected(self):
        with pytest.raises(ReproError):
            run_sweep(SweepSpec(models=()))


class TestRunSweep:
    @pytest.fixture(scope="class")
    def report(self):
        spec = SweepSpec(
            models=("lenet",),
            accuracy_drops=(0.05,),
            objectives=("input", "mac"),
        )
        yield run_sweep(spec, TINY)
        clear_context_cache()

    def test_covers_every_cell(self, report):
        assert [(c.accuracy_drop, c.objective) for c in report.cells] == [
            (0.05, "input"),
            (0.05, "mac"),
        ]
        assert all(c.elapsed_seconds >= 0 for c in report.cells)

    def test_matches_naive_per_cell_loop(self, report):
        """Scheduling only reorders work; every number is identical."""
        context = make_context(TINY, use_cache=False)
        for cell in report.cells:
            outcome = context.optimizer.optimize(
                cell.objective, accuracy_drop=cell.accuracy_drop
            )
            assert cell.bitwidths == outcome.bitwidths
            assert cell.sigma == outcome.result.sigma
            assert cell.baseline_accuracy == outcome.baseline_accuracy
            assert cell.validated_accuracy == outcome.validated_accuracy

    def test_report_rendering(self, report):
        lines = report.lines()
        assert len(lines) == len(report.cells) + 1
        assert "2 cells" in lines[-1]
        assert "(off)" in lines[-1]  # no cache directory configured
        rows = report.rows()
        assert rows[0]["model"] == "lenet"
        assert rows[0]["meets_constraint"] in (True, False, None)

    def test_cache_counters_empty_without_cache(self, report):
        assert report.cache_counters == {}

    def test_keep_going_records_failure_and_continues(self):
        spec = SweepSpec(
            models=("lenet",),
            accuracy_drops=(0.05,),
            objectives=("input", "mac"),
        )

        def explode_on_mac(optimizer, objective, drop):
            if objective == "mac":
                raise ValueError("injected cell failure")
            return optimizer.optimize(objective, accuracy_drop=drop)

        try:
            report = run_sweep(
                spec, TINY, keep_going=True, optimize_fn=explode_on_mac
            )
        finally:
            clear_context_cache()
        assert [c.objective for c in report.cells] == ["input"]
        assert len(report.failures) == 1
        failed = report.failures[0]
        assert failed.objective == "mac"
        assert failed.failure.error_class == "ValueError"
        row = failed.as_dict()
        assert row["status"] == "failed"
        assert row["traceback_digest"]
        lines = report.lines()
        assert any("[FAILED]" in line for line in lines)
        assert "1 failed" in lines[-1]

    def test_fail_fast_remains_the_default(self):
        spec = SweepSpec(
            models=("lenet",), accuracy_drops=(0.05,), objectives=("mac",)
        )

        def explode(optimizer, objective, drop):
            raise ValueError("injected cell failure")

        try:
            with pytest.raises(ValueError):
                run_sweep(spec, TINY, optimize_fn=explode)
        finally:
            clear_context_cache()

    def test_context_failure_fails_every_cell_of_that_model(self):
        spec = SweepSpec(
            models=("lenet",),
            accuracy_drops=(0.01, 0.05),
            objectives=("input",),
        )

        def broken_factory(config):
            raise RuntimeError("no substrate for you")

        report = run_sweep(
            spec, TINY, keep_going=True, context_factory=broken_factory
        )
        assert report.cells == []
        assert len(report.failures) == spec.num_cells
        assert {f.failure.stage for f in report.failures} == {"context"}

    def test_persistent_rerun_restores_every_cell(self, tmp_path):
        clear_context_cache()
        spec = SweepSpec(
            models=("lenet",), accuracy_drops=(0.05,), objectives=("input",)
        )
        config = replace(TINY, cache_dir=str(tmp_path / "store"))
        try:
            cold = run_sweep(spec, config)
            clear_context_cache()  # force a fresh optimizer
            warm = run_sweep(spec, config)
        finally:
            clear_context_cache()
        assert warm.cache_counters.get("hits", 0) > 0
        assert warm.cache_counters.get("misses", 0) == 0
        assert [c.as_dict() for c in cold.cells] != []
        for cold_cell, warm_cell in zip(cold.cells, warm.cells):
            cold_row = cold_cell.as_dict()
            warm_row = warm_cell.as_dict()
            cold_row.pop("elapsed_seconds")
            warm_row.pop("elapsed_seconds")
            assert cold_row == warm_row


class TestSweepEvents:
    """The scheduler's event-bus emission (and its zero numeric effect)."""

    SPEC = SweepSpec(
        models=("lenet",), accuracy_drops=(0.05,), objectives=("input",)
    )
    CELL = "lenet/drop=0.05/input"

    def _events(self, run_dir):
        from repro.telemetry.events import read_bus_events, validate_bus_path

        path = run_dir / "events.jsonl"
        assert validate_bus_path(path) == []
        return read_bus_events(path)

    def test_events_on_is_bit_identical_to_off(self, tmp_path):
        clear_context_cache()
        try:
            plain = run_sweep(self.SPEC, TINY)
            clear_context_cache()
            emitting = run_sweep(
                self.SPEC,
                replace(TINY, events_dir=str(tmp_path / "run")),
            )
        finally:
            clear_context_cache()
        assert len(plain.cells) == len(emitting.cells) == 1
        for off_cell, on_cell in zip(plain.cells, emitting.cells):
            off_row = off_cell.as_dict()
            on_row = on_cell.as_dict()
            off_row.pop("elapsed_seconds")
            on_row.pop("elapsed_seconds")
            assert off_row == on_row

        events = self._events(tmp_path / "run")
        run_events = [e for e in events if e["type"] == "run"]
        assert [e["event"] for e in run_events] == ["started", "finished"]
        assert run_events[0]["attrs"]["total_cells"] == 1
        assert run_events[0]["attrs"]["kind"] == "sweep"
        assert run_events[-1]["attrs"]["cells_done"] == 1

        cell_events = [e for e in events if e["type"] == "cell"]
        assert [e["event"] for e in cell_events] == [
            "queued", "running", "done",
        ]
        assert {e["name"] for e in cell_events} == {self.CELL}
        done = cell_events[-1]["attrs"]
        assert done["elapsed_seconds"] >= 0
        assert done["peak_rss_bytes"] > 0

        # The engine streams its stage lifecycle into the same file
        # (per-layer task events additionally appear under pooled runs).
        stages = {e["name"] for e in events if e["type"] == "stage"}
        assert {"engine.reference", "engine.plan",
                "engine.replay", "engine.reduce"} <= stages

    def test_warm_rerun_emits_cached_hit(self, tmp_path):
        clear_context_cache()
        config = replace(
            TINY,
            cache_dir=str(tmp_path / "store"),
            events_dir=str(tmp_path / "warm"),
        )
        try:
            run_sweep(self.SPEC, replace(config, events_dir=""))
            clear_context_cache()
            run_sweep(self.SPEC, config)
        finally:
            clear_context_cache()
        events = self._events(tmp_path / "warm")
        states = [e["event"] for e in events if e["type"] == "cell"]
        assert "cached-hit" in states
        done = next(
            e for e in events
            if e["type"] == "cell" and e["event"] == "done"
        )
        assert done["attrs"]["cache_hits"] > 0
        assert done["attrs"]["cache_misses"] == 0

    def test_failed_cell_emits_failed_event(self, tmp_path):
        def explode(optimizer, objective, drop):
            raise ValueError("injected cell failure")

        clear_context_cache()
        try:
            run_sweep(
                self.SPEC,
                replace(TINY, events_dir=str(tmp_path / "run")),
                keep_going=True,
                optimize_fn=explode,
            )
        finally:
            clear_context_cache()
        events = self._events(tmp_path / "run")
        failed = [
            e for e in events
            if e["type"] == "cell" and e["event"] == "failed"
        ]
        assert len(failed) == 1
        assert failed[0]["name"] == self.CELL
        assert failed[0]["attrs"]["error_class"] == "ValueError"

    def test_no_events_dir_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        clear_context_cache()
        try:
            run_sweep(self.SPEC, TINY)
        finally:
            clear_context_cache()
        assert list(tmp_path.rglob("events*.jsonl")) == []
