"""CODE_SALT bump semantics: total miss, no corruption.

Bumping :data:`repro.cache.keys.CODE_SALT` is the sanctioned way to
invalidate every cached result after a numerics change.  Its contract
has two halves: *every* pre-bump entry must miss under the new salt
(no stale bits can survive), and the old store must remain physically
intact — ``repro cache verify`` still passes, because invalidation is
by key divergence, not by mutating or corrupting entries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import ResultCache, keys, make_key
from repro.cache.maintenance import verify


@pytest.fixture
def populated(tmp_path):
    cache = ResultCache(tmp_path / "store")
    parts_list = [
        {"kind": "fit", "layer": f"conv{i}", "digest": f"d{i}", "x": i * 0.5}
        for i in range(6)
    ]
    entries = []
    for i, parts in enumerate(parts_list):
        key = make_key(parts)
        if i % 2 == 0:
            cache.put_json("fits", key, {"lam": i * 1.5, "theta": -i})
        else:
            cache.put_arrays("fits", key, {"cells": np.full((3, 3), i)})
        entries.append((parts, key, i % 2 == 0))
    return cache, entries


def test_salt_bump_misses_every_entry(populated, monkeypatch):
    cache, entries = populated
    # Sanity: pre-bump, every entry hits under its recomputed key.
    for parts, key, is_json in entries:
        assert make_key(parts) == key
        got = (
            cache.get_json("fits", key)
            if is_json
            else cache.get_arrays("fits", key)
        )
        assert got is not None

    monkeypatch.setattr(keys, "CODE_SALT", "repro-cache-v2-test-bump")
    for parts, old_key, is_json in entries:
        new_key = make_key(parts)
        assert new_key != old_key, "bumped salt must change every key"
        got = (
            cache.get_json("fits", new_key)
            if is_json
            else cache.get_arrays("fits", new_key)
        )
        assert got is None, "post-bump lookups must all miss"


def test_old_store_still_verifies_after_bump(populated, monkeypatch):
    cache, entries = populated
    monkeypatch.setattr(keys, "CODE_SALT", "repro-cache-v2-test-bump")
    report = verify(cache.directory)
    assert report.checked == len(entries)
    assert report.ok == len(entries)
    assert not report.corrupt
    # And the old entries are still readable by their original keys:
    # invalidation is purely a key-space divergence.
    for parts, old_key, is_json in entries:
        got = (
            cache.get_json("fits", old_key)
            if is_json
            else cache.get_arrays("fits", old_key)
        )
        assert got is not None


def test_bump_changes_no_bits_on_disk(populated, monkeypatch):
    cache, entries = populated
    before = {
        p: p.read_bytes()
        for p in sorted(cache.directory.rglob("*"))
        if p.is_file()
    }
    monkeypatch.setattr(keys, "CODE_SALT", "repro-cache-v2-test-bump")
    for parts, _old, _is_json in entries:
        cache.get_json("fits", make_key(parts))
    after = {
        p: p.read_bytes()
        for p in sorted(cache.directory.rglob("*"))
        if p.is_file()
    }
    assert before == after
