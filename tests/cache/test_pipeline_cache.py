"""End-to-end pipeline caching: cold == warm, corruption, auditing."""

import pytest

from repro import PrecisionOptimizer
from repro.cache import ResultCache
from repro.config import ParallelSettings, ProfileSettings, SearchSettings

TEST_SEED = 1234

PROFILE = ProfileSettings(
    num_images=8, num_delta_points=4, num_repeats=1, seed=TEST_SEED
)
SEARCH = SearchSettings(tolerance=0.05, num_trials=1, seed=TEST_SEED)


def make_optimizer(lenet, dataset, cache, **kwargs):
    """A fresh optimizer: only the persistent cache can carry state."""
    return PrecisionOptimizer(
        lenet,
        dataset,
        profile_settings=PROFILE,
        search_settings=SEARCH,
        scheme="scheme2",
        cache=cache,
        **kwargs,
    )


def fingerprint(outcome):
    return {
        "bitwidths": dict(outcome.bitwidths),
        "xi": dict(outcome.result.xi),
        "deltas": dict(outcome.result.deltas),
        "sigma": outcome.result.sigma,
        "baseline": outcome.baseline_accuracy,
        "validated": outcome.validated_accuracy,
        "degraded": outcome.degraded,
    }


@pytest.fixture()
def dataset(datasets):
    __, test = datasets
    return test.subset(48)


class TestPipelineCache:
    def test_cache_off_by_default(self, lenet, dataset):
        optimizer = PrecisionOptimizer(lenet, dataset)
        assert optimizer.cache is None

    def test_cache_accepts_path_and_instance(self, lenet, dataset, tmp_path):
        by_path = make_optimizer(lenet, dataset, str(tmp_path / "a"))
        assert isinstance(by_path.cache, ResultCache)
        store = ResultCache(tmp_path / "b")
        assert make_optimizer(lenet, dataset, store).cache is store

    def test_cold_warm_bit_identity(self, lenet, dataset, tmp_path):
        cache = tmp_path / "store"
        cold = make_optimizer(lenet, dataset, cache).optimize(
            "input", accuracy_drop=0.05
        )
        warm_opt = make_optimizer(lenet, dataset, cache)
        warm = warm_opt.optimize("input", accuracy_drop=0.05)
        assert fingerprint(warm) == fingerprint(cold)
        assert warm_opt.cache.counters.hits > 0
        assert warm_opt.cache.counters.misses == 0

    def test_warm_run_matches_uncached(self, lenet, dataset, tmp_path):
        cache = tmp_path / "store"
        make_optimizer(lenet, dataset, cache).optimize("input", 0.05)
        warm = make_optimizer(lenet, dataset, cache).optimize("input", 0.05)
        plain = make_optimizer(lenet, dataset, None).optimize("input", 0.05)
        assert fingerprint(warm) == fingerprint(plain)

    def test_warm_run_never_profiles(self, lenet, dataset, tmp_path, monkeypatch):
        """A full outcome hit restores without touching the profiler."""
        cache = tmp_path / "store"
        make_optimizer(lenet, dataset, cache).optimize("input", 0.05)
        from repro.analysis import profiler as profiler_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("profiler ran on a warm outcome")

        monkeypatch.setattr(
            profiler_module.ErrorProfiler, "profile_with_grids", boom
        )
        warm = make_optimizer(lenet, dataset, cache).optimize("input", 0.05)
        assert warm.meets_constraint

    def test_parallel_knobs_share_entries(self, lenet, dataset, tmp_path):
        """jobs/backend are excluded from every key by design."""
        cache = tmp_path / "store"
        cold = make_optimizer(lenet, dataset, cache).optimize("input", 0.05)
        warm_opt = make_optimizer(
            lenet,
            dataset,
            cache,
            parallel=ParallelSettings(jobs=2, trial_batch=1),
        )
        warm = warm_opt.optimize("input", 0.05)
        assert fingerprint(warm) == fingerprint(cold)
        assert warm_opt.cache.counters.misses == 0

    def test_corrupt_store_recomputes_transparently(
        self, lenet, dataset, tmp_path
    ):
        cache_dir = tmp_path / "store"
        cold = make_optimizer(lenet, dataset, cache_dir).optimize(
            "input", 0.05
        )
        store = ResultCache(cache_dir)
        for path in store.objects_dir.rglob("*"):
            if path.is_file():
                path.write_bytes(b"flipped bits everywhere")
        recompute_opt = make_optimizer(lenet, dataset, cache_dir)
        recomputed = recompute_opt.optimize("input", 0.05)
        assert fingerprint(recomputed) == fingerprint(cold)
        assert recompute_opt.cache.counters.corrupt > 0

    def test_restored_outcome_is_audited(
        self, lenet, dataset, tmp_path, monkeypatch
    ):
        """Cache restoration is not a verification bypass (repro.check)."""
        cache = tmp_path / "store"
        make_optimizer(lenet, dataset, cache).optimize("input", 0.05)
        audited = []
        original = PrecisionOptimizer._audit_allocation

        def spy(self, result):
            audited.append(result)
            return original(self, result)

        monkeypatch.setattr(PrecisionOptimizer, "_audit_allocation", spy)
        warm_opt = make_optimizer(lenet, dataset, cache)
        warm = warm_opt.optimize("input", 0.05)
        assert warm_opt.cache.counters.hits > 0
        assert audited and audited[0] is warm.result

    def test_callable_objective_bypasses_outcome_cache(
        self, lenet, dataset, tmp_path
    ):
        """Custom objectives are not JSON-able; only named ones persist."""
        from repro.optimize import input_bandwidth_objective

        cache = tmp_path / "store"
        opt = make_optimizer(lenet, dataset, cache)
        objective = input_bandwidth_objective(opt.stats())
        opt.optimize(objective, accuracy_drop=0.05)
        assert not list((opt.cache.objects_dir / "outcome").rglob("*.json"))
