"""Lease protocol unit tests: atomic claim, heartbeat, TTL, steal."""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.cache.leases import (
    Lease,
    LeaseHeartbeat,
    LeaseSettings,
    acquire_lease,
    lease_age_seconds,
    lease_is_expired,
    read_lease,
    steal_expired_lease,
)


@pytest.fixture
def lease_path(tmp_path):
    return tmp_path / "cell.lease"


class TestAcquire:
    def test_acquire_creates_file_and_returns_lease(self, lease_path):
        lease = acquire_lease(lease_path, "w0")
        assert isinstance(lease, Lease)
        assert lease.owner == "w0"
        assert lease_path.exists()

    def test_second_acquire_loses(self, lease_path):
        assert acquire_lease(lease_path, "w0") is not None
        assert acquire_lease(lease_path, "w1") is None

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "run" / "leases" / "cell.lease"
        assert acquire_lease(path, "w0") is not None

    def test_body_is_advisory_metadata(self, lease_path):
        lease = acquire_lease(lease_path, "w0", LeaseSettings(ttl_seconds=7.0))
        body = read_lease(lease_path)
        assert body["owner"] == "w0"
        assert body["token"] == lease.token
        assert body["pid"] == os.getpid()
        assert body["ttl_seconds"] == 7.0

    def test_concurrent_acquire_exactly_one_winner(self, lease_path):
        """N threads race the O_CREAT|O_EXCL claim; exactly one wins."""
        barrier = threading.Barrier(8)
        wins = []

        def contender(name):
            barrier.wait()
            if acquire_lease(lease_path, name) is not None:
                wins.append(name)

        threads = [
            threading.Thread(target=contender, args=(f"w{i}",))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1

    def test_torn_body_still_honoured_via_mtime(self, lease_path):
        acquire_lease(lease_path, "w0")
        lease_path.write_bytes(b'{"own')  # damaged mid-write
        assert read_lease(lease_path) is None
        # Liveness comes from the mtime clock, not the body.
        assert not lease_is_expired(lease_path, LeaseSettings(ttl_seconds=60))
        assert acquire_lease(lease_path, "w1") is None


class TestRenewRelease:
    def test_renew_bumps_heartbeat_clock(self, lease_path):
        lease = acquire_lease(lease_path, "w0")
        past = time.time() - 100.0
        os.utime(lease_path, (past, past))
        assert lease_age_seconds(lease_path) > 90
        assert lease.renew() is True
        assert lease_age_seconds(lease_path) < 5

    def test_renew_after_steal_reports_loss(self, lease_path):
        lease = acquire_lease(lease_path, "w0")
        lease_path.unlink()
        assert lease.renew() is False

    def test_release_removes_file(self, lease_path):
        lease = acquire_lease(lease_path, "w0")
        lease.release()
        assert not lease_path.exists()

    def test_release_of_stolen_lease_is_not_an_error(self, lease_path):
        lease = acquire_lease(lease_path, "w0")
        lease_path.unlink()
        lease.release()  # no raise

    def test_release_reopens_the_claim(self, lease_path):
        acquire_lease(lease_path, "w0").release()
        assert acquire_lease(lease_path, "w1") is not None


class TestExpiry:
    def test_fresh_lease_not_expired(self, lease_path):
        acquire_lease(lease_path, "w0")
        assert not lease_is_expired(lease_path, LeaseSettings(ttl_seconds=60))

    def test_stale_mtime_expires(self, lease_path):
        acquire_lease(lease_path, "w0")
        past = time.time() - 120.0
        os.utime(lease_path, (past, past))
        assert lease_is_expired(lease_path, LeaseSettings(ttl_seconds=60))

    def test_missing_file_is_released_not_expired(self, lease_path):
        assert lease_age_seconds(lease_path) is None
        assert not lease_is_expired(lease_path, LeaseSettings(ttl_seconds=60))


class TestSteal:
    def _expire(self, path):
        past = time.time() - 120.0
        os.utime(path, (past, past))

    def test_steal_of_live_lease_refused(self, lease_path):
        acquire_lease(lease_path, "w0")
        settings = LeaseSettings(ttl_seconds=60)
        assert steal_expired_lease(lease_path, "w1", settings) is None

    def test_steal_of_expired_lease_wins(self, lease_path):
        acquire_lease(lease_path, "w0")
        self._expire(lease_path)
        settings = LeaseSettings(ttl_seconds=60)
        stolen = steal_expired_lease(lease_path, "w1", settings)
        assert stolen is not None
        assert stolen.owner == "w1"
        assert read_lease(lease_path)["owner"] == "w1"
        # No stale tombs left behind.
        tombs = list(lease_path.parent.glob("*.stale-*"))
        assert tombs == []

    def test_concurrent_steal_exactly_one_winner(self, lease_path):
        acquire_lease(lease_path, "w0")
        self._expire(lease_path)
        settings = LeaseSettings(ttl_seconds=60)
        barrier = threading.Barrier(8)
        wins = []

        def stealer(name):
            barrier.wait()
            if steal_expired_lease(lease_path, name, settings) is not None:
                wins.append(name)

        threads = [
            threading.Thread(target=stealer, args=(f"s{i}",))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert read_lease(lease_path)["owner"] in {w for w in wins}


class TestHeartbeat:
    def test_heartbeat_keeps_lease_fresh(self, lease_path):
        settings = LeaseSettings(ttl_seconds=1.0, heartbeat_seconds=0.05)
        lease = acquire_lease(lease_path, "w0", settings)
        with LeaseHeartbeat(lease, settings) as hb:
            time.sleep(0.4)
            assert lease_age_seconds(lease_path) < 0.5
            assert hb.lost is False

    def test_heartbeat_latches_lost_after_steal(self, lease_path):
        settings = LeaseSettings(ttl_seconds=1.0, heartbeat_seconds=0.05)
        lease = acquire_lease(lease_path, "w0", settings)
        hb = LeaseHeartbeat(lease, settings).start()
        try:
            lease_path.unlink()
            deadline = time.time() + 2.0
            while not hb.lost and time.time() < deadline:
                time.sleep(0.02)
            assert hb.lost is True
        finally:
            hb.stop()

    def test_effective_heartbeat_defaults_to_quarter_ttl(self):
        assert LeaseSettings(ttl_seconds=8.0).effective_heartbeat == 2.0
        assert (
            LeaseSettings(ttl_seconds=8.0, heartbeat_seconds=0.5)
            .effective_heartbeat
            == 0.5
        )
