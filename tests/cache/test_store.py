"""ResultCache store semantics: roundtrips, atomicity, corruption."""

import json

import numpy as np
import pytest

from repro.cache import ResultCache
from repro.cache.store import ARRAY_MAGIC, STORE_VERSION


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "store")


def entry_files(cache):
    return [p for p in cache.objects_dir.rglob("*") if p.is_file()]


KEY = "ab" + "0" * 62  # sha256-shaped


class TestJsonEntries:
    def test_roundtrip(self, cache):
        payload = {"accuracy": 0.875, "nested": {"xs": [1, 2.5, None]}}
        cache.put_json("sigma_eval", KEY, payload)
        assert cache.get_json("sigma_eval", KEY) == payload
        assert cache.counters.hits == 1
        assert cache.counters.writes == 1

    def test_missing_key_is_miss(self, cache):
        assert cache.get_json("sigma_eval", KEY) is None
        assert cache.counters.misses == 1
        assert cache.counters.hits == 0

    def test_namespaces_isolated(self, cache):
        cache.put_json("a", KEY, 1)
        assert cache.get_json("b", KEY) is None

    def test_garbage_bytes_are_a_miss_and_dropped(self, cache):
        path = cache.put_json("sigma_eval", KEY, {"accuracy": 0.5})
        path.write_bytes(b"\x00garbage\xff")
        assert cache.get_json("sigma_eval", KEY) is None
        assert cache.counters.corrupt == 1
        assert not path.exists()
        # A recompute-and-put cycle then works normally.
        cache.put_json("sigma_eval", KEY, {"accuracy": 0.5})
        assert cache.get_json("sigma_eval", KEY) == {"accuracy": 0.5}

    def test_checksum_tamper_detected(self, cache):
        path = cache.put_json("sigma_eval", KEY, {"accuracy": 0.5})
        envelope = json.loads(path.read_bytes())
        envelope["payload"] = json.dumps({"accuracy": 0.9})
        path.write_bytes(json.dumps(envelope).encode())
        assert cache.get_json("sigma_eval", KEY) is None
        assert cache.counters.corrupt == 1

    def test_version_mismatch_is_a_miss(self, cache):
        path = cache.put_json("sigma_eval", KEY, {"accuracy": 0.5})
        envelope = json.loads(path.read_bytes())
        envelope["version"] = STORE_VERSION + 1
        path.write_bytes(json.dumps(envelope).encode())
        assert cache.get_json("sigma_eval", KEY) is None


class TestArrayEntries:
    def test_roundtrip_bit_identical(self, cache, rng):
        arrays = {
            "sq_sums": rng.normal(size=(3, 8, 2)),
            "counts": np.arange(6, dtype=np.int64).reshape(3, 2),
        }
        cache.put_arrays("profile", KEY, arrays, meta={"layer": "conv1"})
        views = cache.get_arrays("profile", KEY)
        assert set(views) == {"sq_sums", "counts"}
        for name, original in arrays.items():
            assert views[name].dtype == original.dtype
            assert views[name].shape == original.shape
            np.testing.assert_array_equal(views[name], original)

    def test_views_are_read_only(self, cache, rng):
        cache.put_arrays("profile", KEY, {"x": rng.normal(size=4)})
        views = cache.get_arrays("profile", KEY)
        with pytest.raises(ValueError):
            views["x"][0] = 0.0

    def test_missing_key_is_miss(self, cache):
        assert cache.get_arrays("profile", KEY) is None
        assert cache.counters.misses == 1

    def test_truncated_entry_dropped(self, cache, rng):
        path = cache.put_arrays("profile", KEY, {"x": rng.normal(size=64)})
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert cache.get_arrays("profile", KEY) is None
        assert cache.counters.corrupt == 1
        assert not path.exists()

    def test_bad_magic_dropped(self, cache, rng):
        path = cache.put_arrays("profile", KEY, {"x": rng.normal(size=8)})
        blob = path.read_bytes()
        path.write_bytes(b"X" * len(ARRAY_MAGIC) + blob[len(ARRAY_MAGIC) :])
        assert cache.get_arrays("profile", KEY) is None
        assert cache.counters.corrupt == 1

    def test_flipped_data_byte_detected(self, cache, rng):
        path = cache.put_arrays("profile", KEY, {"x": rng.normal(size=32)})
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert cache.get_arrays("profile", KEY) is None
        assert cache.counters.corrupt == 1

    def test_empty_file_is_a_miss(self, cache, rng):
        path = cache.put_arrays("profile", KEY, {"x": rng.normal(size=8)})
        path.write_bytes(b"")
        assert cache.get_arrays("profile", KEY) is None

    def test_byte_counters(self, cache, rng):
        cache.put_arrays("profile", KEY, {"x": rng.normal(size=16)})
        assert cache.counters.bytes_written > 16 * 8
        cache.get_arrays("profile", KEY)
        assert cache.counters.bytes_read == cache.counters.bytes_written


class TestAtomicity:
    def test_no_temporaries_left_behind(self, cache, rng):
        cache.put_json("a", KEY, {"v": 1})
        cache.put_arrays("b", KEY, {"x": rng.normal(size=8)})
        leftovers = [
            p for p in entry_files(cache) if p.name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_overwrite_replaces(self, cache):
        cache.put_json("a", KEY, {"v": 1})
        cache.put_json("a", KEY, {"v": 2})
        assert cache.get_json("a", KEY) == {"v": 2}

    def test_sharded_layout(self, cache):
        path = cache.put_json("sigma_eval", KEY, 1)
        assert path.parent.name == KEY[:2]
        assert path.parent.parent.name == "sigma_eval"
        assert path.parent.parent.parent == cache.objects_dir


class TestDescribe:
    def test_mentions_traffic(self, cache):
        cache.put_json("a", KEY, 1)
        cache.get_json("a", KEY)
        cache.get_json("a", "ff" + "0" * 62)
        text = cache.describe()
        assert "1 hits" in text and "1 misses" in text
