"""Cache-test isolation: never let the environment opt caching in."""

import pytest


@pytest.fixture(autouse=True)
def no_ambient_cache(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
