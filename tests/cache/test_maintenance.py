"""Cache maintenance: stats, size-budgeted LRU GC, verify, CLI."""

import argparse
import os

import numpy as np
import pytest

from repro.cache import ResultCache, cache_stats, gc, verify
from repro.cache.cli import parse_size, run_cache


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "store")


def fill(cache, namespace, count, size=256):
    paths = []
    for index in range(count):
        key = f"{index:02x}" + "0" * 62
        paths.append(
            cache.put_arrays(
                namespace, key, {"x": np.full(size, float(index))}
            )
        )
    return paths


class TestStats:
    def test_counts_per_namespace(self, cache):
        fill(cache, "profile", 3)
        fill(cache, "activations", 2)
        report = cache_stats(cache.directory)
        assert report.num_entries == 5
        assert report.namespaces["profile"][0] == 3
        assert report.namespaces["activations"][0] == 2
        assert report.total_bytes == sum(
            nbytes for __, nbytes in report.namespaces.values()
        )
        assert any("profile" in line for line in report.lines())

    def test_empty_directory(self, tmp_path):
        report = cache_stats(tmp_path / "nonexistent")
        assert report.num_entries == 0


class TestGC:
    def test_within_budget_deletes_nothing(self, cache):
        fill(cache, "profile", 3)
        report = gc(cache.directory, max_bytes=10**9)
        assert report.deleted_entries == 0
        assert report.remaining_entries == 3

    def test_evicts_down_to_budget(self, cache):
        paths = fill(cache, "profile", 4, size=1024)
        for age, path in enumerate(paths):
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        entry_size = paths[0].stat().st_size
        report = gc(cache.directory, max_bytes=2 * entry_size)
        assert report.deleted_entries == 2
        assert report.remaining_bytes <= 2 * entry_size
        # Oldest-accessed entries went first.
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists() and paths[3].exists()

    def test_hit_refreshes_lru_position(self, cache):
        paths = fill(cache, "profile", 2, size=1024)
        for age, path in enumerate(paths):
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        # Touch the older entry via a cache hit; it should now survive.
        old_key = "00" + "0" * 62
        assert cache.get_arrays("profile", old_key) is not None
        report = gc(cache.directory, max_bytes=paths[0].stat().st_size)
        assert report.deleted_entries == 1
        assert paths[0].exists()
        assert not paths[1].exists()

    def test_sweeps_interrupted_temporaries(self, cache):
        fill(cache, "profile", 1)
        shard = next(p for p in cache.objects_dir.rglob("*") if p.is_file())
        stale = shard.parent / ".tmp-interrupted"
        stale.write_bytes(b"partial")
        report = gc(cache.directory, max_bytes=10**9)
        assert report.deleted_tmp_files == 1
        assert not stale.exists()
        assert report.remaining_entries == 1


class TestVerify:
    def test_clean_store(self, cache):
        fill(cache, "profile", 2)
        cache.put_json("sigma_eval", "aa" + "0" * 62, {"accuracy": 0.5})
        report = verify(cache.directory)
        assert report.clean
        assert report.checked == 3
        assert report.ok == 3

    def test_detects_and_prunes_corruption(self, cache):
        paths = fill(cache, "profile", 2)
        blob = bytearray(paths[0].read_bytes())
        blob[-1] ^= 0xFF
        paths[0].write_bytes(bytes(blob))
        report = verify(cache.directory)
        assert not report.clean
        assert report.corrupt == [paths[0]]
        assert paths[0].exists()  # prune=False only reports
        pruned = verify(cache.directory, prune=True)
        assert pruned.corrupt == [paths[0]]
        assert not paths[0].exists()
        assert verify(cache.directory).clean


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1024", 1024),
            ("10k", 10 * 1024),
            ("500M", 500 * 1024**2),
            ("2G", 2 * 1024**3),
            ("1.5g", int(1.5 * 1024**3)),
            ("500MB", 500 * 1024**2),
        ],
    )
    def test_sizes(self, text, expected):
        assert parse_size(text) == expected

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            parse_size("lots")


class TestCli:
    def run(self, cache, action, capsys, **overrides):
        args = argparse.Namespace(
            action=action,
            cache_dir=str(cache.directory),
            max_bytes=overrides.get("max_bytes", ""),
            prune=overrides.get("prune", False),
        )
        code = run_cache(args)
        return code, capsys.readouterr().out

    def test_stats(self, cache, capsys):
        fill(cache, "profile", 2)
        code, out = self.run(cache, "stats", capsys)
        assert code == 0
        assert "profile" in out

    def test_gc(self, cache, capsys):
        fill(cache, "profile", 2)
        code, out = self.run(cache, "gc", capsys, max_bytes="1k")
        assert code == 0
        assert "gc" in out

    def test_verify_exit_code_signals_corruption(self, cache, capsys):
        paths = fill(cache, "profile", 1)
        assert self.run(cache, "verify", capsys)[0] == 0
        paths[0].write_bytes(b"junk")
        code, out = self.run(cache, "verify", capsys)
        assert code == 1
        assert "corrupt" in out.lower()
