"""Persistent caching of per-layer injection campaigns."""

import numpy as np
import pytest

from repro.analysis import ErrorProfiler
from repro.cache import ResultCache
from repro.config import ParallelSettings, ProfileSettings

TEST_SEED = 1234

SETTINGS = ProfileSettings(
    num_images=8, num_delta_points=4, num_repeats=1, seed=TEST_SEED
)


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "store")


def fits_of(report):
    return {p.name: (p.lam, p.theta) for p in report}


def make_profiler(lenet, images, cache, **kwargs):
    return ErrorProfiler(lenet, images, SETTINGS, cache=cache, **kwargs)


class TestProfilerCache:
    def test_cold_warm_bit_identity(self, lenet, images, cache):
        cold = make_profiler(lenet, images, cache).profile()
        assert cold.cache_hits == 0
        warm = make_profiler(lenet, images, cache).profile()
        assert warm.cache_hits == len(lenet.analyzed_layer_names)
        assert fits_of(warm) == fits_of(cold)

    def test_no_cache_matches_cached(self, lenet, images, cache):
        cached = make_profiler(lenet, images, cache).profile()
        plain = make_profiler(lenet, images, None).profile()
        assert fits_of(plain) == fits_of(cached)

    def test_partial_recompute_on_new_layer(self, lenet, images, cache):
        """A grown grid set only pays for the delta (per-layer keys)."""
        names = list(lenet.analyzed_layer_names)
        grid = np.linspace(1e-4, 1e-2, SETTINGS.num_delta_points)
        subset = {name: grid for name in names[:2]}
        first = make_profiler(lenet, images, cache).profile_with_grids(subset)
        assert first.cache_hits == 0
        superset = {name: grid for name in names[:3]}
        second = make_profiler(lenet, images, cache).profile_with_grids(
            superset
        )
        assert second.cache_hits == 2
        assert fits_of(second)[names[0]] == fits_of(first)[names[0]]

    def test_grid_change_invalidates(self, lenet, images, cache):
        names = list(lenet.analyzed_layer_names)[:1]
        grid = np.linspace(1e-4, 1e-2, SETTINGS.num_delta_points)
        make_profiler(lenet, images, cache).profile_with_grids(
            {names[0]: grid}
        )
        nudged = grid.copy()
        nudged[-1] = np.nextafter(nudged[-1], np.inf)
        report = make_profiler(lenet, images, cache).profile_with_grids(
            {names[0]: nudged}
        )
        assert report.cache_hits == 0

    def test_seed_change_invalidates(self, lenet, images, cache):
        make_profiler(lenet, images, cache).profile()
        other = ErrorProfiler(
            lenet,
            images,
            ProfileSettings(
                num_images=8,
                num_delta_points=4,
                num_repeats=1,
                seed=TEST_SEED + 1,
            ),
            cache=cache,
        )
        assert other.profile().cache_hits == 0

    def test_image_change_invalidates(self, lenet, images, cache):
        make_profiler(lenet, images, cache).profile()
        nudged = images.copy()
        nudged[0, 0, 0, 0] = np.nextafter(nudged[0, 0, 0, 0], np.inf)
        assert make_profiler(lenet, nudged, cache).profile().cache_hits == 0

    def test_parallel_knobs_do_not_fragment_keys(self, lenet, images, cache):
        """jobs/backend/trial_batch are excluded from keys by design."""
        serial = make_profiler(lenet, images, cache).profile()
        parallel = make_profiler(
            lenet,
            images,
            cache,
            parallel=ParallelSettings(jobs=2, trial_batch=1),
        ).profile()
        assert parallel.cache_hits == len(lenet.analyzed_layer_names)
        assert fits_of(parallel) == fits_of(serial)

    def test_corrupt_entry_recomputed_transparently(
        self, lenet, images, cache
    ):
        cold = make_profiler(lenet, images, cache).profile()
        for path in cache.objects_dir.rglob("*"):
            if path.is_file():
                path.write_bytes(b"corrupted beyond repair")
        recomputed = make_profiler(lenet, images, cache).profile()
        assert recomputed.cache_hits == 0
        assert cache.counters.corrupt > 0
        assert fits_of(recomputed) == fits_of(cold)
        # The rewritten entries serve hits again.
        warm = make_profiler(lenet, images, cache).profile()
        assert warm.cache_hits == len(lenet.analyzed_layer_names)
