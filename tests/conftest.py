"""Shared fixtures.

Expensive artifacts (pretrained models, profiling reports) are built
once per session; tests treat them as read-only.  Anything a test
mutates must be built inside the test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ErrorProfiler
from repro.config import ProfileSettings
from repro.data import SyntheticImageNet
from repro.models import build_model, lsuv_calibrate, pretrain
from repro.nn import measure_ranges


TEST_SEED = 1234


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(TEST_SEED)


@pytest.fixture(scope="session")
def source():
    """Small synthetic dataset source shared by most tests."""
    return SyntheticImageNet(num_classes=8, seed=TEST_SEED)


@pytest.fixture(scope="session")
def datasets(source):
    """(train, test) splits sized for fast tests."""
    return source.train_test(256, 128)


@pytest.fixture(scope="session")
def lenet(source, datasets):
    """A pretrained LeNet replica (READ-ONLY: session scoped)."""
    train, test = datasets
    network = build_model("lenet", num_classes=source.num_classes, seed=TEST_SEED)
    lsuv_calibrate(network, train.images[:32])
    pretrain(network, train, test)
    return network


@pytest.fixture(scope="session")
def lenet_stats(lenet, datasets):
    """Measured layer statistics for the shared LeNet."""
    __, test = datasets
    return measure_ranges(lenet, test.images[:64])


@pytest.fixture(scope="session")
def lenet_profiles(lenet, datasets):
    """Profiled lambda/theta for the shared LeNet."""
    __, test = datasets
    profiler = ErrorProfiler(
        lenet,
        test.images,
        ProfileSettings(num_images=24, num_delta_points=8, seed=TEST_SEED),
    )
    return profiler.profile()


@pytest.fixture()
def fresh_lenet(source, datasets):
    """A pretrained LeNet a test may freely mutate."""
    train, test = datasets
    network = build_model("lenet", num_classes=source.num_classes, seed=TEST_SEED)
    lsuv_calibrate(network, train.images[:32])
    pretrain(network, train, test)
    return network


@pytest.fixture(scope="session")
def images(datasets):
    """A small batch of test images."""
    __, test = datasets
    return test.images[:16]
