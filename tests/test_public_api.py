"""Guards on the public API surface.

Every name a package exports in ``__all__`` must actually be importable
and resolvable — catches stale export lists after refactors.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.data",
    "repro.experiments",
    "repro.hardware",
    "repro.models",
    "repro.nn",
    "repro.optimize",
    "repro.pipeline",
    "repro.quant",
    "repro.resilience",
    "repro.weights",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} must define __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} is exported but missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted(package):
    """Sorted export lists keep diffs reviewable."""
    module = importlib.import_module(package)
    exported = list(module.__all__)
    assert exported == sorted(exported), f"{package}.__all__ is not sorted"


@pytest.mark.parametrize("package", PACKAGES)
def test_no_duplicate_exports(package):
    module = importlib.import_module(package)
    assert len(module.__all__) == len(set(module.__all__))


def test_version_is_exposed():
    import repro

    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_cli_entrypoint_importable():
    from repro.cli import build_parser, main

    parser = build_parser()
    assert parser.prog == "repro"
    assert callable(main)
