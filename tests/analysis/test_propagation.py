"""Tests validating the paper's single-layer error models (Sec. II-III)
against direct simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    avg_pool_output_std,
    delta_from_std,
    dot_product_output_std,
    lambda_for_weights,
    motivating_example_split,
    normality_statistics,
    relu_alpha,
    uniform_std,
)
from repro.errors import ReproError


class TestUniformStd:
    def test_known_value(self):
        # U[-1, 1] has variance 1/3
        assert uniform_std(1.0) == pytest.approx(1.0 / np.sqrt(3))

    def test_roundtrip_with_delta_from_std(self):
        for delta in [0.01, 0.5, 3.0]:
            assert delta_from_std(uniform_std(delta)) == pytest.approx(delta)

    def test_matches_simulation(self):
        rng = np.random.default_rng(0)
        samples = rng.uniform(-0.7, 0.7, size=200_000)
        assert samples.std() == pytest.approx(uniform_std(0.7), rel=0.01)

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            uniform_std(-1.0)


class TestDotProductModel:
    """Paper Eq. 3/4: sigma_y = sqrt(sum w_i^2) * sigma_x."""

    def test_matches_simulation(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(size=64)
        delta = 0.25
        sigma_x = uniform_std(delta)
        trials = 50_000
        noise = rng.uniform(-delta, delta, size=(trials, 64))
        output_errors = noise @ weights
        predicted = dot_product_output_std(weights, sigma_x)
        assert output_errors.std() == pytest.approx(predicted, rel=0.02)

    def test_lambda_is_reciprocal_norm(self):
        w = np.array([3.0, 4.0])
        assert lambda_for_weights(w) == pytest.approx(0.2)

    def test_lambda_rejects_zero_weights(self):
        with pytest.raises(ReproError):
            lambda_for_weights(np.zeros(4))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 500), n=st.integers(4, 256))
    def test_output_error_is_gaussianish(self, seed, n):
        """PROPERTY (Fig. 1): dot-product output error approaches normal.

        For a weighted sum of independent uniforms the excess kurtosis
        is exactly ``-1.2 * sum(w^4) / sum(w^2)^2`` — between the
        uniform's -1.2 (one dominant weight) and 0 (large even fan-in).
        The sample statistic must match that prediction, and in
        particular must never be *more* platykurtic than a uniform.
        """
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=n)
        noise = rng.uniform(-1, 1, size=(4000, n))
        __, __, kurtosis = normality_statistics(noise @ weights)
        predicted = -1.2 * (weights**4).sum() / (weights**2).sum() ** 2
        assert kurtosis == pytest.approx(predicted, abs=0.35)
        assert -1.25 < kurtosis < 1.0


class TestReLUAlpha:
    def test_alpha_reflects_positive_fraction(self):
        x = np.array([1.0, -1.0, 2.0, -2.0])
        assert relu_alpha(x) == pytest.approx(np.sqrt(0.5))

    def test_alpha_scales_error_std_in_simulation(self):
        """Paper Sec. III-C: sigma_out = alpha * sigma_in for small noise."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=100_000) * 10
        alpha = relu_alpha(x)
        delta = 1e-3
        noise = rng.uniform(-delta, delta, size=x.size)
        diff = np.maximum(x + noise, 0) - np.maximum(x, 0)
        assert diff.std() == pytest.approx(alpha * noise.std(), rel=0.05)

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            relu_alpha(np.array([]))


class TestAvgPool:
    def test_known_scaling(self):
        assert avg_pool_output_std(1.0, 4) == 0.5

    def test_rejects_bad_filter(self):
        with pytest.raises(ReproError):
            avg_pool_output_std(1.0, 0)


class TestMotivatingExample:
    def test_equal_split_achieves_budget(self):
        """Sec. II: plugging the split back into Eq. 2 recovers delta_y."""
        weights = np.array([2.0, -3.0])
        inputs = np.array([1.5, 0.5])
        delta_y = 0.1
        dw, dx = motivating_example_split(delta_y, weights, inputs)
        # Linear part of Eq. 1: x*dw + w*dx summed over i
        recovered = np.sum(inputs * dw + weights * dx)
        assert recovered == pytest.approx(delta_y)

    def test_paper_formula(self):
        weights = np.array([1.0, 2.0])
        inputs = np.array([4.0, 8.0])
        dw, dx = motivating_example_split(1.0, weights, inputs)
        np.testing.assert_allclose(dw, 1.0 / (4 * inputs))
        np.testing.assert_allclose(dx, 1.0 / (4 * weights))

    def test_rejects_zeros(self):
        with pytest.raises(ReproError):
            motivating_example_split(1.0, np.array([0.0, 1.0]), np.array([1.0, 1.0]))


class TestNormalityStatistics:
    def test_gaussian_sample(self):
        rng = np.random.default_rng(3)
        mean, std, kurt = normality_statistics(rng.normal(2.0, 3.0, size=100_000))
        assert mean == pytest.approx(2.0, abs=0.05)
        assert std == pytest.approx(3.0, rel=0.02)
        assert abs(kurt) < 0.1

    def test_uniform_sample_has_negative_kurtosis(self):
        rng = np.random.default_rng(4)
        __, __, kurt = normality_statistics(rng.uniform(-1, 1, size=100_000))
        assert kurt == pytest.approx(-1.2, abs=0.1)

    def test_rejects_tiny_sample(self):
        with pytest.raises(ReproError):
            normality_statistics(np.array([1.0, 2.0]))
