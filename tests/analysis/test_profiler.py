"""Tests for the lambda/theta error profiler (paper Sec. V-A)."""

import numpy as np
import pytest

from repro.analysis import ErrorProfiler
from repro.config import ProfileSettings
from repro.errors import ProfilingError


class TestProfileReport:
    def test_covers_all_analyzed_layers(self, lenet, lenet_profiles):
        assert set(p.name for p in lenet_profiles) == set(
            lenet.analyzed_layer_names
        )

    def test_lambdas_positive(self, lenet_profiles):
        """More output error must require a larger input boundary."""
        for p in lenet_profiles:
            assert p.lam > 0

    def test_fit_quality_matches_paper_band(self, lenet_profiles):
        """Paper Sec. IV: < 5% typical, ~10% worst case.  Allow extra
        slack for the small profiling set used in tests."""
        for p in lenet_profiles:
            assert p.r_squared > 0.9
            assert p.max_relative_error < 0.35

    def test_worst_fit_returns_max(self, lenet_profiles):
        worst = lenet_profiles.worst_fit()
        assert worst.max_relative_error == max(
            p.max_relative_error for p in lenet_profiles
        )

    def test_delta_for_sigma_linear(self, lenet_profiles):
        p = next(iter(lenet_profiles))
        assert p.delta_for_sigma(2.0) == pytest.approx(p.lam * 2.0 + p.theta)

    def test_len_and_getitem(self, lenet, lenet_profiles):
        assert len(lenet_profiles) == len(lenet.analyzed_layer_names)
        name = lenet.analyzed_layer_names[0]
        assert lenet_profiles[name].name == name


class TestProfilerBehaviour:
    def test_deeper_layers_have_smaller_lambda_scale_effect(
        self, lenet_profiles
    ):
        """Sanity: lambda values are finite and of a sane magnitude."""
        for p in lenet_profiles:
            assert 0 < p.lam < 1e6

    def test_deterministic_given_seed(self, lenet, datasets):
        __, test = datasets
        settings = ProfileSettings(num_images=8, num_delta_points=5, seed=11)
        r1 = ErrorProfiler(lenet, test.images, settings).profile(["conv1"])
        r2 = ErrorProfiler(lenet, test.images, settings).profile(["conv1"])
        assert r1["conv1"].lam == pytest.approx(r2["conv1"].lam)

    def test_layer_subset(self, lenet, datasets):
        __, test = datasets
        settings = ProfileSettings(num_images=8, num_delta_points=5)
        report = ErrorProfiler(lenet, test.images, settings).profile(["conv2"])
        assert len(report) == 1

    def test_unknown_layer_rejected(self, lenet, datasets):
        __, test = datasets
        profiler = ErrorProfiler(
            lenet, test.images, ProfileSettings(num_images=4, num_delta_points=4)
        )
        with pytest.raises(ProfilingError):
            profiler.profile(["ghost"])

    def test_needs_images(self, lenet):
        with pytest.raises(ProfilingError):
            ErrorProfiler(lenet, np.zeros((0, 3, 32, 32)))

    def test_sigma_monotone_in_delta(self, lenet_profiles):
        """Measured sigma_{Y_K->L} grows with the injected Delta."""
        for p in lenet_profiles:
            order = np.argsort(p.deltas)
            sigmas = p.sigmas[order]
            # allow tiny non-monotonicity from sampling noise
            assert np.all(np.diff(sigmas) > -0.05 * sigmas[:-1])

    def test_measurement_count_matches_settings(self, lenet, datasets):
        __, test = datasets
        settings = ProfileSettings(num_images=8, num_delta_points=6)
        report = ErrorProfiler(lenet, test.images, settings).profile(["conv1"])
        assert report["conv1"].deltas.shape == (6,)
        assert report.num_images == 8
