"""Tests for bootstrap confidence intervals on lambda/theta."""

import numpy as np
import pytest

from repro.analysis import bootstrap_profile
from repro.analysis.profiler import LayerErrorProfile
from repro.errors import ProfilingError


def synthetic_profile(noise=0.02, count=20, lam=50.0, theta=0.01, seed=0):
    rng = np.random.default_rng(seed)
    sigmas = np.geomspace(0.001, 0.2, count)
    deltas = lam * sigmas + theta
    deltas = deltas * (1 + rng.normal(0, noise, size=count))
    return LayerErrorProfile(
        name="synthetic",
        lam=lam,
        theta=theta,
        r_squared=1.0,
        max_relative_error=noise,
        deltas=deltas,
        sigmas=sigmas,
    )


class TestBootstrapProfile:
    def test_interval_contains_true_lambda(self):
        profile = synthetic_profile()
        fit = bootstrap_profile(profile, num_resamples=300, seed=1)
        assert fit.lam.contains(50.0)

    def test_more_noise_widens_interval(self):
        quiet = bootstrap_profile(synthetic_profile(noise=0.01), seed=2)
        loud = bootstrap_profile(synthetic_profile(noise=0.15), seed=2)
        assert loud.lam.width > quiet.lam.width

    def test_interval_ordering(self):
        fit = bootstrap_profile(synthetic_profile(), seed=3)
        assert fit.lam.low <= fit.lam.high
        assert fit.theta.low <= fit.theta.high

    def test_relative_width_positive(self):
        fit = bootstrap_profile(synthetic_profile(), seed=4)
        assert fit.lam.relative_width > 0

    def test_deterministic_given_seed(self):
        profile = synthetic_profile()
        a = bootstrap_profile(profile, seed=9)
        b = bootstrap_profile(profile, seed=9)
        assert a.lam.low == b.lam.low

    def test_rejects_bad_confidence(self):
        with pytest.raises(ProfilingError):
            bootstrap_profile(synthetic_profile(), confidence=1.5)

    def test_rejects_tiny_profiles(self):
        profile = synthetic_profile(count=2)
        with pytest.raises(ProfilingError):
            bootstrap_profile(profile)

    def test_works_on_real_profile(self, lenet_profiles):
        profile = next(iter(lenet_profiles))
        fit = bootstrap_profile(profile, num_resamples=100)
        # the point estimate must sit inside its own CI
        assert fit.lam.contains(profile.lam)
