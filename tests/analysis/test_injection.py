"""Unit tests for noise injection primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    injected_output_error,
    multi_layer_uniform_taps,
    output_error_std,
    perturb_logits,
    uniform_noise_tap,
)


class TestUniformNoiseTap:
    def test_noise_bounded_by_delta(self):
        rng = np.random.default_rng(0)
        tap = uniform_noise_tap(0.5, rng)
        x = np.ones((100,))
        noise = tap(x) - x
        assert np.all(np.abs(noise) <= 0.5)

    def test_zeros_preserved_by_default(self):
        rng = np.random.default_rng(1)
        tap = uniform_noise_tap(1.0, rng)
        x = np.array([0.0, 1.0, 0.0, -2.0])
        out = tap(x)
        assert out[0] == 0.0 and out[2] == 0.0
        assert out[1] != 1.0 or out[3] != -2.0

    def test_zeros_perturbed_when_disabled(self):
        rng = np.random.default_rng(2)
        tap = uniform_noise_tap(1.0, rng, preserve_zeros=False)
        x = np.zeros(1000)
        assert np.any(tap(x) != 0.0)

    def test_fresh_noise_each_call(self):
        rng = np.random.default_rng(3)
        tap = uniform_noise_tap(1.0, rng)
        x = np.ones(50)
        assert not np.allclose(tap(x), tap(x))

    @settings(max_examples=30, deadline=None)
    @given(delta=st.floats(min_value=1e-6, max_value=1e3))
    def test_noise_statistics(self, delta):
        """PROPERTY: injected noise matches U[-delta, delta] moments."""
        rng = np.random.default_rng(int(delta * 1000) % 2**31)
        tap = uniform_noise_tap(delta, rng)
        x = np.ones(20_000)
        noise = tap(x) - x
        assert noise.std() == pytest.approx(2 * delta / np.sqrt(12), rel=0.05)
        assert abs(noise.mean()) < delta * 0.05


class TestMultiLayerTaps:
    def test_one_tap_per_layer(self):
        rng = np.random.default_rng(0)
        taps = multi_layer_uniform_taps({"a": 0.1, "b": 0.2}, rng)
        assert set(taps) == {"a", "b"}

    def test_taps_use_their_own_delta(self):
        rng = np.random.default_rng(1)
        taps = multi_layer_uniform_taps({"small": 0.01, "big": 10.0}, rng)
        x = np.ones(1000)
        small = np.abs(taps["small"](x) - x).max()
        big = np.abs(taps["big"](x) - x).max()
        assert small <= 0.01 and big > 1.0


class TestPerturbLogits:
    def test_zero_sigma_is_identity(self):
        rng = np.random.default_rng(0)
        logits = np.ones((4, 3))
        assert perturb_logits(logits, 0.0, rng) is logits

    def test_noise_statistics(self):
        rng = np.random.default_rng(1)
        logits = np.zeros((500, 100))
        noisy = perturb_logits(logits, 0.7, rng)
        assert noisy.std() == pytest.approx(0.7, rel=0.02)


class TestInjectedOutputError:
    def test_error_grows_with_delta(self, lenet, images):
        cache = lenet.run_all(images)
        rng = np.random.default_rng(0)
        small = injected_output_error(lenet, cache, "conv1", 0.01, rng)
        large = injected_output_error(lenet, cache, "conv1", 1.0, rng)
        assert large.std() > small.std() * 10

    def test_zero_when_no_noise(self, lenet, images):
        cache = lenet.run_all(images)
        rng = np.random.default_rng(0)
        err = injected_output_error(lenet, cache, "conv2", 0.0, rng)
        # preserve_zeros keeps exact zeros; delta=0 noise is all zeros
        np.testing.assert_allclose(err, 0.0, atol=1e-12)


class TestOutputErrorStd:
    def test_positive_for_positive_deltas(self, lenet, images):
        rng = np.random.default_rng(0)
        sigma = output_error_std(
            lenet, images, {"conv1": 0.5, "conv2": 0.5}, rng
        )
        assert sigma > 0

    def test_batching_consistency(self, lenet, images):
        sig_a = output_error_std(
            lenet, images, {"conv1": 0.5}, np.random.default_rng(7),
            batch_size=16,
        )
        sig_b = output_error_std(
            lenet, images, {"conv1": 0.5}, np.random.default_rng(7),
            batch_size=4,
        )
        # Different noise draws per batch layout, same distribution.
        assert sig_a == pytest.approx(sig_b, rel=0.5)
