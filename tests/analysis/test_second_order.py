"""Tests for the second-order (cross-term) error analysis."""

import pytest

from repro.analysis import cross_term_sweep, simulate_dot_product_errors
from repro.errors import ReproError


class TestSimulation:
    def test_first_order_accurate_for_small_errors(self):
        """Paper Eq. 2's assumption: for w >> delta_w, x >> delta_x the
        linearization predicts the output error within a few percent."""
        result = simulate_dot_product_errors(
            fan_in=128, sigma_w=0.01, sigma_x=0.01
        )
        assert result.prediction_error < 0.05
        assert result.cross_term_share < 0.01

    def test_cross_term_grows_with_relative_error(self):
        small = simulate_dot_product_errors(64, 0.02, 0.02, seed=1)
        large = simulate_dot_product_errors(64, 0.5, 0.5, seed=1)
        assert large.cross_term_share > small.cross_term_share

    def test_cross_term_std_scales_with_product(self):
        """cross = sum dw*dx has std ~ sqrt(N) * sigma_w * sigma_x."""
        result = simulate_dot_product_errors(
            fan_in=256, sigma_w=0.1, sigma_x=0.2, num_trials=50_000
        )
        expected = (256**0.5) * 0.1 * 0.2
        assert result.cross_term_std == pytest.approx(expected, rel=0.1)

    def test_weights_only_error(self):
        """With exact inputs there is no cross term at all."""
        result = simulate_dot_product_errors(64, sigma_w=0.1, sigma_x=0.0)
        assert result.cross_term_std == 0.0
        assert result.prediction_error < 0.05

    def test_rejects_bad_arguments(self):
        with pytest.raises(ReproError):
            simulate_dot_product_errors(0, 0.1, 0.1)
        with pytest.raises(ReproError):
            simulate_dot_product_errors(8, -0.1, 0.1)


class TestSweep:
    def test_one_result_per_setting(self):
        results = cross_term_sweep(relative_errors=(0.01, 0.1))
        assert len(results) == 2

    def test_prediction_degrades_monotonically_in_the_sweep(self):
        """The cross-term share grows along the sweep — quantifying
        exactly when the paper's first-order model stops being safe."""
        results = cross_term_sweep(relative_errors=(0.01, 0.1, 0.5))
        shares = [r.cross_term_share for r in results]
        assert shares[0] < shares[-1]

    def test_paper_regime_is_first_order(self):
        """At the error sizes real formats produce (<= ~10% relative),
        the neglected term stays below a few percent of the variance."""
        results = cross_term_sweep(relative_errors=(0.01, 0.05, 0.1))
        for result in results:
            assert result.cross_term_share < 0.05
