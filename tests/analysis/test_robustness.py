"""Tests for the xi corner-case robustness study (Fig. 3 error bars)."""

import numpy as np
import pytest

from repro.analysis import corner_xi_vectors, xi_robustness_study
from repro.analysis.robustness import RobustnessPoint
from repro.errors import SearchError


class TestCornerVectors:
    def test_one_vector_per_layer(self):
        vectors = corner_xi_vectors(["a", "b", "c"])
        assert len(vectors) == 3

    def test_each_sums_to_one(self):
        for xi in corner_xi_vectors(["a", "b", "c", "d"], heavy_share=0.8):
            assert sum(xi.values()) == pytest.approx(1.0)

    def test_heavy_layer_gets_the_share(self):
        vectors = corner_xi_vectors(["a", "b", "c"], heavy_share=0.8)
        assert vectors[0]["a"] == pytest.approx(0.8)
        assert vectors[0]["b"] == pytest.approx(0.1)

    def test_paper_example_three_layers(self):
        """Paper: 'the first case for 3 layers would be (0.8, 0.1, 0.1)'."""
        first = corner_xi_vectors(["l1", "l2", "l3"])[0]
        assert [round(first[k], 3) for k in ["l1", "l2", "l3"]] == [
            0.8,
            0.1,
            0.1,
        ]

    def test_rejects_single_layer(self):
        with pytest.raises(SearchError):
            corner_xi_vectors(["a"])

    def test_rejects_bad_share(self):
        with pytest.raises(SearchError):
            corner_xi_vectors(["a", "b"], heavy_share=1.5)


class TestRobustnessPoint:
    def test_max_deviation(self):
        p = RobustnessPoint(
            sigma=1.0,
            equal_scheme_accuracy=0.9,
            min_accuracy=0.85,
            max_accuracy=0.92,
        )
        assert p.max_deviation == pytest.approx(0.05)


class TestStudyOnLenet:
    def test_study_produces_point_per_sigma(
        self, lenet, datasets, lenet_profiles
    ):
        __, test = datasets
        points = xi_robustness_study(
            lenet, test.subset(64), lenet_profiles.profiles, [0.2, 1.0]
        )
        assert [p.sigma for p in points] == [0.2, 1.0]

    def test_corner_bounds_bracket_consistently(
        self, lenet, datasets, lenet_profiles
    ):
        __, test = datasets
        points = xi_robustness_study(
            lenet, test.subset(64), lenet_profiles.profiles, [0.5]
        )
        p = points[0]
        assert p.min_accuracy <= p.max_accuracy

    def test_small_sigma_has_small_deviation(
        self, lenet, datasets, lenet_profiles
    ):
        """Paper Sec. V-C: variation is tolerable at small accuracy loss."""
        __, test = datasets
        points = xi_robustness_study(
            lenet, test.subset(96), lenet_profiles.profiles, [0.05]
        )
        assert points[0].max_deviation < 0.1
