"""Unit + property tests for the line-fitting utility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import fit_line
from repro.errors import ProfilingError


class TestFitLine:
    def test_recovers_exact_line(self):
        x = np.linspace(1, 10, 20)
        fit = fit_line(x, 3.0 * x + 0.5)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(0.5)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.max_relative_error < 1e-10

    def test_relative_weighting_balances_decades(self):
        """With y spanning decades and a bend at the top, the relative
        fit must stay accurate at the small end (plain OLS would not)."""
        x = np.geomspace(0.01, 10.0, 30)
        y = 2.0 * x
        y[-3:] *= 1.4  # bend at the large end
        rel = fit_line(x, y, weighting="relative")
        ols = fit_line(x, y, weighting="none")
        small_rel = abs(rel.predict(x[0]) - y[0]) / y[0]
        small_ols = abs(ols.predict(x[0]) - y[0]) / y[0]
        assert small_rel < small_ols

    def test_predict_vectorized(self):
        fit = fit_line([1.0, 2.0], [2.0, 4.0])
        np.testing.assert_allclose(fit.predict([3.0, 4.0]), [6.0, 8.0])

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ProfilingError):
            fit_line([1.0, 2.0], [1.0])

    def test_rejects_single_point(self):
        with pytest.raises(ProfilingError):
            fit_line([1.0], [1.0])

    def test_rejects_constant_x(self):
        with pytest.raises(ProfilingError):
            fit_line([2.0, 2.0, 2.0], [1.0, 2.0, 3.0])

    def test_rejects_unknown_weighting(self):
        with pytest.raises(ProfilingError):
            fit_line([1.0, 2.0], [1.0, 2.0], weighting="quadratic")

    @settings(max_examples=50, deadline=None)
    @given(
        slope=st.floats(min_value=0.1, max_value=100),
        intercept=st.floats(min_value=-1, max_value=1),
        seed=st.integers(0, 1000),
    )
    def test_recovers_noisy_line(self, slope, intercept, seed):
        """PROPERTY: slope recovered within noise bounds."""
        rng = np.random.default_rng(seed)
        x = np.geomspace(0.1, 10, 40)
        y = slope * x + intercept
        y = y * (1 + rng.normal(0, 0.01, size=y.size))
        if np.any(y <= 0):
            return
        fit = fit_line(x, y)
        assert fit.slope == pytest.approx(slope, rel=0.1)
