"""Tests for the post-hoc error-budget verification (Eq. 6/7 audit)."""

import pytest

from repro.analysis import verify_error_budget
from repro.errors import ProfilingError
from repro.nn import ordered_stats
from repro.quant import BitwidthAllocation


@pytest.fixture(scope="module")
def verification(lenet, lenet_stats, datasets):
    __, test = datasets
    stats = ordered_stats(lenet, lenet_stats)
    allocation = BitwidthAllocation.uniform(stats, 8)
    return (
        allocation,
        verify_error_budget(lenet, test.images[:48], allocation, sigma=0.5),
    )


class TestVerification:
    def test_one_check_per_layer(self, lenet, verification):
        __, result = verification
        assert len(result.layers) == len(lenet.analyzed_layer_names)

    def test_measured_sigmas_positive(self, verification):
        __, result = verification
        for check in result.layers:
            assert check.measured_sigma > 0

    def test_joint_close_to_rss(self, verification):
        """Eq. 6: the joint error tracks the root-sum-square of the
        per-layer errors within a modest factor (correlations exist but
        do not dominate)."""
        __, result = verification
        assert result.additivity_error < 0.5

    def test_rows_structure(self, verification):
        __, result = verification
        rows = result.rows()
        assert {"layer", "budget_sigma", "measured_sigma", "utilization"} == (
            set(rows[0])
        )

    def test_wider_formats_use_less_budget(self, lenet, lenet_stats, datasets):
        """Adding bits must shrink every layer's measured contribution."""
        __, test = datasets
        stats = ordered_stats(lenet, lenet_stats)
        narrow = verify_error_budget(
            lenet, test.images[:32],
            BitwidthAllocation.uniform(stats, 6), sigma=0.5,
        )
        wide = verify_error_budget(
            lenet, test.images[:32],
            BitwidthAllocation.uniform(stats, 10), sigma=0.5,
        )
        for n, w in zip(narrow.layers, wide.layers):
            assert w.measured_sigma < n.measured_sigma

    def test_rejects_bad_sigma(self, lenet, lenet_stats, datasets):
        __, test = datasets
        stats = ordered_stats(lenet, lenet_stats)
        allocation = BitwidthAllocation.uniform(stats, 8)
        with pytest.raises(ProfilingError):
            verify_error_budget(lenet, test.images[:8], allocation, sigma=0.0)


class TestPipelineBudgetAudit:
    def test_allocation_respects_its_budget(self, lenet, datasets):
        """The end-to-end guarantee in budget terms: the measured joint
        error of an optimized allocation stays at or below the sigma
        budget it was derived from (ceil() adds headroom)."""
        from repro import PrecisionOptimizer
        from repro.config import ProfileSettings, SearchSettings

        __, test = datasets
        optimizer = PrecisionOptimizer(
            lenet,
            test,
            profile_settings=ProfileSettings(num_images=12, num_delta_points=6),
            search_settings=SearchSettings(tolerance=0.05, num_trials=1),
        )
        outcome = optimizer.optimize("input", accuracy_drop=0.05)
        result = verify_error_budget(
            lenet,
            test.images[:48],
            outcome.result.allocation,
            sigma=outcome.result.sigma,
            xi=outcome.result.xi,
        )
        # Paper's safety direction: measured <= budget (with slack for
        # measurement noise).
        assert result.joint_utilization < 1.3
