"""Tests for the sigma binary search (paper Sec. V-C)."""

import numpy as np
import pytest
from hypothesis import given, settings as hsettings
from hypothesis import strategies as st

from repro.analysis import (
    Scheme1Evaluator,
    Scheme2Evaluator,
    deltas_for_sigma,
    find_sigma,
)
from repro.analysis.sigma_search import MIN_DELTA
from repro.config import SearchSettings
from repro.errors import SearchError


def step_accuracy(threshold):
    """A synthetic monotone accuracy function: 1.0 below, 0.5 above."""

    def accuracy(sigma):
        return 1.0 if sigma <= threshold else 0.5

    return accuracy


class TestFindSigmaOnSyntheticFunctions:
    def test_finds_step_threshold(self):
        result = find_sigma(
            step_accuracy(0.7),
            baseline_accuracy=1.0,
            max_relative_drop=0.01,
            settings=SearchSettings(tolerance=0.001),
        )
        assert result.sigma == pytest.approx(0.7, abs=0.002)

    def test_threshold_above_initial_upper_triggers_doubling(self):
        result = find_sigma(
            step_accuracy(5.0),
            baseline_accuracy=1.0,
            max_relative_drop=0.01,
            settings=SearchSettings(tolerance=0.01),
        )
        assert result.sigma == pytest.approx(5.0, abs=0.02)

    def test_never_violating_function_returns_last_doubling(self):
        result = find_sigma(
            lambda s: 1.0,
            baseline_accuracy=1.0,
            max_relative_drop=0.01,
            settings=SearchSettings(max_doublings=5),
        )
        assert result.sigma == pytest.approx(2.0**4)

    def test_smooth_decay(self):
        # accuracy = exp(-sigma); target 0.95 -> sigma = -ln(0.95)
        result = find_sigma(
            lambda s: float(np.exp(-s)),
            baseline_accuracy=1.0,
            max_relative_drop=0.05,
            settings=SearchSettings(tolerance=0.001),
        )
        assert result.sigma == pytest.approx(-np.log(0.95), abs=0.002)

    def test_result_respects_constraint(self):
        result = find_sigma(
            lambda s: float(np.exp(-s)),
            baseline_accuracy=1.0,
            max_relative_drop=0.10,
        )
        assert np.exp(-result.sigma) >= 0.90

    def test_rejects_bad_drop(self):
        with pytest.raises(SearchError):
            find_sigma(lambda s: 1.0, 1.0, 1.5)

    def test_evaluation_history_recorded(self):
        result = find_sigma(step_accuracy(0.3), 1.0, 0.01)
        assert result.num_evaluations == len(result.evaluations)
        assert result.num_evaluations > 2

    @hsettings(max_examples=30, deadline=None)
    @given(threshold=st.floats(min_value=0.05, max_value=20.0))
    def test_bracket_property(self, threshold):
        """PROPERTY: the returned sigma passes, sigma + tolerance fails."""
        settings = SearchSettings(tolerance=0.01)
        fn = step_accuracy(threshold)
        result = find_sigma(fn, 1.0, 0.01, settings)
        target = 1.0 * (1 - 0.01)
        assert fn(result.sigma) >= target
        assert fn(result.sigma + 3 * settings.tolerance) < target


class TestDeltasForSigma:
    def test_equal_scheme_default(self, lenet_profiles):
        profiles = lenet_profiles.profiles
        deltas = deltas_for_sigma(profiles, 1.0)
        count = len(profiles)
        for name, profile in profiles.items():
            expected = profile.delta_for_sigma(np.sqrt(1.0 / count))
            assert deltas[name] == pytest.approx(max(expected, MIN_DELTA))

    def test_custom_xi(self, lenet_profiles):
        profiles = lenet_profiles.profiles
        names = list(profiles)
        xi = {name: 0.0 for name in names}
        xi[names[0]] = 1.0
        deltas = deltas_for_sigma(profiles, 1.0, xi=xi)
        expected = profiles[names[0]].delta_for_sigma(1.0)
        assert deltas[names[0]] == pytest.approx(expected)

    def test_negative_prediction_clamped(self, lenet_profiles):
        profiles = lenet_profiles.profiles
        deltas = deltas_for_sigma(profiles, 0.0)
        for value in deltas.values():
            assert value >= MIN_DELTA


class TestEvaluatorsOnLenet:
    def test_scheme2_zero_sigma_equals_baseline(self, lenet, datasets):
        __, test = datasets
        ev = Scheme2Evaluator(lenet, test)
        from repro.models import top1_accuracy

        assert ev.accuracy(0.0) == pytest.approx(top1_accuracy(lenet, test))

    def test_scheme2_monotone_decrease(self, lenet, datasets):
        __, test = datasets
        ev = Scheme2Evaluator(lenet, test, num_trials=5)
        accs = [ev.accuracy(s) for s in [0.0, 1.0, 4.0, 16.0]]
        assert accs[0] >= accs[1] >= accs[2] >= accs[3]
        assert accs[-1] < accs[0]

    def test_scheme1_zero_sigma_near_baseline(
        self, lenet, datasets, lenet_profiles
    ):
        __, test = datasets
        ev = Scheme1Evaluator(lenet, test, lenet_profiles.profiles)
        from repro.models import top1_accuracy

        base = top1_accuracy(lenet, test)
        assert ev.accuracy(0.0) == pytest.approx(base, abs=0.05)

    def test_scheme1_large_sigma_degrades(self, lenet, datasets, lenet_profiles):
        __, test = datasets
        ev = Scheme1Evaluator(lenet, test, lenet_profiles.profiles)
        assert ev.accuracy(50.0) < ev.accuracy(0.0)

    def test_scheme2_memoizes_repeated_sigmas(self, lenet, datasets):
        """The binary search revisits sigmas; evaluations are cached."""
        __, test = datasets
        ev = Scheme2Evaluator(lenet, test, num_trials=2)
        first = ev.accuracy(0.5)
        assert ev.cache_hits == 0
        again = ev.accuracy(0.5)
        assert again == first
        assert ev.cache_hits == 1
        ev.accuracy(0.25)  # a new sigma is a miss
        assert ev.cache_hits == 1
        ev.accuracy(0.25)
        assert ev.cache_hits == 2

    def test_scheme1_memoizes_repeated_sigmas(
        self, lenet, datasets, lenet_profiles
    ):
        __, test = datasets
        ev = Scheme1Evaluator(lenet, test, lenet_profiles.profiles)
        first = ev.accuracy(0.3)
        again = ev.accuracy(0.3)
        assert again == first
        assert ev.cache_hits == 1

    def test_schemes_agree_on_found_sigma(self, lenet, datasets, lenet_profiles):
        """Fig. 3's premise: the two schemes find similar budgets."""
        __, test = datasets
        from repro.models import top1_accuracy

        base = top1_accuracy(lenet, test)
        s1 = Scheme1Evaluator(lenet, test, lenet_profiles.profiles)
        s2 = Scheme2Evaluator(lenet, test, num_trials=3)
        settings = SearchSettings(tolerance=0.02)
        r1 = find_sigma(s1.accuracy, base, 0.05, settings)
        r2 = find_sigma(s2.accuracy, base, 0.05, settings)
        ratio = max(r1.sigma, r2.sigma) / max(min(r1.sigma, r2.sigma), 1e-9)
        assert ratio < 3.0
