"""Replay-plan memoization and vectorized multi-trial replay.

The plan cache must hand back the same object until the graph mutates,
and ``forward_from_many`` must be a bitwise re-expression of R separate
``forward_from`` calls — with the default layer kernels and with the
engine's fast kernels alike.
"""

import numpy as np
import pytest

from repro.engine import KernelScratch, make_forward_fn
from repro.errors import GraphError
from repro.nn import NetworkBuilder, ReLU

TEST_SEED = 1234


def tiny_network(seed=0):
    """conv -> relu -> conv -> gap -> fc, all deterministic."""
    b = NetworkBuilder("tiny", (2, 6, 6), seed=seed)
    b.conv("c1", 3, 3)
    b.conv("c2", 4, 3)
    b.global_pool("gap")
    b.dense("fc", 5)
    return b.build()


def make_taps(shape, repeats, seed=TEST_SEED):
    """Deterministic additive-noise taps (and the noises they add)."""
    rng = np.random.default_rng(seed)
    noises = [rng.standard_normal(shape) for _ in range(repeats)]
    taps = [(lambda n: (lambda x: x + n))(noise) for noise in noises]
    return taps


class TestPlanMemoization:
    def test_same_plan_object_returned(self):
        net = tiny_network()
        plan = net.replay_plan("c2")
        assert net.replay_plan("c2") is plan
        assert net.replay_plan("c1") is not plan

    def test_add_invalidates(self):
        net = tiny_network()
        plan = net.replay_plan("c2")
        net.add(ReLU("extra", ["fc"]))
        fresh = net.replay_plan("c2")
        assert fresh is not plan

    def test_set_output_invalidates(self):
        net = tiny_network()
        plan = net.replay_plan("c2")
        assert plan.reaches_output
        net.set_output("c1")
        fresh = net.replay_plan("c2")
        assert fresh is not plan
        assert not fresh.reaches_output

    def test_unknown_start_rejected(self):
        with pytest.raises(GraphError):
            tiny_network().replay_plan("ghost")

    def test_dirty_last_use_matches_plan(self):
        net = tiny_network()
        assert net._dirty_last_use("c2") == net.replay_plan("c2").last_use


class TestForwardFromMany:
    @pytest.fixture()
    def net(self):
        return tiny_network()

    @pytest.fixture()
    def cache(self, net):
        rng = np.random.default_rng(TEST_SEED)
        return net.run_all(rng.standard_normal((3, 2, 6, 6)))

    @pytest.mark.parametrize("start", ["c1", "c2", "fc"])
    def test_matches_repeated_forward_from(self, net, cache, start):
        taps = make_taps(cache[net[start].inputs[0]].shape, repeats=4)
        many = net.forward_from_many(cache, start, taps)
        assert many.shape[0] == len(taps)
        for tap, got in zip(taps, many):
            want = net.forward_from(cache, start, tap)
            assert np.array_equal(want, got)

    def test_matches_with_fast_kernels(self, net, cache):
        taps = make_taps(cache[net["c2"].inputs[0]].shape, repeats=3)
        fwd = make_forward_fn(KernelScratch(), trial_groups=len(taps))
        many = net.forward_from_many(cache, "c2", taps, forward_fn=fwd)
        for tap, got in zip(taps, many):
            want = net.forward_from(cache, "c2", tap)
            assert np.array_equal(want, got)

    def test_empty_taps_rejected(self, net, cache):
        with pytest.raises(GraphError):
            net.forward_from_many(cache, "c2", [])

    def test_single_tap_degenerates_to_forward_from(self, net, cache):
        taps = make_taps(cache[net["c2"].inputs[0]].shape, repeats=1)
        many = net.forward_from_many(cache, "c2", taps)
        assert np.array_equal(many[0], net.forward_from(cache, "c2", taps[0]))

    def test_start_not_reaching_output_broadcasts_clean(self, net):
        # With the output moved upstream of the start layer, perturbing
        # the start cannot change the output: every trial's result is
        # the clean activation.
        net.set_output("c1")
        rng = np.random.default_rng(TEST_SEED)
        cache = net.run_all(rng.standard_normal((3, 2, 6, 6)))
        taps = make_taps(cache[net["c2"].inputs[0]].shape, repeats=3)
        many = net.forward_from_many(cache, "c2", taps)
        assert many.shape[0] == len(taps)
        for got in many:
            assert np.array_equal(got, cache["c1"])
