"""End-to-end determinism of the injection engine.

The acceptance bar for every execution strategy — serial, thread pool,
process pool, any ``trial_batch`` — is bitwise identity with the legacy
one-trial-at-a-time profiler loop (``use_engine=False``), which shares
the engine's coordinate-keyed RNG streams and is kept as the
differential oracle.
"""

import numpy as np
import pytest

import repro.engine.campaign as campaign_module
from repro.analysis import ErrorProfiler
from repro.config import ParallelSettings, ProfileSettings
from repro.engine import InjectionEngine
from repro.errors import ProfilingError, RetryExhaustedError, TransientError
from repro.nn import NetworkBuilder

TEST_SEED = 1234

SETTINGS = ProfileSettings(
    num_images=12, num_delta_points=4, num_repeats=2, seed=TEST_SEED
)
# batch_size=4 gives three profiling batches, covering the multi-batch
# reduction order and the stacked-batch GEMM shapes in one go.
BATCH_SIZE = 4


def profile(lenet, images, *, use_engine=True, parallel=None, grids=None):
    profiler = ErrorProfiler(
        lenet,
        images,
        SETTINGS,
        batch_size=BATCH_SIZE,
        parallel=parallel,
        use_engine=use_engine,
    )
    if grids is not None:
        return profiler.profile_with_grids(grids)
    return profiler.profile()


def assert_reports_bitwise_equal(a, b):
    assert set(a.profiles) == set(b.profiles)
    for name in a.profiles:
        pa, pb = a[name], b[name]
        assert pa.lam == pb.lam
        assert pa.theta == pb.theta
        assert np.array_equal(pa.sigmas, pb.sigmas)
        assert np.array_equal(pa.deltas, pb.deltas)


@pytest.fixture(scope="module")
def profiling_images(datasets):
    __, test = datasets
    return test.images[: SETTINGS.num_images]


@pytest.fixture(scope="module")
def legacy_report(lenet, profiling_images):
    return profile(lenet, profiling_images, use_engine=False)


@pytest.fixture(scope="module")
def engine_report(lenet, profiling_images):
    return profile(lenet, profiling_images)


class TestEngineMatchesLegacy:
    def test_serial_engine_bitwise_equal(self, legacy_report, engine_report):
        assert_reports_bitwise_equal(engine_report, legacy_report)

    @pytest.mark.parametrize("trial_batch", [1, 3, 8])
    def test_trial_batch_invariance(
        self, lenet, profiling_images, engine_report, trial_batch
    ):
        report = profile(
            lenet,
            profiling_images,
            parallel=ParallelSettings(trial_batch=trial_batch),
        )
        assert_reports_bitwise_equal(report, engine_report)

    def test_thread_pool_bitwise_equal(
        self, lenet, profiling_images, legacy_report
    ):
        report = profile(
            lenet,
            profiling_images,
            parallel=ParallelSettings(jobs=2, backend="thread"),
        )
        assert report.jobs == 2
        assert_reports_bitwise_equal(report, legacy_report)

    def test_process_pool_bitwise_equal(
        self, lenet, profiling_images, legacy_report
    ):
        report = profile(
            lenet,
            profiling_images,
            parallel=ParallelSettings(jobs=2, backend="process"),
        )
        assert_reports_bitwise_equal(report, legacy_report)

    def test_fast_kernels_off_bitwise_equal(
        self, lenet, profiling_images, legacy_report
    ):
        report = profile(
            lenet,
            profiling_images,
            parallel=ParallelSettings(fast_kernels=False),
        )
        assert_reports_bitwise_equal(report, legacy_report)


class TestWorkerPoolEvents:
    def test_pooled_run_streams_layer_lifecycle(
        self, lenet, profiling_images, legacy_report, tmp_path
    ):
        from repro.config import TelemetrySettings
        from repro.telemetry import Telemetry
        from repro.telemetry.events import read_bus_events, validate_bus_path

        telemetry = Telemetry(
            TelemetrySettings(enabled=True, events_dir=str(tmp_path))
        )
        profiler = ErrorProfiler(
            lenet,
            profiling_images,
            SETTINGS,
            batch_size=BATCH_SIZE,
            parallel=ParallelSettings(jobs=2, backend="thread"),
            telemetry=telemetry,
        )
        report = profiler.profile()
        telemetry.close()
        assert_reports_bitwise_equal(report, legacy_report)

        path = tmp_path / "events.jsonl"
        assert validate_bus_path(path) == []
        events = read_bus_events(path)
        layer_events = [
            e for e in events
            if e["type"] == "stage"
            and e["name"].startswith("engine.layer/")
        ]
        queued = [e for e in layer_events if e["event"] == "queued"]
        done = [e for e in layer_events if e["event"] == "done"]
        layers = {e["name"] for e in queued}
        assert len(queued) == len(done) == len(layers) > 0
        assert all(e["attrs"]["retries"] == 0 for e in done)
        phases = {e["name"] for e in events if e["type"] == "stage"}
        assert "engine.replay" in phases


class TestOrderingInvariance:
    """Reordering the layer traversal must not move a single bit.

    Each trial's RNG stream is keyed by its (layer_position, batch,
    delta, repeat) coordinate, never by visit order, so a reversed
    layer dict is the same campaign.
    """

    @pytest.fixture(scope="class")
    def grids(self, lenet):
        return {
            name: np.geomspace(1e-3, 0.2, SETTINGS.num_delta_points)
            for name in lenet.analyzed_layer_names
        }

    @pytest.mark.parametrize("use_engine", [True, False])
    def test_reversed_layer_order(
        self, lenet, profiling_images, grids, use_engine
    ):
        forward = profile(
            lenet, profiling_images, use_engine=use_engine, grids=grids
        )
        reversed_grids = dict(reversed(list(grids.items())))
        backward = profile(
            lenet, profiling_images, use_engine=use_engine, grids=reversed_grids
        )
        assert_reports_bitwise_equal(forward, backward)


def tiny_network(seed=0):
    b = NetworkBuilder("tiny", (2, 6, 6), seed=seed)
    b.conv("c1", 3, 3)
    b.conv("c2", 4, 3)
    b.global_pool("gap")
    b.dense("fc", 5)
    return b.build()


class TestFailurePaths:
    """Worker failures must surface through the resilience layer."""

    def test_worker_crash_names_layer(self):
        net = tiny_network()
        calls = {"count": 0}
        original = net["gap"].forward

        def flaky(arrays):
            # Let the reference pass through, then crash every replay.
            calls["count"] += 1
            if calls["count"] > 1:
                raise RuntimeError("boom")
            return original(arrays)

        net["gap"].forward = flaky
        engine = InjectionEngine(
            net, ParallelSettings(jobs=2, backend="thread")
        )
        rng = np.random.default_rng(TEST_SEED)
        images = rng.standard_normal((4, 2, 6, 6))
        grids = {"c1": np.array([0.01, 0.1])}
        with pytest.raises(ProfilingError, match="'c1' crashed"):
            engine.run(images, grids, num_repeats=1, seed=TEST_SEED)

    def test_transient_errors_exhaust_retries(self, monkeypatch):
        def always_transient(network, caches, **task):
            raise TransientError("worker evicted")

        monkeypatch.setattr(
            campaign_module, "run_layer_campaign", always_transient
        )
        net = tiny_network()
        engine = InjectionEngine(
            net,
            ParallelSettings(jobs=2, backend="thread", transient_retries=2),
        )
        rng = np.random.default_rng(TEST_SEED)
        images = rng.standard_normal((4, 2, 6, 6))
        grids = {"c1": np.array([0.01, 0.1])}
        with pytest.raises(RetryExhaustedError) as excinfo:
            engine.run(images, grids, num_repeats=1, seed=TEST_SEED)
        # initial attempt + transient_retries resubmissions, all logged
        assert len(excinfo.value.attempts) == 3

    def test_serial_engine_error_passes_through(self):
        net = tiny_network()
        calls = {"count": 0}
        original = net["gap"].forward

        def flaky(arrays):
            calls["count"] += 1
            if calls["count"] > 1:
                raise RuntimeError("boom")
            return original(arrays)

        net["gap"].forward = flaky
        engine = InjectionEngine(net, ParallelSettings())
        rng = np.random.default_rng(TEST_SEED)
        images = rng.standard_normal((4, 2, 6, 6))
        with pytest.raises(RuntimeError):
            engine.run(
                images,
                {"c1": np.array([0.01])},
                num_repeats=1,
                seed=TEST_SEED,
            )
