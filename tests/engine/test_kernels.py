"""Bitwise-identity tests for the engine's fast kernels.

Every fast path must reproduce ``layer.forward`` exactly (same bits,
``np.array_equal``), both through a reused :class:`KernelScratch` and
through the stateless :func:`fast_forward` wrapper — the engine's whole
determinism contract rests on this.
"""

import numpy as np
import pytest

from repro.engine import KernelScratch, fast_forward, make_forward_fn
from repro.nn import LRN, Conv2D, Dense, MaxPool2D, ReLU

rng = np.random.default_rng(7)


def assert_kernel_bitwise(layer, x, reps=3):
    """Fast path == layer.forward bitwise, across scratch reuse."""
    layer.output_shape = layer.infer_shape([x.shape[1:]])
    want = layer.forward([x])
    fwd = make_forward_fn(KernelScratch())
    for _ in range(reps):  # repeated calls exercise buffer reuse
        got = fwd(layer, [x])
        assert np.array_equal(want, got)
    assert np.array_equal(want, fast_forward(layer, [x]))


class TestConvKernel:
    @pytest.mark.parametrize(
        "out_c,in_c,kernel,stride,padding,groups",
        [
            (16, 3, 5, 2, 2, 1),  # stride-2, positions not % 8: fallback
            (32, 16, 5, 1, 2, 2),  # grouped with padding
            (48, 32, 3, 1, 1, 1),  # aligned dense conv (P = 144)
            (24, 12, 3, 1, 1, 4),  # four groups
            (8, 16, 1, 1, 0, 1),  # 1x1 direct-matmul path
        ],
    )
    def test_matches_forward(self, out_c, in_c, kernel, stride, padding, groups):
        weight = rng.standard_normal((out_c, in_c // groups, kernel, kernel))
        bias = rng.standard_normal(out_c)
        x = rng.standard_normal((5, in_c, 12, 12))
        layer = Conv2D(
            "c", ["i"], weight, bias, stride=stride, padding=padding, groups=groups
        )
        assert_kernel_bitwise(layer, x)

    def test_no_bias(self):
        weight = rng.standard_normal((12, 4, 3, 3))
        x = rng.standard_normal((3, 4, 8, 8))
        layer = Conv2D("c", ["i"], weight, None, stride=1, padding=1)
        assert_kernel_bitwise(layer, x)

    def test_depthwise_falls_back(self):
        weight = rng.standard_normal((16, 1, 3, 3))
        x = rng.standard_normal((3, 16, 8, 8))
        layer = Conv2D("dw", ["i"], weight, None, stride=1, padding=1, groups=16)
        assert_kernel_bitwise(layer, x)


class TestDenseKernel:
    def test_flat_input(self):
        layer = Dense(
            "fc", ["i"], rng.standard_normal((5, 20)), rng.standard_normal(5)
        )
        assert_kernel_bitwise(layer, rng.standard_normal((6, 20)))

    def test_nchw_input_flattened(self):
        layer = Dense("fc", ["i"], rng.standard_normal((7, 48)))
        assert_kernel_bitwise(layer, rng.standard_normal((5, 3, 4, 4)))


class TestLRNKernel:
    @pytest.mark.parametrize(
        "channels,n,hw,local_size",
        [(16, 9, 16, 5), (32, 4, 8, 5), (3, 2, 6, 3), (96, 2, 7, 5)],
    )
    def test_matches_forward(self, channels, n, hw, local_size):
        x = rng.standard_normal((n, channels, hw, hw))
        x[x < -1.2] = 0.0  # exact zeros mixed in, like masked trials
        layer = LRN("lrn", ["i"], local_size=local_size)
        assert_kernel_bitwise(layer, x)


class TestPoolAndActivation:
    def test_maxpool_2x2(self):
        layer = MaxPool2D("p", ["i"], kernel=2, stride=2)
        assert_kernel_bitwise(layer, rng.standard_normal((4, 8, 12, 12)))

    def test_maxpool_3x3_falls_back(self):
        layer = MaxPool2D("p", ["i"], kernel=3, stride=2)
        assert_kernel_bitwise(layer, rng.standard_normal((4, 8, 13, 13)))

    def test_relu(self):
        assert_kernel_bitwise(ReLU("r", ["i"]), rng.standard_normal((4, 8, 12, 12)))


class TestTrialGroupSlicing:
    """Stacked trial batches must reproduce per-trial bits exactly.

    ``make_forward_fn(scratch, trial_groups=T)`` slices every GEMM into
    per-trial-group calls so each BLAS invocation runs at unstacked
    shapes — the result of a stacked replay is the concatenation of the
    individual trials' results, bit for bit.
    """

    def _stacked_equals_per_trial(self, layer, per_trial_inputs):
        shape = per_trial_inputs[0].shape[1:]
        layer.output_shape = layer.infer_shape([shape])
        want = np.concatenate([layer.forward([x]) for x in per_trial_inputs])
        stacked = np.concatenate(per_trial_inputs)
        fwd = make_forward_fn(
            KernelScratch(), trial_groups=len(per_trial_inputs)
        )
        assert np.array_equal(want, fwd(layer, [stacked]))

    def test_conv_stacked(self):
        layer = Conv2D(
            "c",
            ["i"],
            rng.standard_normal((8, 4, 3, 3)),
            rng.standard_normal(8),
            stride=1,
            padding=1,
        )
        trials = [rng.standard_normal((3, 4, 12, 12)) for _ in range(4)]
        self._stacked_equals_per_trial(layer, trials)

    def test_grouped_conv_stacked(self):
        layer = Conv2D(
            "cg",
            ["i"],
            rng.standard_normal((8, 2, 3, 3)),
            rng.standard_normal(8),
            stride=1,
            padding=1,
            groups=2,
        )
        trials = [rng.standard_normal((2, 4, 12, 12)) for _ in range(3)]
        self._stacked_equals_per_trial(layer, trials)

    def test_dense_stacked(self):
        layer = Dense(
            "fc", ["i"], rng.standard_normal((6, 16)), rng.standard_normal(6)
        )
        trials = [rng.standard_normal((4, 16)) for _ in range(5)]
        self._stacked_equals_per_trial(layer, trials)

    def test_indivisible_batch_keeps_single_group(self):
        # trial_groups that does not divide the batch degrades to one
        # group — still bitwise equal to forward on the whole batch.
        layer = Conv2D(
            "c",
            ["i"],
            rng.standard_normal((8, 4, 3, 3)),
            rng.standard_normal(8),
            stride=1,
            padding=1,
        )
        x = rng.standard_normal((5, 4, 12, 12))
        layer.output_shape = layer.infer_shape([x.shape[1:]])
        want = layer.forward([x])
        fwd = make_forward_fn(KernelScratch(), trial_groups=3)
        assert np.array_equal(want, fwd(layer, [x]))
