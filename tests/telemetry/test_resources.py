"""Resource profiler: sampling, per-stage accumulation, span attrs."""

from typing import Iterator

import pytest

from repro.telemetry.resources import (
    NULL_RESOURCE_PROFILER,
    ResourceProfiler,
    ResourceSample,
    sample_resources,
)
from repro.telemetry.spans import Span


def _sample(
    rss: int = 0,
    peak: int = 0,
    user: float = 0.0,
    system: float = 0.0,
    threads: int = 1,
    collections: int = 0,
) -> ResourceSample:
    return ResourceSample(
        rss_bytes=rss,
        peak_rss_bytes=peak,
        cpu_user_seconds=user,
        cpu_system_seconds=system,
        num_threads=threads,
        gc_collections=collections,
        gc_collected=0,
    )


def _scripted(samples) -> "Iterator[ResourceSample]":
    iterator = iter(samples)
    return lambda: next(iterator)


class TestSampleResources:
    def test_reads_real_process_state(self):
        sample = sample_resources()
        assert sample.peak_rss_bytes >= sample.rss_bytes > 0
        assert sample.cpu_seconds > 0.0
        assert sample.num_threads >= 1
        assert sample.gc_collections >= 0

    def test_peak_is_monotonic(self):
        first = sample_resources()
        ballast = [bytes(4096) for _ in range(256)]
        second = sample_resources()
        assert second.peak_rss_bytes >= first.peak_rss_bytes
        del ballast

    def test_cpu_seconds_property_sums_modes(self):
        sample = _sample(user=1.5, system=0.25)
        assert sample.cpu_seconds == pytest.approx(1.75)


class TestResourceProfiler:
    def test_measure_records_deltas(self):
        profiler = ResourceProfiler(
            sampler=_scripted(
                [
                    _sample(rss=100, peak=100, user=1.0, threads=2),
                    _sample(
                        rss=160, peak=200, user=1.5, system=0.25,
                        threads=4, collections=3,
                    ),
                ]
            )
        )
        with profiler.measure("replay"):
            pass
        record = profiler.stage("replay")
        assert record == {
            "peak_rss_bytes": 200,
            "rss_delta_bytes": 60,
            "cpu_seconds": pytest.approx(0.75),
            "threads": 4,
            "gc_collections": 3,
            "measurements": 1,
        }

    def test_reentered_stage_accumulates(self):
        profiler = ResourceProfiler(
            sampler=_scripted(
                [
                    _sample(rss=10, peak=50, user=1.0),
                    _sample(rss=30, peak=80, user=2.0, threads=3),
                    _sample(rss=30, peak=80, user=2.0),
                    _sample(rss=40, peak=60, user=2.5, collections=1),
                ]
            )
        )
        for _ in range(2):
            with profiler.measure("cell"):
                pass
        record = profiler.stage("cell")
        assert record is not None
        assert record["peak_rss_bytes"] == 80  # max, not last
        assert record["rss_delta_bytes"] == 30  # 20 + 10
        assert record["cpu_seconds"] == pytest.approx(1.5)  # 1.0 + 0.5
        assert record["threads"] == 3
        assert record["gc_collections"] == 1
        assert record["measurements"] == 2

    def test_annotates_span_with_res_attrs(self):
        profiler = ResourceProfiler(
            sampler=_scripted(
                [
                    _sample(rss=10, peak=10, user=1.0),
                    _sample(rss=25, peak=40, user=1.2, threads=2),
                ]
            )
        )
        span = Span(name="stage", span_id="main-1")
        with profiler.measure("stage", span=span):
            pass
        assert span.attributes["res_peak_rss_bytes"] == 40
        assert span.attributes["res_rss_delta_bytes"] == 15
        assert span.attributes["res_cpu_seconds"] == pytest.approx(0.2)
        assert span.attributes["res_threads"] == 2
        assert span.attributes["res_gc_collections"] == 0

    def test_records_even_when_stage_raises(self):
        profiler = ResourceProfiler(
            sampler=_scripted([_sample(peak=5), _sample(peak=9)])
        )
        with pytest.raises(RuntimeError):
            with profiler.measure("boom"):
                raise RuntimeError("stage failed")
        record = profiler.stage("boom")
        assert record is not None
        assert record["peak_rss_bytes"] == 9

    def test_summary_is_sorted_and_detached(self):
        profiler = ResourceProfiler(
            sampler=_scripted([_sample()] * 4)
        )
        with profiler.measure("zeta"):
            pass
        with profiler.measure("alpha"):
            pass
        summary = profiler.summary()
        assert list(summary) == ["alpha", "zeta"]
        summary["alpha"]["measurements"] = 99
        assert profiler.stage("alpha")["measurements"] == 1

    def test_disabled_profiler_never_samples(self):
        def exploding_sampler():
            raise AssertionError("disabled profiler must not sample")

        profiler = ResourceProfiler(enabled=False, sampler=exploding_sampler)
        with profiler.measure("anything"):
            pass
        assert profiler.summary() == {}
        assert profiler.stage("anything") is None

    def test_null_profiler_is_disabled(self):
        assert not NULL_RESOURCE_PROFILER.enabled
        with NULL_RESOURCE_PROFILER.measure("x"):
            pass
        assert NULL_RESOURCE_PROFILER.summary() == {}
