"""Monitor state folding, status rendering, and the /metrics endpoint."""

import itertools
import json
import urllib.error
import urllib.request

import pytest

from repro.telemetry.events import EventBus
from repro.telemetry.live import (
    MetricsEndpoint,
    MonitorState,
    RunMonitor,
    render_status,
    update_metrics,
)
from repro.telemetry.metrics import MetricsRegistry


_SEQ = itertools.count(1)


def _event(kind, state, name="", /, ts=0.0, run_id="r", seq=None, **attrs):
    # (run_id, seq) is the bus's event identity; real emitters never
    # reuse a seq, and MonitorState deduplicates on it, so the helper
    # allocates unique seqs unless a test pins one deliberately.
    return {
        "schema": 1,
        "type": kind,
        "event": state,
        "name": name,
        "run_id": run_id,
        "seq": next(_SEQ) if seq is None else seq,
        "ts": ts,
        "attrs": attrs,
    }


def _folded(events):
    state = MonitorState()
    for event in events:
        state.apply(event)
    return state


class TestMonitorState:
    def test_cell_lifecycle_counts(self):
        state = _folded(
            [
                _event("run", "started", ts=0.0, total_cells=4),
                _event("cell", "queued", "a", ts=0.0),
                _event("cell", "queued", "b", ts=0.0),
                _event("cell", "queued", "c", ts=0.0),
                _event("cell", "running", "a", ts=1.0),
                _event("cell", "running", "b", ts=1.0),
                _event("cell", "cached-hit", "a", ts=2.0),
                _event("cell", "done", "a", ts=2.0, cache_hits=3,
                       cache_misses=1),
                _event("cell", "failed", "b", ts=3.0,
                       error_class="ProfilingError"),
            ]
        )
        counts = state.counts()
        assert counts["queued"] == 1
        assert counts["running"] == 0
        assert counts["done"] == 1
        assert counts["failed"] == 1
        assert counts["cached-hit"] == 1
        assert state.known_total == 4  # announced total wins
        assert state.completed == 2
        assert state.progress() == (2, 4)
        assert state.cache_hits == 3
        assert state.cache_misses == 1
        assert state.cache_hit_rate() == pytest.approx(0.75)
        assert not state.finished

    def test_observed_cells_extend_announced_total(self):
        state = _folded(
            [
                _event("run", "started", total_cells=1),
                _event("cell", "queued", "a"),
                _event("cell", "queued", "b"),
            ]
        )
        assert state.known_total == 2

    def test_finished_requires_every_run(self):
        state = _folded(
            [
                _event("run", "started", run_id="r1"),
                _event("run", "started", run_id="r2"),
                _event("run", "finished", run_id="r1"),
            ]
        )
        assert not state.finished
        state.apply(_event("run", "finished", run_id="r2"))
        assert state.finished
        assert MonitorState().finished is False  # no runs seen yet

    def test_eta_credits_running_cells(self):
        state = _folded(
            [
                _event("run", "started", total_cells=3),
                _event("cell", "running", "a", ts=0.0),
                _event("cell", "done", "a", ts=10.0),
                _event("cell", "running", "b", ts=10.0),
            ]
        )
        assert state.mean_cell_seconds() == pytest.approx(10.0)
        # at now=14: b has 6s left of the 10s mean, c (unseen) costs 10s
        assert state.eta_seconds(now=14.0) == pytest.approx(16.0)
        state.apply(_event("cell", "done", "b", ts=20.0))
        state.apply(_event("cell", "done", "c", ts=30.0))
        assert state.eta_seconds(now=30.0) == 0.0

    def test_stragglers_rank_slowest_first(self):
        state = _folded(
            [
                _event("cell", "running", "fast", ts=0.0),
                _event("cell", "done", "fast", ts=2.0),
                _event("cell", "running", "slow", ts=2.0),
                _event("cell", "running", "slower", ts=0.0),
            ]
        )
        slow = state.stragglers(now=12.0, factor=3.0)  # mean = 2s, bar = 6s
        assert [cell for cell, _ in slow] == ["slower", "slow"]
        assert slow[0][1] == pytest.approx(12.0)
        assert state.stragglers(now=5.0, factor=3.0) == []

    def test_stage_events_count_retries(self):
        state = _folded(
            [
                _event("stage", "running", "engine.replay"),
                _event("stage", "done", "engine.replay", retries=2),
                _event("stage", "failed", "engine.layer/conv1", retries=1),
            ]
        )
        assert state.retries == 3
        assert state.stages["engine.replay"]["done"] == 1
        assert state.stages["engine.layer/conv1"]["failed"] == 1

    def test_malformed_events_are_counted_not_fatal(self):
        state = MonitorState()
        state.apply({"type": "cell"})  # no event state
        state.apply(_event("cell", "running", ""))  # no name
        state.apply(_event("galaxy", "running", "x"))
        assert state.invalid_events == 3
        assert state.cells == {}


class TestRenderStatus:
    def test_renders_progress_cache_and_failures(self):
        state = _folded(
            [
                _event("run", "started", ts=0.0, total_cells=2,
                       kind="sweep"),
                _event("cell", "running", "lenet/drop=0.05/mac", ts=0.0),
                _event("cell", "done", "lenet/drop=0.05/mac", ts=4.0,
                       cache_hits=2, cache_misses=2),
                _event("cell", "running", "lenet/drop=0.05/input", ts=4.0),
                _event("cell", "failed", "lenet/drop=0.05/input", ts=5.0,
                       error_class="ProfilingError"),
                _event("run", "finished", ts=5.0),
            ]
        )
        text = render_status(state, now=5.0)
        assert "sweep:r" in text
        assert "2/2 cells" in text
        assert "finished" in text
        assert "hit rate 50.0%" in text
        assert "FAILED lenet/drop=0.05/input  (ProfilingError)" in text

    def test_straggler_block_appears(self):
        state = _folded(
            [
                _event("cell", "running", "quick", ts=0.0),
                _event("cell", "done", "quick", ts=1.0),
                _event("cell", "running", "stuck", ts=1.0),
            ]
        )
        text = render_status(state, now=60.0, straggler_factor=3.0)
        assert "stragglers" in text
        assert "stuck" in text

    def test_empty_state_renders(self):
        text = render_status(MonitorState(), now=0.0)
        assert "(none seen yet)" in text
        assert "ETA n/a" in text


class TestUpdateMetrics:
    def test_projects_state_onto_gauges(self):
        state = _folded(
            [
                _event("run", "started", total_cells=2),
                _event("cell", "running", "a", ts=0.0),
                _event("cell", "done", "a", ts=1.0, cache_hits=1),
                _event("run", "finished"),
            ]
        )
        registry = update_metrics(state)
        snap = registry.snapshot()["gauges"]
        assert snap["repro_monitor_cells_done"] == 1.0
        assert snap["repro_monitor_cells_total"] == 2.0
        assert snap["repro_monitor_cache_hits"] == 1.0
        assert snap["repro_monitor_run_finished"] == 1.0
        assert snap["repro_monitor_progress_ratio"] == 0.5
        assert snap["repro_monitor_eta_seconds"] == pytest.approx(1.0)

    def test_reuses_registry_and_renders_help(self):
        registry = MetricsRegistry()
        assert update_metrics(MonitorState(), registry) is registry
        text = registry.render_prometheus()
        assert "# HELP repro_monitor_cells_total" in text
        assert "# TYPE repro_monitor_cells_total gauge" in text


class TestRunMonitor:
    def test_tails_a_growing_run_directory(self, tmp_path):
        monitor = RunMonitor(tmp_path)
        assert monitor.poll() == 0  # nothing yet: no crash
        bus = EventBus(tmp_path / "events.jsonl", run_id="r")
        bus.run_started(total_cells=2, kind="sweep")
        bus.cell("queued", "a")
        assert monitor.poll() == 2
        bus.cell("running", "a")
        bus.cell("done", "a")
        bus.run_finished()
        assert monitor.poll() == 3
        assert monitor.poll() == 0  # idempotent on no growth
        bus.close()
        assert monitor.state.finished
        assert monitor.num_files == 1

    def test_merges_sharded_event_files(self, tmp_path):
        with EventBus(tmp_path / "events-w1.jsonl", run_id="w1") as one:
            one.cell("queued", "a")
        with EventBus(tmp_path / "events-w2.jsonl", run_id="w2") as two:
            two.cell("queued", "b")
        monitor = RunMonitor(tmp_path)
        assert monitor.poll() == 2
        assert set(monitor.state.cells) == {"a", "b"}
        assert monitor.num_files == 2


class TestMetricsEndpoint:
    def test_serves_live_prometheus_text(self):
        state = _folded([_event("run", "started", total_cells=7)])

        def render():
            return update_metrics(state).render_prometheus()

        with MetricsEndpoint(render, port=0) as endpoint:
            url = f"http://{endpoint.host}:{endpoint.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.status == 200
                assert "text/plain" in response.headers["Content-Type"]
                body = response.read().decode("utf-8")
        assert "repro_monitor_cells_total 7" in body
        assert "# TYPE repro_monitor_cells_total gauge" in body

    def test_payload_tracks_state_between_scrapes(self):
        state = MonitorState()

        def render():
            return update_metrics(state).render_prometheus()

        with MetricsEndpoint(render, port=0) as endpoint:
            url = f"http://{endpoint.host}:{endpoint.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                first = response.read().decode("utf-8")
            state.apply(_event("cell", "queued", "a"))
            with urllib.request.urlopen(url, timeout=5) as response:
                second = response.read().decode("utf-8")
        assert "repro_monitor_events_seen 0" in first
        assert "repro_monitor_events_seen 1" in second

    def test_other_paths_get_404(self):
        with MetricsEndpoint(lambda: "", port=0) as endpoint:
            url = f"http://{endpoint.host}:{endpoint.port}/other"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=5)
            assert excinfo.value.code == 404

    def test_root_path_is_an_alias(self):
        with MetricsEndpoint(lambda: "ok 1\n", port=0) as endpoint:
            url = f"http://{endpoint.host}:{endpoint.port}/"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.read() == b"ok 1\n"


class TestEventJsonShape:
    def test_monitor_consumes_bus_records_verbatim(self, tmp_path):
        # Guard against schema drift between writer and monitor.
        path = tmp_path / "events.jsonl"
        with EventBus(path, run_id="r") as bus:
            bus.cell("queued", "a", cache_hits=1)
        raw = json.loads(path.read_text().splitlines()[0])
        state = MonitorState()
        state.apply(raw)
        assert state.cells["a"].state == "queued"
        assert state.cache_hits == 1


class TestMultiWriterRuns:
    """Hardening for distributed sweeps: sharded multi-writer event files."""

    def test_duplicate_event_identity_folds_once(self):
        state = MonitorState()
        event = _event("cell", "done", "a", cache_hits=2)
        state.apply(event)
        state.apply(event)
        assert state.events_seen == 1
        assert state.duplicate_events == 1
        assert state.cache_hits == 2  # not double-counted

    def test_same_seq_different_run_ids_are_distinct(self):
        state = _folded(
            [
                _event("cell", "done", "a", run_id="w0", seq=5),
                _event("cell", "done", "b", run_id="w1", seq=5),
            ]
        )
        assert state.events_seen == 2
        assert state.duplicate_events == 0

    def test_only_coordinator_announces_total(self):
        """Worker attach/detach must not inflate the denominator."""
        state = _folded(
            [
                _event("run", "started", run_id="coord", total_cells=6,
                       kind="sweep-distributed"),
                _event("run", "started", run_id="w0", total_cells=0,
                       kind="worker", worker="w0"),
                _event("run", "started", run_id="w1", total_cells=0,
                       kind="worker", worker="w1"),
            ]
        )
        assert state.total_cells == 6
        assert state.workers == {"w0": "started", "w1": "started"}
        assert state.active_workers == 2

    def test_worker_finish_tracked(self):
        state = _folded(
            [
                _event("run", "started", run_id="w0", kind="worker"),
                _event("run", "finished", run_id="w0"),
            ]
        )
        assert state.workers == {"w0": "finished"}
        assert state.active_workers == 0

    def test_interleaved_shards_reach_consistent_state(self):
        """Events of one cell split across two shards, out of order."""
        state = _folded(
            [
                _event("cell", "queued", "a", run_id="coord", ts=0.0),
                _event("cell", "done", "a", run_id="w1", ts=3.0),
                # w0's stale "running" arrives after w1's steal finished
                # the cell: terminal state must not regress.
                _event("cell", "running", "a", run_id="w0", ts=1.0),
            ]
        )
        assert state.cells["a"].state == "done"
        assert state.completed == 1

    def test_render_shows_worker_summary(self):
        state = _folded(
            [
                _event("run", "started", run_id="coord", total_cells=2,
                       kind="sweep-distributed"),
                _event("run", "started", run_id="w0", kind="worker",
                       worker="w0"),
                _event("run", "started", run_id="w1", kind="worker",
                       worker="w1"),
                _event("run", "finished", run_id="w1"),
            ]
        )
        text = render_status(state, now=10.0)
        assert "workers: 2 attached, 1 active (w0)" in text
        # Worker runs are summarized, not listed per-run.
        assert "worker:" not in text

    def test_metrics_export_worker_gauges(self):
        state = _folded(
            [
                _event("run", "started", run_id="w0", kind="worker"),
                _event("cell", "done", "a", run_id="w0"),
            ]
        )
        state.apply(_event("cell", "done", "a", run_id="w0", seq=1))
        state.apply(_event("cell", "done", "a", run_id="w0", seq=1))
        registry = update_metrics(state)
        assert registry.gauge("repro_monitor_workers_attached").value == 1
        assert registry.gauge("repro_monitor_workers_active").value == 1
        assert registry.gauge("repro_monitor_duplicate_events").value == 1

    def test_shard_appearing_mid_tail(self, tmp_path):
        """A worker attaching after the monitor started is picked up."""
        monitor = RunMonitor(tmp_path)
        with EventBus(tmp_path / "events-coordinator.jsonl",
                      run_id="coord") as bus:
            bus.run_started(total_cells=2, kind="sweep-distributed")
        monitor.poll()
        assert monitor.num_files == 1
        with EventBus(tmp_path / "events-w7.jsonl", run_id="w7") as bus:
            bus.run_started(total_cells=0, kind="worker", worker="w7")
            bus.cell("done", "a")
        monitor.poll()
        assert monitor.num_files == 2
        assert monitor.state.workers == {"w7": "started"}
        assert monitor.state.completed == 1

    def test_tail_resets_after_truncation(self, tmp_path):
        """A shard replaced by a shorter file re-reads from the top."""
        from repro.telemetry.events import EventTail

        path = tmp_path / "events.jsonl"
        with EventBus(path, run_id="r1") as bus:
            for index in range(20):
                bus.cell("queued", f"cell-{index}")
        tail = EventTail(path)
        assert len(tail.poll()) == 20
        with EventBus(tmp_path / "fresh.jsonl", run_id="r2") as bus:
            bus.cell("queued", "after-reset")
        (tmp_path / "fresh.jsonl").replace(path)
        events = tail.poll()
        assert [e["name"] for e in events] == ["after-reset"]

    def test_monitor_survives_shard_truncation_without_double_count(
        self, tmp_path
    ):
        path = tmp_path / "events-w0.jsonl"
        with EventBus(path, run_id="w0") as bus:
            bus.cell("done", "a", cache_hits=1)
        monitor = RunMonitor(tmp_path)
        monitor.poll()
        # The shard shrinks (partial rewrite/rsync), then the same
        # content lands again: the tail restarts from byte 0 and the
        # (run_id, seq) dedupe keeps the state unchanged.
        content = path.read_bytes()
        path.write_bytes(content[: len(content) // 2])
        monitor.poll()  # reset to offset 0; partial line pending
        path.write_bytes(content)
        monitor.poll()  # re-reads the full line -> duplicate identity
        assert monitor.state.events_seen == 1
        assert monitor.state.duplicate_events == 1
        assert monitor.state.cache_hits == 1
