"""Trace summaries: tree building, self time, rendered report."""

import pytest

from repro.telemetry import (
    FakeClock,
    Tracer,
    build_tree,
    manifest_event,
    metrics_event,
    render_summary,
    render_tree,
    self_time,
    spans_to_events,
    split_events,
    summarize_path,
    write_events,
)


def trace_events():
    """A tiny realistic trace: root with two children, one grandchild."""
    clock = FakeClock(start=0.0)
    tracer = Tracer(clock=clock)
    with tracer.span("profiler.profile", model="lenet"):
        with tracer.span("engine.reference"):
            clock.advance(1.0)
        with tracer.span("engine.replay") as replay:
            replay.incr("trials", 8)
            with tracer.span("engine.layer"):
                clock.advance(2.0)
            clock.advance(1.0)
    spans = spans_to_events(tracer.events())
    manifest = manifest_event({"config_hash": "abc123", "seed": 7, "model": "lenet"})
    metrics = metrics_event({"counters": {"repro_trials_injected_total": 8}})
    return [manifest] + spans + [metrics]


class TestSplitEvents:
    def test_partitions_by_type(self):
        manifest, spans, metrics = split_events(trace_events())
        assert manifest["config_hash"] == "abc123"
        assert len(spans) == 4
        assert metrics["counters"] == {"repro_trials_injected_total": 8}

    def test_missing_sections_are_none(self):
        manifest, spans, metrics = split_events([])
        assert manifest is None and metrics is None and spans == []


class TestBuildTree:
    def test_single_root_and_children(self):
        _, spans, _ = split_events(trace_events())
        roots, children = build_tree(spans)
        assert len(roots) == 1
        root = roots[0]
        assert root["name"] == "profiler.profile"
        kids = children[root["span_id"]]
        assert [k["name"] for k in kids] == ["engine.reference", "engine.replay"]

    def test_orphan_promoted_to_root(self):
        spans = [
            {"span_id": "a", "parent_id": "never-closed", "name": "x",
             "start": 0.0, "duration": 1.0},
        ]
        roots, _ = build_tree(spans)
        assert len(roots) == 1

    def test_children_sorted_by_start(self):
        spans = [
            {"span_id": "r", "parent_id": None, "name": "root",
             "start": 0.0, "duration": 3.0},
            {"span_id": "b", "parent_id": "r", "name": "late",
             "start": 2.0, "duration": 1.0},
            {"span_id": "a", "parent_id": "r", "name": "early",
             "start": 1.0, "duration": 1.0},
        ]
        _, children = build_tree(spans)
        assert [c["name"] for c in children["r"]] == ["early", "late"]


class TestSelfTime:
    def test_total_minus_direct_children(self):
        _, spans, _ = split_events(trace_events())
        roots, children = build_tree(spans)
        root = roots[0]
        # Root total 4s; children reference (1s) + replay (3s) → self 0.
        assert float(root["duration"]) == pytest.approx(4.0)
        assert self_time(root, children) == pytest.approx(0.0)
        replay = next(s for s in spans if s["name"] == "engine.replay")
        # Replay 3s, its layer child 2s → 1s of own work.
        assert self_time(replay, children) == pytest.approx(1.0)

    def test_clamped_at_zero(self):
        # Absorbed worker spans can overlap; self time never goes negative.
        spans = [
            {"span_id": "r", "parent_id": None, "name": "root",
             "start": 0.0, "duration": 1.0},
            {"span_id": "w1", "parent_id": "r", "name": "w",
             "start": 0.0, "duration": 0.8},
            {"span_id": "w2", "parent_id": "r", "name": "w",
             "start": 0.0, "duration": 0.8},
        ]
        _, children = build_tree(spans)
        assert self_time(spans[0], children) == 0.0


class TestRendering:
    def test_tree_lines_indent_and_times(self):
        _, spans, _ = split_events(trace_events())
        lines = render_tree(spans)
        assert lines[0].startswith("profiler.profile  total 4.0000s")
        assert lines[1].startswith("  engine.reference")
        assert any(line.startswith("    engine.layer") for line in lines)

    def test_max_depth_truncates(self):
        _, spans, _ = split_events(trace_events())
        lines = render_tree(spans, max_depth=1)
        assert len(lines) == 1

    def test_counters_shown_in_extras(self):
        _, spans, _ = split_events(trace_events())
        replay_line = next(
            line for line in render_tree(spans) if "engine.replay" in line
        )
        assert "trials+8" in replay_line

    def test_summary_sections(self):
        text = render_summary(trace_events())
        assert text.splitlines()[0] == (
            "manifest: config abc123  git n/a  seed 7  model lenet"
        )
        assert "4 spans, 1 root(s), root total 4.0000s" in text
        assert "counters: repro_trials_injected_total=8" in text

    def test_summary_without_spans(self):
        assert "(no spans recorded)" in render_summary([])

    def test_summarize_path_round_trip(self, tmp_path):
        path = write_events(tmp_path / "t.jsonl", trace_events())
        assert render_summary(trace_events()) == summarize_path(path)


class TestRootTotalCoversStageSum:
    def test_root_total_at_least_95_percent_of_stage_sum(self):
        """ISSUE 4 acceptance: the root span subsumes the stage spans."""
        events = trace_events()
        _, spans, _ = split_events(events)
        roots, children = build_tree(spans)
        root_total = sum(float(r["duration"]) for r in roots)
        stage_sum = sum(
            float(c["duration"]) for c in children[roots[0]["span_id"]]
        )
        assert root_total >= 0.95 * stage_sum

    def test_span_event_durations_consistent(self):
        _, spans, _ = split_events(trace_events())
        for span in spans:
            assert span["duration"] == pytest.approx(
                span["end"] - span["start"]
            )
