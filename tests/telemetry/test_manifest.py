"""Run manifests: hash stability, field lifting, description."""

from repro.telemetry import (
    RunManifest,
    build_manifest,
    config_hash,
    git_revision,
    package_versions,
)


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_sixteen_hex_chars(self):
        digest = config_hash({"model": "lenet"})
        assert len(digest) == 16
        int(digest, 16)

    def test_exotic_values_fall_back_to_str(self):
        class Weird:
            def __repr__(self):
                return "weird"

        value = Weird()
        assert config_hash({"x": value}) == config_hash({"x": value})


class TestBuildManifest:
    def test_lifts_seed_and_model_into_config(self):
        manifest = build_manifest(
            config={"drop": 0.01}, seed=321, model="lenet", include_git=False
        )
        assert manifest.seed == 321
        assert manifest.model == "lenet"
        assert manifest.config["seed"] == 321
        assert manifest.config["model"] == "lenet"
        assert manifest.git_sha is None

    def test_explicit_config_seed_wins(self):
        manifest = build_manifest(
            config={"seed": 999}, seed=321, include_git=False
        )
        assert manifest.config["seed"] == 999

    def test_same_inputs_same_hash(self):
        kwargs = dict(config={"drop": 0.01}, seed=1, model="nin", include_git=False)
        assert (
            build_manifest(**kwargs).config_hash
            == build_manifest(**kwargs).config_hash
        )

    def test_versions_include_python(self):
        versions = package_versions()
        assert "python" in versions
        assert "numpy" in versions  # the substrate always has numpy

    def test_as_dict_json_shape(self):
        data = build_manifest(config={"a": 1}, include_git=False).as_dict()
        for key in ("config_hash", "seed", "model", "git_sha", "versions",
                    "created_at", "config"):
            assert key in data

    def test_describe_one_liner(self):
        manifest = RunManifest(
            config_hash="deadbeef00112233",
            seed=7,
            model="alexnet",
            git_sha="0123456789abcdef0123",
            versions={"numpy": "2.0"},
        )
        line = manifest.describe()
        assert "config deadbeef00112233" in line
        assert "git 0123456789ab" in line  # truncated to 12 chars
        assert "seed 7" in line
        assert "model alexnet" in line
        assert "\n" not in line


class TestGitRevision:
    def test_inside_repo_returns_sha(self):
        sha = git_revision()
        # The test suite runs from the repo; outside one None is fine.
        if sha is not None:
            assert len(sha) == 40

    def test_outside_repo_returns_none(self, tmp_path):
        assert git_revision(cwd=str(tmp_path)) is None

    def test_missing_git_binary_returns_none(self, monkeypatch):
        import subprocess

        def no_git(*args, **kwargs):
            raise OSError("git not found")

        monkeypatch.setattr(subprocess, "run", no_git)
        assert git_revision() is None

    def test_git_failure_returns_none(self, monkeypatch):
        import subprocess

        def failing(*args, **kwargs):
            raise subprocess.SubprocessError("timed out")

        monkeypatch.setattr(subprocess, "run", failing)
        assert git_revision() is None

    def test_manifest_survives_without_git(self, monkeypatch, tmp_path):
        # A run outside any repo still produces a manifest; the sha is
        # simply absent from provenance.
        manifest = build_manifest({"model": "lenet"})
        monkeypatch.chdir(tmp_path)
        without = build_manifest({"model": "lenet"})
        assert without.git_sha is None
        assert without.config_hash == manifest.config_hash
