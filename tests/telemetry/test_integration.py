"""End-to-end telemetry guarantees on real pipeline runs.

The two hard contracts (ISSUE 4 acceptance):

* **Zero numerical effect** — lambda/theta fits and full optimization
  outcomes are bit-identical with telemetry on or off, across serial,
  thread-pool, and process-pool execution.
* **Trace integrity** — every event in an exported trace validates
  against the schema, process-pool worker spans arrive exactly once,
  export ordering is deterministic, and the root span subsumes the
  per-stage timings (total >= 95% of their sum).
"""

import numpy as np
import pytest

from repro.analysis import ErrorProfiler
from repro.cli import main
from repro.config import ParallelSettings, ProfileSettings, TelemetrySettings
from repro.pipeline import PrecisionOptimizer
from repro.telemetry import Telemetry, read_events, validate_events

TEST_SEED = 1234

SETTINGS = ProfileSettings(
    num_images=8, num_delta_points=4, num_repeats=2, seed=TEST_SEED
)


def profile(lenet, images, *, telemetry=None, parallel=None):
    profiler = ErrorProfiler(
        lenet,
        images,
        SETTINGS,
        batch_size=4,
        parallel=parallel,
        telemetry=telemetry,
    )
    return profiler.profile(), profiler.telemetry


def assert_fits_bitwise_equal(a, b):
    assert set(a.profiles) == set(b.profiles)
    for name in a.profiles:
        pa, pb = a[name], b[name]
        assert pa.lam == pb.lam
        assert pa.theta == pb.theta
        assert np.array_equal(pa.sigmas, pb.sigmas)
        assert np.array_equal(pa.deltas, pb.deltas)


@pytest.fixture(scope="module")
def profiling_images(datasets):
    __, test = datasets
    return test.images[: SETTINGS.num_images]


@pytest.fixture(scope="module")
def baseline_report(lenet, profiling_images):
    report, _ = profile(lenet, profiling_images)
    return report


class TestBitIdenticalFits:
    def test_telemetry_on_matches_off_serial(
        self, lenet, profiling_images, baseline_report
    ):
        session = Telemetry(TelemetrySettings(enabled=True))
        report, _ = profile(lenet, profiling_images, telemetry=session)
        assert_fits_bitwise_equal(baseline_report, report)

    def test_telemetry_on_matches_off_thread_pool(
        self, lenet, profiling_images, baseline_report
    ):
        session = Telemetry(TelemetrySettings(enabled=True))
        report, _ = profile(
            lenet,
            profiling_images,
            telemetry=session,
            parallel=ParallelSettings(jobs=2, backend="thread"),
        )
        assert_fits_bitwise_equal(baseline_report, report)

    def test_telemetry_on_matches_off_process_pool(
        self, lenet, profiling_images, baseline_report
    ):
        session = Telemetry(TelemetrySettings(enabled=True))
        report, _ = profile(
            lenet,
            profiling_images,
            telemetry=session,
            parallel=ParallelSettings(jobs=2, backend="process"),
        )
        assert_fits_bitwise_equal(baseline_report, report)

    def test_disabled_session_records_nothing(
        self, lenet, profiling_images
    ):
        _, session = profile(lenet, profiling_images)
        assert not session.enabled
        assert session.tracer.events() == []


class TestTraceIntegrity:
    @pytest.fixture(scope="class")
    def traced_run(self, lenet, profiling_images):
        session = Telemetry(TelemetrySettings(enabled=True))
        report, _ = profile(lenet, profiling_images, telemetry=session)
        return report, session

    def test_every_event_validates(self, traced_run):
        _, session = traced_run
        assert validate_events(session.events()) == []

    def test_single_connected_root(self, traced_run):
        _, session = traced_run
        spans = [e for e in session.events() if e["type"] == "span"]
        roots = [s for s in spans if s["parent_id"] is None]
        assert len(roots) == 1
        assert roots[0]["name"] == "profiler.profile"
        ids = {s["span_id"] for s in spans}
        assert all(
            s["parent_id"] in ids for s in spans if s["parent_id"] is not None
        )

    def test_root_total_covers_stage_sum(self, traced_run):
        report, session = traced_run
        spans = [e for e in session.events() if e["type"] == "span"]
        root = next(s for s in spans if s["parent_id"] is None)
        stage_sum = sum(report.timings.values())
        assert stage_sum > 0
        assert root["duration"] >= 0.95 * stage_sum

    def test_stage_timings_match_engine_spans(self, traced_run):
        report, session = traced_run
        spans = [e for e in session.events() if e["type"] == "span"]
        by_name = {s["name"]: s for s in spans}
        for stage in ("reference", "plan", "replay", "reduce"):
            assert report.timings[stage] == pytest.approx(
                by_name[f"engine.{stage}"]["duration"]
            )

    def test_trial_counters_recorded(self, traced_run):
        _, session = traced_run
        counters = session.metrics.snapshot()["counters"]
        num_layers = 4  # lenet: conv1..conv3 + fc
        num_batches = SETTINGS.num_images // 4  # batch_size=4 in profile()
        expected = (
            num_layers
            * num_batches
            * SETTINGS.num_delta_points
            * SETTINGS.num_repeats
        )
        assert counters["repro_trials_injected_total"] == expected
        dispatches = counters.get(
            "repro_kernel_fast_dispatch_total", 0
        ) + counters.get("repro_kernel_legacy_dispatch_total", 0)
        assert dispatches > 0

    def test_export_ordering_deterministic(self, traced_run):
        _, session = traced_run
        assert session.events() == session.events()


class TestProcessPoolTrace:
    @pytest.fixture(scope="class")
    def process_run(self, lenet, profiling_images):
        session = Telemetry(TelemetrySettings(enabled=True))
        report, _ = profile(
            lenet,
            profiling_images,
            telemetry=session,
            parallel=ParallelSettings(jobs=2, backend="process"),
        )
        return report, session

    def test_worker_spans_exactly_once(self, process_run):
        report, session = process_run
        spans = [e for e in session.events() if e["type"] == "span"]
        layer_spans = [s for s in spans if s["name"] == "engine.layer"]
        # One campaign span per profiled layer, no duplicates, no drops.
        labels = sorted(s["attributes"]["layer"] for s in layer_spans)
        assert labels == sorted(report.profiles)
        assert len({s["span_id"] for s in spans}) == len(spans)

    def test_worker_spans_reparented_under_replay(self, process_run):
        _, session = process_run
        spans = [e for e in session.events() if e["type"] == "span"]
        replay = next(s for s in spans if s["name"] == "engine.replay")
        layer_spans = [s for s in spans if s["name"] == "engine.layer"]
        assert layer_spans
        for span in layer_spans:
            assert span["parent_id"] == replay["span_id"]
            assert span["worker"] != "main"

    def test_events_sorted_by_start(self, process_run):
        _, session = process_run
        spans = [e for e in session.events() if e["type"] == "span"]
        starts = [s["start"] for s in spans]
        assert starts == sorted(starts)

    def test_merged_events_validate(self, process_run):
        _, session = process_run
        assert validate_events(session.events()) == []


class TestOptimizerManifest:
    @pytest.fixture(scope="class")
    def outcomes(self, lenet, datasets):
        __, test = datasets

        def run(telemetry):
            optimizer = PrecisionOptimizer(
                lenet,
                test,
                profile_settings=SETTINGS,
                telemetry=telemetry,
            )
            return optimizer.optimize(objective="input", accuracy_drop=0.02)

        off = run(None)
        on = run(TelemetrySettings(enabled=True))
        return off, on

    def test_outcome_bit_identical(self, outcomes):
        off, on = outcomes
        assert off.result.sigma == on.result.sigma
        assert off.result.xi == on.result.xi
        assert off.validated_accuracy == on.validated_accuracy
        assert [
            (layer.name, layer.integer_bits, layer.fraction_bits)
            for layer in off.result.allocation
        ] == [
            (layer.name, layer.integer_bits, layer.fraction_bits)
            for layer in on.result.allocation
        ]

    def test_manifest_default_on(self, outcomes):
        off, on = outcomes
        for outcome in outcomes:
            assert outcome.manifest is not None
            assert len(outcome.manifest["config_hash"]) == 16
            assert outcome.manifest["seed"] is not None
            assert outcome.manifest["model"] == "lenet"
        # Telemetry doesn't change the configuration identity.
        assert off.manifest["config_hash"] == on.manifest["config_hash"]


class TestCliTraceSmoke:
    FAST = [
        "--model",
        "lenet",
        "--train-count",
        "96",
        "--test-count",
        "48",
        "--profile-images",
        "8",
        "--profile-points",
        "4",
        "--seed",
        "321",
    ]

    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "run.jsonl"
        code = main(["profile", *self.FAST, "--trace-out", str(path)])
        assert code == 0
        return path

    def test_trace_written_and_valid(self, trace_path):
        events = read_events(trace_path)
        assert validate_events(events) == []
        kinds = [e["type"] for e in events]
        assert kinds[0] == "manifest"
        assert kinds[-1] == "metrics"
        assert "span" in kinds

    def test_trace_validate_command(self, trace_path, capsys):
        assert main(["trace", "validate", str(trace_path)]) == 0
        assert "all events valid" in capsys.readouterr().out

    def test_trace_summarize_command(self, trace_path, capsys):
        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "manifest: config" in out
        assert "profiler.profile" in out
        assert "root total" in out

    def test_validate_rejects_corrupt_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": 1, "type": "bogus"}\n')
        assert main(["trace", "validate", str(bad)]) == 1
