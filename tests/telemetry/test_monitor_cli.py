"""``repro monitor`` and the degraded paths of ``repro trace summarize``."""

import json

import pytest

from repro.cli import build_parser, main
from repro.telemetry.events import EventBus


@pytest.fixture
def run_dir(tmp_path):
    """A finished two-cell run's event directory."""
    with EventBus(tmp_path / "events.jsonl", run_id="r1") as bus:
        bus.run_started(total_cells=2, kind="sweep")
        for cell in ("lenet/drop=0.05/input", "lenet/drop=0.05/mac"):
            bus.cell("queued", cell)
        for cell in ("lenet/drop=0.05/input", "lenet/drop=0.05/mac"):
            bus.cell("running", cell)
            bus.cell(
                "done", cell, elapsed_seconds=1.0,
                cache_hits=2, cache_misses=1,
            )
        bus.run_finished(cells_done=2)
    return tmp_path


class TestMonitorCli:
    def test_once_renders_finished_run(self, run_dir, capsys):
        assert main(["monitor", str(run_dir), "--once"]) == 0
        out = capsys.readouterr().out
        assert "sweep:r1" in out
        assert "2/2 cells" in out
        assert "finished" in out
        assert "4 hits / 2 misses" in out

    def test_empty_directory_exits_with_message(self, tmp_path, capsys):
        assert main(["monitor", str(tmp_path), "--once"]) == 1
        out = capsys.readouterr().out
        assert "no event files" in out
        assert "--events-dir" in out

    def test_single_file_path_accepted(self, run_dir, capsys):
        path = run_dir / "events.jsonl"
        assert main(["monitor", str(path), "--once"]) == 0
        assert "2/2 cells" in capsys.readouterr().out

    def test_waits_until_runs_finish(self, tmp_path, capsys):
        # Without --once, the loop exits as soon as the tailed runs are
        # all finished — this file is already terminal, so one pass.
        with EventBus(tmp_path / "events.jsonl", run_id="r") as bus:
            bus.run_started(total_cells=0)
            bus.run_finished()
        assert main(["monitor", str(tmp_path), "--interval", "0.01"]) == 0

    def test_self_scrape_serves_metrics(self, run_dir, capsys):
        code = main(
            [
                "monitor", str(run_dir), "--once",
                "--metrics-port", "0", "--self-scrape",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serving metrics on http://" in out
        assert "repro_monitor_cells_total 2" in out
        assert "repro_monitor_run_finished 1" in out
        assert "# TYPE repro_monitor_cells_done gauge" in out

    def test_self_scrape_requires_port(self, run_dir, capsys):
        assert main(["monitor", str(run_dir), "--self-scrape"]) == 1
        assert "--metrics-port" in capsys.readouterr().out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["monitor", "run"])
        assert args.run_dir == "run"
        assert args.once is False
        assert args.interval == 2.0
        assert args.metrics_port is None
        assert args.straggler_factor == 3.0

    def test_mid_write_tail_does_not_crash(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        with EventBus(path, run_id="r") as bus:
            bus.run_started(total_cells=1)
            bus.cell("running", "a")
        # torn final line, as a concurrent writer would leave it
        with open(path, "ab") as handle:
            handle.write(b'{"schema": 1, "type": "cell", "ev')
        assert main(["monitor", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "running a" in out


class TestTraceSummarizeDegraded:
    def test_missing_file(self, tmp_path, capsys):
        absent = tmp_path / "never-written.jsonl"
        assert main(["trace", "summarize", str(absent)]) == 1
        assert "cannot read" in capsys.readouterr().out

    def test_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace", "summarize", str(path)]) == 1
        out = capsys.readouterr().out
        assert "contains no complete events" in out

    def test_only_a_partial_line(self, tmp_path, capsys):
        path = tmp_path / "midwrite.jsonl"
        path.write_text('{"schema": 1, "type": "mani')
        assert main(["trace", "summarize", str(path)]) == 1
        assert "contains no complete events" in capsys.readouterr().out

    def test_interior_corruption_is_reported(self, tmp_path, capsys):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('garbage\n{"schema": 1}\n')
        assert main(["trace", "summarize", str(path)]) == 1
        out = capsys.readouterr().out
        assert "is not a valid trace" in out

    def test_truncated_tail_after_real_events_summarizes(
        self, tmp_path, capsys
    ):
        # A trace being written right now: complete events so far plus a
        # torn final line.  Summarize reports what is there.
        path = tmp_path / "live.jsonl"
        manifest = {
            "schema": 1,
            "type": "manifest",
            "manifest": {"config_hash": "abc", "seed": 7},
        }
        path.write_text(json.dumps(manifest) + '\n{"schema": 1, "ty')
        assert main(["trace", "summarize", str(path)]) == 0
        assert "manifest: config" in capsys.readouterr().out
