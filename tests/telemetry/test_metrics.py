"""Metrics registry: counters, gauges, histograms, merge, Prometheus."""

import threading

import pytest

from repro.telemetry import (
    DEFAULT_SECONDS_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_trials_injected_total")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_thread_safe_increments(self):
        counter = MetricsRegistry().counter("c")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_worker_queue_depth")
        gauge.set(4)
        gauge.dec()
        gauge.inc(0.5)
        assert gauge.value == 3.5


class TestHistogram:
    def test_bucket_assignment(self):
        hist = Histogram("h", buckets=[0.1, 1.0, 10.0])
        for value in (0.05, 0.1, 0.5, 2.0, 100.0):
            hist.observe(value)
        # bisect_left: a value equal to a boundary lands in that bucket.
        assert hist.bucket_counts() == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(102.65)

    def test_boundaries_sorted_and_unique(self):
        hist = Histogram("h", buckets=[1.0, 0.1, 10.0])
        assert hist.boundaries == (0.1, 1.0, 10.0)
        with pytest.raises(ValueError):
            Histogram("dup", buckets=[1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("empty", buckets=[])

    def test_default_buckets(self):
        hist = MetricsRegistry().histogram("repro_sigma_eval_seconds")
        assert hist.boundaries == DEFAULT_SECONDS_BUCKETS


class TestSnapshotAndMerge:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("repro_memo_hits_total").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("lat", buckets=[0.1, 1.0]).observe(0.5)
        return registry

    def test_snapshot_shape(self):
        snap = self.build().snapshot()
        assert snap["counters"] == {"repro_memo_hits_total": 3}
        assert snap["gauges"] == {"depth": 2.0}
        assert snap["histograms"]["lat"] == {
            "boundaries": [0.1, 1.0],
            "counts": [0, 1, 0],
            "sum": 0.5,
            "count": 1,
        }

    def test_snapshot_sorted_names(self):
        registry = MetricsRegistry()
        registry.counter("zz").inc()
        registry.counter("aa").inc()
        assert list(registry.snapshot()["counters"]) == ["aa", "zz"]

    def test_merge_adds_counters_and_histograms(self):
        parent = self.build()
        parent.merge(self.build().snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["repro_memo_hits_total"] == 6
        assert snap["histograms"]["lat"]["counts"] == [0, 2, 0]
        assert snap["histograms"]["lat"]["sum"] == pytest.approx(1.0)
        # Gauges take the incoming point-in-time value.
        assert snap["gauges"]["depth"] == 2.0

    def test_merge_rejects_boundary_mismatch(self):
        parent = self.build()
        worker = MetricsRegistry()
        worker.histogram("lat", buckets=[0.5, 5.0]).observe(1.0)
        with pytest.raises(ValueError, match="boundaries differ"):
            parent.merge(worker.snapshot())

    def test_merge_into_empty_registry(self):
        parent = MetricsRegistry()
        parent.merge(self.build().snapshot())
        assert parent.snapshot() == self.build().snapshot()

    def test_merge_skips_unknown_metric_values(self):
        # Foreign snapshots (newer workers, hand-edited files) may carry
        # values this build cannot merge; they must not crash the join.
        parent = self.build()
        parent.merge(
            {
                "counters": {"repro_memo_hits_total": 2, "weird": "yes"},
                "gauges": {"depth": 3.0, "shape": [1, 2]},
                "histograms": {
                    "mystery": "not-a-mapping",
                    "partial": {"sum": "NaNish"},
                },
                "futuristic_section": {"x": 1},
            }
        )
        snap = parent.snapshot()
        assert snap["counters"]["repro_memo_hits_total"] == 5
        assert "weird" not in snap["counters"]
        assert snap["gauges"]["depth"] == 3.0
        assert "shape" not in snap["gauges"]
        assert set(snap["histograms"]) == {"lat"}

    def test_merge_non_mapping_sections_are_ignored(self):
        parent = self.build()
        parent.merge(
            {"counters": [1, 2], "gauges": None, "histograms": "nope"}
        )
        assert parent.snapshot() == self.build().snapshot()

    def test_merge_empty_histogram_is_a_noop(self):
        parent = self.build()
        # Empty histogram with *different* boundaries: nothing to fold
        # in, so no boundary-mismatch error either.
        parent.merge(
            {
                "histograms": {
                    "lat": {
                        "boundaries": [9.0],
                        "counts": [0, 0],
                        "sum": 0.0,
                        "count": 0,
                    },
                    "bare": {},
                }
            }
        )
        snap = parent.snapshot()
        assert snap["histograms"]["lat"]["counts"] == [0, 1, 0]
        assert "bare" not in snap["histograms"]

    def test_merge_still_rejects_nonempty_mismatch(self):
        parent = self.build()
        with pytest.raises(ValueError, match="boundaries differ"):
            parent.merge(
                {
                    "histograms": {
                        "lat": {
                            "boundaries": [9.0],
                            "counts": [1, 0],
                            "sum": 1.0,
                            "count": 1,
                        }
                    }
                }
            )
        with pytest.raises(ValueError, match="bucket"):
            parent.merge(
                {
                    "histograms": {
                        "lat": {
                            "boundaries": [0.1, 1.0],
                            "counts": [1],
                            "sum": 1.0,
                            "count": 1,
                        }
                    }
                }
            )


class TestPrometheus:
    def test_render_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("repro_trials_injected_total").inc(32)
        registry.gauge("repro_worker_queue_depth").set(1.5)
        hist = registry.histogram("repro_layer_campaign_seconds", buckets=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(50.0)
        text = registry.render_prometheus()
        lines = text.splitlines()
        assert "# TYPE repro_trials_injected_total counter" in lines
        assert "repro_trials_injected_total 32" in lines
        assert "repro_worker_queue_depth 1.5" in lines
        # Cumulative le buckets plus the +Inf total.
        assert 'repro_layer_campaign_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_layer_campaign_seconds_bucket{le="1"} 2' in lines
        assert 'repro_layer_campaign_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_layer_campaign_seconds_count 3" in lines
        assert text.endswith("\n")

    def test_prefix_applied(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        assert "app_hits 1" in registry.render_prometheus(prefix="app_")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_rendering_deterministic(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry in (a, b):
            registry.counter("x").inc(2)
            registry.histogram("h", buckets=[1.0]).observe(0.5)
        assert a.render_prometheus() == b.render_prometheus()

    def test_help_lines_for_known_metrics(self):
        registry = MetricsRegistry()
        registry.counter("repro_outcome_restored_total").inc()
        registry.gauge("repro_worker_queue_depth").set(2)
        lines = registry.render_prometheus().splitlines()
        help_lines = [l for l in lines if l.startswith("# HELP")]
        assert any(
            l.startswith("# HELP repro_outcome_restored_total ")
            for l in help_lines
        )
        # HELP precedes TYPE, per the exposition-format convention.
        assert lines.index(
            "# TYPE repro_worker_queue_depth gauge"
        ) - 1 == lines.index(
            [l for l in help_lines if "queue_depth" in l][0]
        )

    def test_prefix_families_get_fallback_help(self):
        registry = MetricsRegistry()
        registry.counter("repro_kernel_conv_fast_total").inc()
        text = registry.render_prometheus()
        assert "# HELP repro_kernel_conv_fast_total " in text

    def test_unknown_metric_has_no_help_line(self):
        registry = MetricsRegistry()
        registry.counter("made_up_total").inc()
        lines = registry.render_prometheus().splitlines()
        assert "# TYPE made_up_total counter" in lines
        assert not any(l.startswith("# HELP made_up_total") for l in lines)

    def test_set_help_overrides_default(self):
        registry = MetricsRegistry()
        registry.counter("made_up_total").inc()
        registry.set_help("made_up_total", "A bespoke metric.")
        assert (
            "# HELP made_up_total A bespoke metric."
            in registry.render_prometheus()
        )
        registry.set_help(
            "repro_outcome_restored_total", "Overridden."
        )
        registry.counter("repro_outcome_restored_total").inc()
        text = registry.render_prometheus()
        assert "# HELP repro_outcome_restored_total Overridden." in text
