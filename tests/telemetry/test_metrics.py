"""Metrics registry: counters, gauges, histograms, merge, Prometheus."""

import threading

import pytest

from repro.telemetry import (
    DEFAULT_SECONDS_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_trials_injected_total")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_thread_safe_increments(self):
        counter = MetricsRegistry().counter("c")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_worker_queue_depth")
        gauge.set(4)
        gauge.dec()
        gauge.inc(0.5)
        assert gauge.value == 3.5


class TestHistogram:
    def test_bucket_assignment(self):
        hist = Histogram("h", buckets=[0.1, 1.0, 10.0])
        for value in (0.05, 0.1, 0.5, 2.0, 100.0):
            hist.observe(value)
        # bisect_left: a value equal to a boundary lands in that bucket.
        assert hist.bucket_counts() == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(102.65)

    def test_boundaries_sorted_and_unique(self):
        hist = Histogram("h", buckets=[1.0, 0.1, 10.0])
        assert hist.boundaries == (0.1, 1.0, 10.0)
        with pytest.raises(ValueError):
            Histogram("dup", buckets=[1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("empty", buckets=[])

    def test_default_buckets(self):
        hist = MetricsRegistry().histogram("repro_sigma_eval_seconds")
        assert hist.boundaries == DEFAULT_SECONDS_BUCKETS


class TestSnapshotAndMerge:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("repro_memo_hits_total").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("lat", buckets=[0.1, 1.0]).observe(0.5)
        return registry

    def test_snapshot_shape(self):
        snap = self.build().snapshot()
        assert snap["counters"] == {"repro_memo_hits_total": 3}
        assert snap["gauges"] == {"depth": 2.0}
        assert snap["histograms"]["lat"] == {
            "boundaries": [0.1, 1.0],
            "counts": [0, 1, 0],
            "sum": 0.5,
            "count": 1,
        }

    def test_snapshot_sorted_names(self):
        registry = MetricsRegistry()
        registry.counter("zz").inc()
        registry.counter("aa").inc()
        assert list(registry.snapshot()["counters"]) == ["aa", "zz"]

    def test_merge_adds_counters_and_histograms(self):
        parent = self.build()
        parent.merge(self.build().snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["repro_memo_hits_total"] == 6
        assert snap["histograms"]["lat"]["counts"] == [0, 2, 0]
        assert snap["histograms"]["lat"]["sum"] == pytest.approx(1.0)
        # Gauges take the incoming point-in-time value.
        assert snap["gauges"]["depth"] == 2.0

    def test_merge_rejects_boundary_mismatch(self):
        parent = self.build()
        worker = MetricsRegistry()
        worker.histogram("lat", buckets=[0.5, 5.0]).observe(1.0)
        with pytest.raises(ValueError, match="boundaries differ"):
            parent.merge(worker.snapshot())

    def test_merge_into_empty_registry(self):
        parent = MetricsRegistry()
        parent.merge(self.build().snapshot())
        assert parent.snapshot() == self.build().snapshot()


class TestPrometheus:
    def test_render_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("repro_trials_injected_total").inc(32)
        registry.gauge("repro_worker_queue_depth").set(1.5)
        hist = registry.histogram("repro_layer_campaign_seconds", buckets=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(50.0)
        text = registry.render_prometheus()
        lines = text.splitlines()
        assert "# TYPE repro_trials_injected_total counter" in lines
        assert "repro_trials_injected_total 32" in lines
        assert "repro_worker_queue_depth 1.5" in lines
        # Cumulative le buckets plus the +Inf total.
        assert 'repro_layer_campaign_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_layer_campaign_seconds_bucket{le="1"} 2' in lines
        assert 'repro_layer_campaign_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_layer_campaign_seconds_count 3" in lines
        assert text.endswith("\n")

    def test_prefix_applied(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        assert "app_hits 1" in registry.render_prometheus(prefix="app_")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_rendering_deterministic(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry in (a, b):
            registry.counter("x").inc(2)
            registry.histogram("h", buckets=[1.0]).observe(0.5)
        assert a.render_prometheus() == b.render_prometheus()
