"""Event bus: atomic appends, tailing, partial-line tolerance, schema."""

import json
import threading

import pytest

from repro.telemetry import FakeClock
from repro.telemetry.events import (
    EVENTS_FILE,
    EVENTS_SCHEMA_VERSION,
    NULL_EVENT_BUS,
    EventBus,
    EventTail,
    NullEventBus,
    discover_event_files,
    new_run_id,
    open_event_bus,
    read_bus_events,
    validate_bus_event,
    validate_bus_path,
)


class TestEventBus:
    def test_emits_schema_versioned_records(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventBus(path, run_id="r1", clock=FakeClock(5.0)) as bus:
            record = bus.emit("cell", "queued", "m/d/o", foo=1)
        assert record["schema"] == EVENTS_SCHEMA_VERSION
        assert record["type"] == "cell"
        assert record["event"] == "queued"
        assert record["name"] == "m/d/o"
        assert record["run_id"] == "r1"
        assert record["ts"] == 5.0
        assert record["seq"] == 1
        assert record["attrs"] == {"foo": 1}

    def test_round_trips_through_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventBus(path, run_id="r1") as bus:
            bus.run_started(total_cells=3, kind="sweep")
            bus.cell("queued", "a")
            bus.cell("running", "a")
            bus.cell("done", "a", elapsed_seconds=1.5)
            bus.run_finished(cells_done=1)
        events = read_bus_events(path)
        assert [e["event"] for e in events] == [
            "started", "queued", "running", "done", "finished",
        ]
        assert [e["seq"] for e in events] == [1, 2, 3, 4, 5]
        assert events[0]["attrs"]["total_cells"] == 3
        assert events[0]["attrs"]["kind"] == "sweep"

    def test_reserved_attr_names_are_allowed(self, tmp_path):
        # emit()'s own parameter names must stay usable as attributes.
        with EventBus(tmp_path / "e.jsonl") as bus:
            record = bus.emit(
                "run", "started", "", kind="sweep", event="x", name="y"
            )
        assert record["attrs"] == {"kind": "sweep", "event": "x", "name": "y"}

    def test_rejects_unknown_kind_and_state(self, tmp_path):
        with EventBus(tmp_path / "e.jsonl") as bus:
            with pytest.raises(ValueError, match="kind"):
                bus.emit("galaxy", "queued", "x")
            with pytest.raises(ValueError, match="must be one of"):
                bus.emit("cell", "exploded", "x")
            with pytest.raises(ValueError, match="must be one of"):
                bus.emit("run", "queued", "")

    def test_closed_bus_refuses_emit(self, tmp_path):
        bus = EventBus(tmp_path / "e.jsonl")
        bus.close()
        bus.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            bus.emit("cell", "queued", "x")

    def test_two_buses_interleave_whole_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        first = EventBus(path, run_id="alpha")
        second = EventBus(path, run_id="beta")
        for index in range(20):
            first.cell("queued", f"a{index}")
            second.cell("queued", f"b{index}")
        first.close()
        second.close()
        events = read_bus_events(path)
        assert len(events) == 40
        # every record parsed whole, and (run_id, seq) pairs are unique
        keys = {(e["run_id"], e["seq"]) for e in events}
        assert len(keys) == 40

    def test_concurrent_threads_never_tear_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus(path, run_id="threads")

        def emit_many(tag):
            for index in range(50):
                bus.cell("queued", f"{tag}-{index}", payload="x" * 64)

        threads = [
            threading.Thread(target=emit_many, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        bus.close()
        events = read_bus_events(path)
        assert len(events) == 200
        assert sorted(e["seq"] for e in events) == list(range(1, 201))


class TestNullBus:
    def test_null_bus_is_shared_and_inert(self, tmp_path):
        assert open_event_bus("") is NULL_EVENT_BUS
        assert open_event_bus(None) is NULL_EVENT_BUS
        assert not NULL_EVENT_BUS.enabled
        assert NULL_EVENT_BUS.emit("cell", "queued", "x") == {}
        NULL_EVENT_BUS.run_started(total_cells=5)
        NULL_EVENT_BUS.close()
        assert NULL_EVENT_BUS.emitted == 0

    def test_null_bus_subclasses_event_bus(self):
        assert isinstance(NullEventBus(), EventBus)

    def test_open_event_bus_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "run"
        bus = open_event_bus(target)
        try:
            assert bus.enabled
            bus.cell("queued", "x")
        finally:
            bus.close()
        assert (target / EVENTS_FILE).exists()


class TestReadAndTail:
    def test_partial_tail_skipped_by_default(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventBus(path, run_id="r") as bus:
            bus.cell("queued", "a")
            bus.cell("queued", "b")
        # simulate a write in flight: truncate mid-record
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])
        events = read_bus_events(path)
        assert len(events) == 1
        with pytest.raises(ValueError, match="truncated"):
            read_bus_events(path, skip_partial_tail=False)

    def test_tail_consumes_incrementally(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus(path, run_id="r")
        tail = EventTail(path)
        assert tail.poll() == []
        bus.cell("queued", "a")
        first = tail.poll()
        assert [e["name"] for e in first] == ["a"]
        assert tail.poll() == []  # nothing new
        bus.cell("running", "a")
        bus.cell("done", "a")
        second = tail.poll()
        assert [e["event"] for e in second] == ["running", "done"]
        bus.close()

    def test_tail_waits_for_newline(self, tmp_path):
        path = tmp_path / "events.jsonl"
        line = json.dumps({"x": 1})
        path.write_text(line)  # no trailing newline: still being written
        tail = EventTail(path)
        assert tail.poll() == []
        path.write_text(line + "\n")
        assert tail.poll() == [{"x": 1}]

    def test_tail_missing_file_is_quiet(self, tmp_path):
        assert EventTail(tmp_path / "absent.jsonl").poll() == []

    def test_discover_prefers_event_shards(self, tmp_path):
        (tmp_path / "events.jsonl").write_text("")
        (tmp_path / "events-w1.jsonl").write_text("")
        (tmp_path / "trace.jsonl").write_text("")
        found = [p.name for p in discover_event_files(tmp_path)]
        assert found == ["events-w1.jsonl", "events.jsonl"]

    def test_discover_accepts_single_file(self, tmp_path):
        path = tmp_path / "anything.jsonl"
        path.write_text("")
        assert discover_event_files(path) == [path]
        assert discover_event_files(tmp_path / "missing") == []


class TestValidation:
    def test_real_bus_file_validates_clean(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventBus(path, run_id="r") as bus:
            bus.run_started(total_cells=1)
            bus.cell("queued", "a")
            bus.stage("running", "engine.replay")
            bus.stage("done", "engine.replay", retries=0)
            bus.cell("done", "a")
            bus.run_finished()
        assert validate_bus_path(path) == []

    def test_validator_catches_defects(self):
        good = {
            "schema": EVENTS_SCHEMA_VERSION,
            "type": "cell",
            "event": "queued",
            "name": "a",
            "run_id": "r",
            "seq": 1,
            "ts": 0.0,
            "attrs": {},
        }
        assert validate_bus_event(good) == []
        assert validate_bus_event("nope")
        assert validate_bus_event({**good, "schema": 99})
        assert validate_bus_event({**good, "type": "galaxy"})
        assert validate_bus_event({**good, "event": "exploded"})
        assert validate_bus_event({**good, "name": ""})
        assert validate_bus_event({**good, "seq": 0})
        assert validate_bus_event({**good, "seq": True})
        assert validate_bus_event({**good, "ts": "late"})
        assert validate_bus_event({**good, "attrs": []})

    def test_empty_file_is_a_problem(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("")
        problems = validate_bus_path(path)
        assert problems and "no events" in problems[0]

    def test_run_ids_are_short_and_unique(self):
        ids = {new_run_id() for _ in range(32)}
        assert len(ids) == 32
        assert all(len(i) == 12 for i in ids)
