"""JSONL sink, event schema, and validation."""

import json

import numpy as np
import pytest

from repro.telemetry import (
    SCHEMA_VERSION,
    FakeClock,
    JsonlSink,
    Span,
    Tracer,
    manifest_event,
    metrics_event,
    read_events,
    span_event,
    spans_to_events,
    validate_event,
    validate_events,
    validate_path,
    write_events,
)


def closed_span(**overrides):
    span = Span(
        name="work",
        span_id="main-1",
        parent_id=None,
        start=1.0,
        end=2.5,
        attributes={"layer": "conv1"},
        counters={"trials": 4},
    )
    for key, value in overrides.items():
        setattr(span, key, value)
    return span


class TestSpanEvent:
    def test_round_trips_all_fields(self):
        event = span_event(closed_span())
        assert event["schema"] == SCHEMA_VERSION
        assert event["type"] == "span"
        assert event["name"] == "work"
        assert event["duration"] == pytest.approx(1.5)
        assert event["attributes"] == {"layer": "conv1"}
        assert event["counters"] == {"trials": 4}
        assert validate_event(event) == []

    def test_numpy_attributes_coerced(self):
        span = closed_span(
            attributes={
                "sigma": np.float64(0.25),
                "count": np.int32(7),
                "flag": np.bool_(True),
            }
        )
        event = span_event(span)
        # Must be JSON-native so json.dumps never sees numpy scalars.
        text = json.dumps(event)
        decoded = json.loads(text)["attributes"]
        assert decoded == {"sigma": 0.25, "count": 7, "flag": True}

    def test_open_span_gets_zero_duration(self):
        event = span_event(closed_span(end=None))
        assert event["end"] == event["start"]
        assert event["duration"] == 0.0

    def test_spans_to_events_merge_sorted(self):
        spans = [
            closed_span(span_id="main-2", start=5.0, end=6.0),
            closed_span(span_id="main-1", start=1.0, end=2.0),
        ]
        events = spans_to_events(spans)
        assert [e["span_id"] for e in events] == ["main-1", "main-2"]


class TestJsonlRoundTrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = [
            manifest_event({"config_hash": "abc", "seed": 1}),
            span_event(closed_span()),
            metrics_event({"counters": {"hits": 2}}),
        ]
        write_events(path, events)
        assert read_events(path) == events
        assert validate_path(path) == []

    def test_sink_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "deep" / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"schema": SCHEMA_VERSION, "type": "manifest", "manifest": {}})
        assert sink.emitted == 1
        assert path.exists()

    def test_deterministic_bytes(self, tmp_path):
        events = [span_event(closed_span())]
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        write_events(a, events)
        write_events(b, events)
        assert a.read_bytes() == b.read_bytes()

    def test_read_reports_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            read_events(path)

    def test_skip_partial_tail_tolerates_midwrite(self, tmp_path):
        # A trace captured while its writer was mid-line: the final
        # line has no newline and does not parse.
        path = tmp_path / "trace.jsonl"
        path.write_text('{"ok": 1}\n{"ok": 2}\n{"trunc')
        assert read_events(path, skip_partial_tail=True) == [
            {"ok": 1},
            {"ok": 2},
        ]
        with pytest.raises(ValueError, match=r"trace\.jsonl:3"):
            read_events(path)

    def test_skip_partial_tail_still_rejects_interior_junk(self, tmp_path):
        # Only an unterminated *final* line is forgivable; corruption
        # followed by a newline is real damage.
        path = tmp_path / "trace.jsonl"
        path.write_text('not json\n{"ok": 1}\n')
        with pytest.raises(ValueError, match=r"trace\.jsonl:1"):
            read_events(path, skip_partial_tail=True)

    def test_complete_final_line_reads_either_way(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_events(path, [{"schema": SCHEMA_VERSION, "type": "manifest",
                             "manifest": {}}])
        assert read_events(path, skip_partial_tail=True) == read_events(path)


class TestValidation:
    def test_wrong_schema_version(self):
        event = span_event(closed_span())
        event["schema"] = 99
        assert any("schema" in e for e in validate_event(event))

    def test_unknown_type(self):
        assert validate_event({"schema": SCHEMA_VERSION, "type": "bogus"})

    def test_non_object_event(self):
        assert validate_event([1, 2, 3]) == ["event is not a JSON object"]

    def test_end_before_start(self):
        event = span_event(closed_span())
        event["end"] = 0.5
        assert any("precedes" in e for e in validate_event(event))

    def test_bad_status(self):
        event = span_event(closed_span())
        event["status"] = "meh"
        assert any("status" in e for e in validate_event(event))

    def test_non_integer_counter(self):
        event = span_event(closed_span())
        event["counters"] = {"trials": 1.5}
        assert any("integer" in e for e in validate_event(event))

    def test_validate_events_prefixes_index(self):
        good = span_event(closed_span())
        bad = {"schema": SCHEMA_VERSION, "type": "bogus"}
        problems = validate_events([good, bad])
        assert problems and all(p.startswith("event 1:") for p in problems)

    def test_empty_trace_is_invalid(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        problems = validate_path(path)
        assert problems and "no events" in problems[0]

    def test_missing_file_reported(self, tmp_path):
        problems = validate_path(tmp_path / "nope.jsonl")
        assert len(problems) == 1

    def test_real_tracer_output_validates(self, tmp_path):
        clock = FakeClock(start=0.0, tick=0.25)
        tracer = Tracer(clock=clock)
        with tracer.span("outer", model="lenet"):
            with tracer.span("inner") as inner:
                inner.incr("trials", 2)
        events = spans_to_events(tracer.events())
        path = write_events(tmp_path / "t.jsonl", events)
        assert validate_path(path) == []
