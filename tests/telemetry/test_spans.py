"""Tracer/span semantics: timing, nesting, threads, the null path."""

import threading

import pytest

from repro.telemetry import (
    NULL_TRACER,
    FakeClock,
    NullTracer,
    Span,
    Tracer,
    merge_spans,
)


class TestFakeClock:
    def test_frozen_until_advanced(self):
        clock = FakeClock(start=5.0)
        assert clock() == 5.0
        assert clock() == 5.0
        clock.advance(2.5)
        assert clock.now == 7.5

    def test_tick_advances_per_call(self):
        clock = FakeClock(start=1.0, tick=0.5)
        assert clock() == 1.0
        assert clock() == 1.5

    def test_rejects_backwards(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)

    def test_tick_and_advance_compose(self):
        # advance() shifts the base; the per-call tick keeps applying
        # on top of it, and each call returns the time *before* its
        # own tick.
        clock = FakeClock(start=1.0, tick=0.5)
        assert clock() == 1.0  # now 1.5
        clock.advance(2.0)  # now 3.5, no tick consumed
        assert clock.now == 3.5
        assert clock() == 3.5  # now 4.0
        assert clock() == 4.0
        clock.advance(0.0)  # zero advance is legal and a no-op
        assert clock.now == 4.5

    def test_now_never_advances(self):
        clock = FakeClock(start=2.0, tick=1.0)
        assert clock.now == 2.0
        assert clock.now == 2.0
        clock()
        assert clock.now == 3.0


class TestSpanTiming:
    def test_duration_from_injected_clock(self):
        clock = FakeClock(start=10.0)
        tracer = Tracer(clock=clock)
        with tracer.span("work") as span:
            clock.advance(1.25)
        assert span.start == 10.0
        assert span.end == 11.25
        assert span.duration == 1.25

    def test_open_span_duration_is_zero(self):
        span = Span(name="open", span_id="main-1", start=3.0)
        assert span.duration == 0.0

    def test_attributes_and_counters(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work", layer="conv1") as span:
            span.set(sigma=0.25, passed=True)
            span.incr("trials", 3)
            span.incr("trials")
        assert span.attributes == {
            "layer": "conv1",
            "sigma": 0.25,
            "passed": True,
        }
        assert span.counters == {"trials": 4}

    def test_exception_marks_error_and_still_records(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        (span,) = tracer.events()
        assert span.status == "error"
        assert span.end is not None


class TestNesting:
    def test_child_parented_to_enclosing_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_explicit_parent_override(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("stage") as stage:
            pass
        with tracer.span("worker-root", parent_id=stage.span_id) as span:
            pass
        assert span.parent_id == stage.span_id

    def test_sibling_spans_share_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id

    def test_thread_stacks_are_independent(self):
        tracer = Tracer()
        seen = {}

        def work(label):
            # A fresh thread has an empty stack: its span is a root.
            with tracer.span(f"job-{label}") as span:
                seen[label] = span.parent_id

        with tracer.span("dispatch"):
            threads = [
                threading.Thread(target=work, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert all(parent is None for parent in seen.values())
        assert len(tracer.events()) == 5

    def test_span_ids_unique_across_threads(self):
        tracer = Tracer()

        def work():
            for _ in range(25):
                with tracer.span("tick"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ids = [span.span_id for span in tracer.events()]
        assert len(ids) == 100
        assert len(set(ids)) == 100


class TestAbsorb:
    def test_worker_roots_reparented(self):
        parent = Tracer(clock=FakeClock())
        worker = Tracer(clock=FakeClock(), worker="pid9")
        with parent.span("replay") as replay:
            pass
        with worker.span("layer"):
            with worker.span("batch"):
                pass
        parent.absorb(worker.events(), parent_id=replay.span_id)
        by_name = {s.name: s for s in parent.events()}
        assert by_name["layer"].parent_id == replay.span_id
        # Non-root worker spans keep their own ancestry.
        assert by_name["batch"].parent_id == by_name["layer"].span_id

    def test_ids_cannot_collide_across_workers(self):
        parent = Tracer(clock=FakeClock())
        worker = Tracer(clock=FakeClock(), worker="pid9")
        with parent.span("a"):
            pass
        with worker.span("b"):
            pass
        parent.absorb(worker.events())
        ids = [s.span_id for s in parent.events()]
        assert len(set(ids)) == 2

    def test_clear_drops_buffer(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.events() == []


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("work", layer="conv1") as span:
            span.set(sigma=0.5)
            span.incr("trials")
        assert tracer.events() == []
        assert not tracer.enabled

    def test_null_span_never_times(self):
        with NULL_TRACER.span("work") as span:
            pass
        assert span.duration == 0.0
        assert span.span_id == ""

    def test_real_tracer_enabled(self):
        assert Tracer().enabled


class TestMergeSpans:
    def test_orders_by_start_then_id(self):
        spans = [
            Span(name="late", span_id="main-3", start=2.0),
            Span(name="early", span_id="main-1", start=0.5),
            Span(name="tie-b", span_id="pid1-2", start=1.0),
            Span(name="tie-a", span_id="pid1-1", start=1.0),
        ]
        merged = merge_spans(spans)
        assert [s.name for s in merged] == ["early", "tie-a", "tie-b", "late"]

    def test_stable_for_identical_input(self):
        spans = [
            Span(name="a", span_id="main-1", start=1.0),
            Span(name="b", span_id="main-2", start=1.0),
        ]
        assert merge_spans(spans) == merge_spans(list(reversed(spans)))
