"""Unit tests for the synthetic ImageNet stand-in."""

import numpy as np
import pytest

from repro.data import Dataset, SyntheticImageNet
from repro.errors import ReproError


class TestDataset:
    def test_length(self):
        ds = Dataset(np.zeros((5, 3, 4, 4)), np.zeros(5, dtype=int), 4)
        assert len(ds) == 5

    def test_rejects_count_mismatch(self):
        with pytest.raises(ReproError):
            Dataset(np.zeros((5, 3, 4, 4)), np.zeros(4, dtype=int), 4)

    def test_subset(self):
        ds = Dataset(np.arange(20.0).reshape(5, 4), np.arange(5), 5)
        sub = ds.subset(2)
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.labels, [0, 1])

    def test_subset_caps_at_length(self):
        ds = Dataset(np.zeros((3, 4)), np.zeros(3, dtype=int), 2)
        assert len(ds.subset(100)) == 3

    def test_batches_cover_everything(self):
        ds = Dataset(np.arange(28.0).reshape(7, 4), np.arange(7), 7)
        chunks = list(ds.batches(3))
        assert [len(lbl) for __, lbl in chunks] == [3, 3, 1]
        np.testing.assert_array_equal(
            np.concatenate([lbl for __, lbl in chunks]), ds.labels
        )


class TestSyntheticImageNet:
    def test_deterministic_per_seed(self):
        a = SyntheticImageNet(seed=3).sample(8, seed=1)
        b = SyntheticImageNet(seed=3).sample(8, seed=1)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = SyntheticImageNet(seed=3).sample(8, seed=1)
        b = SyntheticImageNet(seed=4).sample(8, seed=1)
        assert not np.allclose(a.images, b.images)

    def test_shapes_and_label_range(self):
        src = SyntheticImageNet(num_classes=5, image_shape=(3, 16, 16))
        ds = src.sample(10)
        assert ds.images.shape == (10, 3, 16, 16)
        assert ds.labels.min() >= 0 and ds.labels.max() < 5

    def test_value_scale_sets_dynamic_range(self):
        """Pixel std should be of order value_scale (paper-realistic)."""
        src = SyntheticImageNet(value_scale=60.0)
        ds = src.sample(32)
        assert 30 < ds.images.std() < 120

    def test_train_test_disjoint(self):
        src = SyntheticImageNet()
        train, test = src.train_test(16, 16)
        assert not np.allclose(train.images, test.images)

    def test_prototypes_shape(self):
        src = SyntheticImageNet(num_classes=7, image_shape=(3, 8, 8))
        assert src.prototypes.shape == (7, 3, 8, 8)

    def test_noise_controls_difficulty(self):
        """Higher noise -> samples further from their prototype."""
        lo = SyntheticImageNet(noise=0.1, seed=5)
        hi = SyntheticImageNet(noise=2.0, seed=5)
        ds_lo = lo.sample(16, seed=1)
        ds_hi = hi.sample(16, seed=1)

        def mean_prototype_distance(src, ds):
            protos = src.prototypes[ds.labels] * src.value_scale
            return np.abs(ds.images - protos).mean()

        assert mean_prototype_distance(hi, ds_hi) > mean_prototype_distance(
            lo, ds_lo
        )

    def test_rejects_single_class(self):
        with pytest.raises(ReproError):
            SyntheticImageNet(num_classes=1)

    def test_rejects_bad_shape(self):
        with pytest.raises(ReproError):
            SyntheticImageNet(image_shape=(3, 16))
