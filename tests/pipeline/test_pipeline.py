"""Tests for the PrecisionOptimizer facade and report rendering."""

import pytest

from repro import PrecisionOptimizer
from repro.config import ProfileSettings, SearchSettings
from repro.errors import ReproError
from repro.pipeline import bitwidth_row, format_table, savings_row


@pytest.fixture(scope="module")
def optimizer(lenet, datasets):
    __, test = datasets
    return PrecisionOptimizer(
        lenet,
        test,
        profile_settings=ProfileSettings(num_images=16, num_delta_points=8),
        search_settings=SearchSettings(tolerance=0.02),
    )


class TestPrecisionOptimizer:
    def test_rejects_unknown_scheme(self, lenet, datasets):
        __, test = datasets
        with pytest.raises(ReproError):
            PrecisionOptimizer(lenet, test, scheme="scheme3")

    def test_profile_cached(self, optimizer):
        first = optimizer.profile()
        second = optimizer.profile()
        assert first is second

    def test_stats_cached(self, optimizer):
        assert optimizer.stats() is optimizer.stats()

    def test_sigma_cached_per_drop(self, optimizer):
        a = optimizer.sigma_for_drop(0.05)
        b = optimizer.sigma_for_drop(0.05)
        assert a is b
        c = optimizer.sigma_for_drop(0.10)
        assert c.sigma >= a.sigma

    def test_optimize_outcome_fields(self, optimizer):
        outcome = optimizer.optimize("input", accuracy_drop=0.05)
        assert set(outcome.bitwidths) == set(optimizer.layer_names)
        assert outcome.validated_accuracy is not None
        assert outcome.sigma_result.sigma > 0

    def test_constraint_validated(self, optimizer):
        """Headline guarantee: 'No accuracy criterion was violated'."""
        outcome = optimizer.optimize("input", accuracy_drop=0.05)
        assert outcome.meets_constraint

    def test_mac_objective_differs_or_matches_input(self, optimizer):
        a = optimizer.optimize("input", accuracy_drop=0.05, validate=False)
        b = optimizer.optimize("mac", accuracy_drop=0.05, validate=False)
        assert set(a.bitwidths) == set(b.bitwidths)

    def test_equal_scheme_outcome(self, optimizer):
        outcome = optimizer.equal_scheme(accuracy_drop=0.05)
        shares = set(round(v, 6) for v in outcome.result.xi.values())
        assert len(shares) == 1

    def test_validate_false_skips_validation(self, optimizer):
        outcome = optimizer.optimize("input", 0.05, validate=False)
        assert outcome.validated_accuracy is None
        assert outcome.meets_constraint is None

    def test_weight_search_integration(self, optimizer):
        outcome = optimizer.optimize(
            "input", accuracy_drop=0.05, search_weights=True
        )
        assert outcome.weight_search is not None
        assert 2 <= outcome.weight_search.bits <= 16

    def test_scheme1_pipeline(self, lenet, datasets):
        __, test = datasets
        opt = PrecisionOptimizer(
            lenet,
            test.subset(64),
            profile_settings=ProfileSettings(num_images=8, num_delta_points=6),
            search_settings=SearchSettings(tolerance=0.05),
            scheme="scheme1",
        )
        outcome = opt.optimize("input", accuracy_drop=0.10)
        assert outcome.sigma_result.sigma > 0


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4  # header, rule, 2 rows

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_bitwidth_row(self):
        row = bitwidth_row("opt", {"c1": 5, "c2": 7}, ["c1", "c2"])
        assert row == {"scheme": "opt", "c1": 5, "c2": 7}

    def test_savings_row_optional_fields(self):
        row = savings_row("x", 7.0, 6.5)
        assert "bw_save_%" not in row
        row = savings_row("x", 7.0, 6.5, bw_save_pct=10.0, energy_save_pct=5.0)
        assert row["bw_save_%"] == 10.0


class TestDescribeOutcome:
    def test_contains_all_sections(self, optimizer):
        from repro.pipeline import describe_outcome

        outcome = optimizer.optimize("input", accuracy_drop=0.05)
        text = describe_outcome(outcome, stats=optimizer.stats())
        assert "sigma_YL" in text
        assert "effective bitwidth" in text
        assert "constraint met" in text
        for name in optimizer.layer_names:
            assert name in text

    def test_without_stats_or_validation(self, optimizer):
        from repro.pipeline import describe_outcome

        outcome = optimizer.optimize("mac", accuracy_drop=0.05, validate=False)
        text = describe_outcome(outcome)
        assert "not validated" in text
        assert "effective bitwidth" not in text


class TestValidationBackoff:
    def test_backoff_triggers_on_validation_miss(
        self, lenet, datasets, monkeypatch
    ):
        """Force the first validation below target; the pipeline must
        shrink sigma and retry rather than return a violating outcome."""
        import repro.pipeline.optimizer as mod

        __, test = datasets
        optimizer = PrecisionOptimizer(
            lenet,
            test.subset(64),
            profile_settings=ProfileSettings(num_images=8, num_delta_points=6),
            search_settings=SearchSettings(tolerance=0.05, num_trials=1),
        )
        real_accuracy = mod.top1_accuracy
        calls = {"n": 0}

        def flaky_accuracy(network, dataset, taps=None, batch_size=64):
            value = real_accuracy(
                network, dataset, taps=taps, batch_size=batch_size
            )
            if taps and calls["n"] == 0:
                calls["n"] += 1
                return 0.0  # sabotage the first tapped validation
            return value

        monkeypatch.setattr(mod, "top1_accuracy", flaky_accuracy)
        outcome = optimizer.optimize("input", accuracy_drop=0.10)
        assert outcome.backoff_steps >= 1
        assert outcome.meets_constraint

    def test_backoff_shrinks_sigma(self, lenet, datasets, monkeypatch):
        """Each back-off step multiplies the budget by 0.93."""
        import repro.pipeline.optimizer as mod

        __, test = datasets
        optimizer = PrecisionOptimizer(
            lenet,
            test.subset(64),
            profile_settings=ProfileSettings(num_images=8, num_delta_points=6),
            search_settings=SearchSettings(tolerance=0.05, num_trials=1),
        )
        real_accuracy = mod.top1_accuracy
        calls = {"n": 0}

        def flaky_accuracy(network, dataset, taps=None, batch_size=64):
            value = real_accuracy(
                network, dataset, taps=taps, batch_size=batch_size
            )
            if taps and calls["n"] < 2:
                calls["n"] += 1
                return 0.0
            return value

        monkeypatch.setattr(mod, "top1_accuracy", flaky_accuracy)
        outcome = optimizer.optimize("input", accuracy_drop=0.10)
        assert outcome.backoff_steps == 2
        expected = outcome.sigma_result.sigma * 0.93**2
        assert outcome.result.sigma == pytest.approx(expected)
