"""Tests for the terminal plotting helpers."""

import pytest

from repro.errors import ReproError
from repro.pipeline import bar_chart, grouped_bar_chart, scatter_plot


class TestScatterPlot:
    def test_renders_all_series_markers(self):
        text = scatter_plot(
            {
                "a": ([0, 1, 2], [0, 1, 2]),
                "b": ([0, 1, 2], [2, 1, 0]),
            }
        )
        assert "o" in text and "x" in text
        assert "legend: o=a  x=b" in text

    def test_axis_ranges_reported(self):
        text = scatter_plot({"s": ([1.0, 5.0], [10.0, 20.0])})
        assert "1" in text and "5" in text
        assert "top=20" in text

    def test_degenerate_single_point(self):
        text = scatter_plot({"s": ([1.0], [1.0])})
        assert "o" in text

    def test_dimensions(self):
        text = scatter_plot({"s": ([0, 1], [0, 1])}, width=20, height=5)
        body = [l for l in text.splitlines() if l.startswith("|")]
        assert len(body) == 5
        assert all(len(l) == 21 for l in body)

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            scatter_plot({})


class TestBarChart:
    def test_longest_bar_is_peak(self):
        text = bar_chart({"small": 1.0, "big": 10.0}, width=10)
        lines = text.splitlines()
        big_line = next(l for l in lines if l.strip().startswith("big"))
        small_line = next(l for l in lines if l.strip().startswith("small"))
        assert big_line.count("#") == 10
        assert small_line.count("#") == 1

    def test_values_shown(self):
        text = bar_chart({"x": 3.5})
        assert "3.5" in text

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            bar_chart({"x": -1.0})

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            bar_chart({})


class TestGroupedBarChart:
    def test_two_schemes_per_group(self):
        text = grouped_bar_chart(
            {
                "conv1": {"baseline": 4.0, "optimized": 2.0},
                "conv2": {"baseline": 1.0, "optimized": 3.0},
            }
        )
        assert "legend: #=baseline  ==optimized" in text
        assert text.count("conv1") == 1  # label printed once per group

    def test_missing_scheme_renders_zero(self):
        text = grouped_bar_chart(
            {"a": {"x": 1.0}, "b": {"x": 1.0, "y": 2.0}}
        )
        assert "0" in text

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            grouped_bar_chart({})
