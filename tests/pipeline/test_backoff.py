"""Coverage for the validation backoff loop in PrecisionOptimizer.

When true-quantization validation lands below target, ``optimize``
shrinks the sigma budget by 7% and recomputes, at most ``max_backoffs``
times.  These tests force both exits of that loop by faking the
validation accuracy measurement.
"""

import pytest

import repro.pipeline.optimizer as optimizer_mod
from repro.config import ProfileSettings, SearchSettings
from repro.models.evaluate import top1_accuracy
from repro.pipeline import PrecisionOptimizer

SETTINGS = ProfileSettings(num_images=8, num_delta_points=6, seed=7)
SEARCH = SearchSettings(num_images=64, tolerance=0.05, num_trials=1, seed=7)


def make_optimizer(lenet, dataset):
    return PrecisionOptimizer(
        lenet,
        dataset,
        profile_settings=SETTINGS,
        search_settings=SEARCH,
        refine=False,
    )


def fake_validation(sequence):
    """top1_accuracy stand-in: real baseline, scripted validations.

    ``sequence`` yields one accuracy per validation call (``taps`` set);
    after it is exhausted the last value repeats.  Baseline calls
    (``taps=None``) measure the real network.
    """
    scripted = list(sequence)
    calls = {"validations": 0}

    def fake(network, dataset, taps=None, batch_size=64):
        if taps is None:
            return top1_accuracy(network, dataset, batch_size=batch_size)
        index = min(calls["validations"], len(scripted) - 1)
        calls["validations"] += 1
        return scripted[index]

    fake.calls = calls
    return fake


class TestValidationBackoff:
    def test_exhausted_backoffs_return_best_effort(
        self, lenet, datasets, monkeypatch
    ):
        __, test = datasets
        opt = make_optimizer(lenet, test)
        monkeypatch.setattr(
            optimizer_mod, "top1_accuracy", fake_validation([0.0])
        )
        outcome = opt.optimize("input", accuracy_drop=0.05)
        # loop exited via backoff >= max_backoffs, not via success
        assert outcome.backoff_steps == 6
        assert outcome.meets_constraint is False
        assert outcome.validated_accuracy == 0.0
        # each backoff shrank the budget by 7%
        sigma0 = opt.sigma_for_drop(0.05).sigma
        assert outcome.result.sigma == pytest.approx(sigma0 * 0.93**6)

    def test_single_backoff_then_recovery(self, lenet, datasets, monkeypatch):
        __, test = datasets
        opt = make_optimizer(lenet, test)
        fake = fake_validation([0.0, 1.0])
        monkeypatch.setattr(optimizer_mod, "top1_accuracy", fake)
        outcome = opt.optimize("input", accuracy_drop=0.05)
        assert outcome.backoff_steps == 1
        assert outcome.meets_constraint is True
        assert fake.calls["validations"] == 2
        sigma0 = opt.sigma_for_drop(0.05).sigma
        assert outcome.result.sigma == pytest.approx(sigma0 * 0.93)

    def test_clean_validation_never_backs_off(
        self, lenet, datasets, monkeypatch
    ):
        __, test = datasets
        opt = make_optimizer(lenet, test)
        monkeypatch.setattr(
            optimizer_mod, "top1_accuracy", fake_validation([1.0])
        )
        outcome = opt.optimize("input", accuracy_drop=0.05)
        assert outcome.backoff_steps == 0
        assert outcome.result.sigma == opt.sigma_for_drop(0.05).sigma

    def test_validate_false_skips_the_loop(self, lenet, datasets, monkeypatch):
        __, test = datasets
        opt = make_optimizer(lenet, test)
        fake = fake_validation([0.0])
        monkeypatch.setattr(optimizer_mod, "top1_accuracy", fake)
        outcome = opt.optimize("input", accuracy_drop=0.05, validate=False)
        assert outcome.backoff_steps == 0
        assert outcome.validated_accuracy is None
        assert outcome.meets_constraint is None
        assert fake.calls["validations"] == 0
