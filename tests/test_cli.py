"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


FAST = [
    "--model",
    "lenet",
    "--train-count",
    "128",
    "--test-count",
    "64",
    "--profile-images",
    "8",
    "--profile-points",
    "6",
    "--seed",
    "321",
]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_model_choicelessly(self):
        # model is free-form; the zoo lookup raises at run time instead
        args = build_parser().parse_args(["profile", "--model", "nope"])
        assert args.model == "nope"

    def test_optimize_defaults(self):
        args = build_parser().parse_args(["optimize"])
        assert args.objective == "input"
        assert args.drop == 0.01
        assert not args.weights

    def test_scheme_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--scheme", "scheme9"])

    def test_resilience_flags_default_off(self):
        args = build_parser().parse_args(["optimize"])
        assert args.resume == ""
        assert args.strict is False

    def test_resilience_flags_parse(self):
        args = build_parser().parse_args(
            ["optimize", "--resume", "/tmp/run", "--strict"]
        )
        assert args.resume == "/tmp/run"
        assert args.strict is True

    def test_sweep_keep_going_flag(self):
        args = build_parser().parse_args(["sweep"])
        assert args.keep_going is False
        args = build_parser().parse_args(["sweep", "--keep-going"])
        assert args.keep_going is True

    def test_ablate_defaults(self):
        args = build_parser().parse_args(["ablate"])
        assert args.drop == 0.05
        assert args.objective == "input"
        assert args.components == ""
        assert args.scenarios == ""
        assert args.chaos_cell == []
        assert args.smoke is False

    def test_ablate_chaos_cell_repeatable(self):
        args = build_parser().parse_args(
            [
                "ablate",
                "--chaos-cell",
                "component/baseline/lenet",
                "--chaos-cell",
                "component/xi:equal/lenet",
            ]
        )
        assert len(args.chaos_cell) == 2


class TestCommands:
    def test_zoo(self, capsys):
        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        assert "alexnet" in out and "resnet152" in out

    def test_profile(self, capsys):
        assert main(["profile"] + FAST) == 0
        out = capsys.readouterr().out
        assert "lambda" in out and "conv1" in out

    def test_optimize(self, capsys):
        code = main(["optimize", "--drop", "0.05"] + FAST)
        out = capsys.readouterr().out
        assert code == 0
        assert "constraint met" in out

    def test_optimize_with_resume_populates_state(self, capsys, tmp_path):
        state = tmp_path / "run-state"
        args = ["optimize", "--drop", "0.05", "--resume", str(state)] + FAST
        assert main(args) == 0
        first = capsys.readouterr().out
        assert (state / "manifest.json").exists()
        assert list((state / "profiles").glob("*.npz"))
        assert list((state / "sigma").glob("drop_*.json"))
        # a second run resumes from the checkpoints and agrees
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_ablate_smoke_with_chaos_and_report(self, capsys, tmp_path):
        out_path = tmp_path / "ablate.json"
        code = main(
            [
                "ablate",
                "--model",
                "lenet",
                "--smoke",
                "--components",
                "xi",
                "--chaos-cell",
                "component/xi:equal/lenet",
                "--output",
                str(out_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "component importance" in out
        assert "1 failed" in out
        assert "SimulatedCrash" in out
        assert out_path.exists()
        import json

        payload = json.loads(out_path.read_text())
        assert payload["schema_version"] == 1
        statuses = {r["cell_id"]: r["status"] for r in payload["rows"]}
        assert statuses == {
            "component/baseline/lenet": "ok",
            "component/xi:equal/lenet": "failed",
        }

    def test_sweep_keep_going_completes(self, capsys):
        # keep-going on a healthy grid is a no-op: same cells, no rows
        # marked failed.
        code = main(
            [
                "sweep",
                "--keep-going",
                "--drops",
                "0.05",
                "--objectives",
                "input",
            ]
            + FAST
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 cells" in out
        assert "FAILED" not in out

    def test_fig2(self, capsys):
        assert main(["fig2"] + FAST) == 0
        out = capsys.readouterr().out
        assert "max_rel_err" in out

    def test_fig3(self, capsys):
        assert main(["fig3"] + FAST) == 0
        out = capsys.readouterr().out
        assert "equal_scheme" in out


class TestSuiteCommand:
    def test_suite_with_subset_and_export(self, capsys, tmp_path):
        code = main(
            ["suite", "--only", "fig1", "--output", str(tmp_path)] + FAST
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "suite finished" in out
        assert (tmp_path / "fig1.json").exists()


@pytest.mark.slow
class TestSlowCommands:
    def test_table2(self, capsys):
        assert main(["table2", "--drop", "0.05"] + FAST) == 0
        out = capsys.readouterr().out
        assert "saving" in out

    def test_cost(self, capsys):
        assert main(["cost", "--drop", "0.05"] + FAST) == 0
        out = capsys.readouterr().out
        assert "ratio" in out


class TestRunQuantized:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["run-quantized"])
        assert args.allocation == ""
        assert args.weight_bits == 16
        assert args.backend == "fast"
        assert args.no_pack is False
        assert args.drop == 0.01

    def test_backend_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-quantized", "--backend", "cuda"])

    def test_executes_saved_allocation(self, capsys, tmp_path):
        path = tmp_path / "alloc.json"
        assert (
            main(["optimize", "--drop", "0.05", "--output", str(path)] + FAST)
            == 0
        )
        capsys.readouterr()
        code = main(
            ["run-quantized", "--allocation", str(path), "--drop", "0.05"]
            + FAST
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "accuracy budget met" in out
        assert "measured" in out

    def test_reference_backend_unpacked_matches_budget(self, capsys, tmp_path):
        path = tmp_path / "alloc.json"
        main(["optimize", "--drop", "0.05", "--output", str(path)] + FAST)
        capsys.readouterr()
        code = main(
            [
                "run-quantized",
                "--allocation",
                str(path),
                "--drop",
                "0.05",
                "--backend",
                "reference",
                "--no-pack",
            ]
            + FAST
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "accuracy budget met" in out
