"""Unit + property tests for fixed-point formats (paper Sec. II-A)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.nn.statistics import LayerStats
from repro.quant import (
    FixedPointFormat,
    format_for,
    fraction_bits_for_delta,
    integer_bits_for_range,
)


class TestFormatProperties:
    def test_step_and_delta(self):
        fmt = FixedPointFormat(4, 3)
        assert fmt.step == 0.125
        assert fmt.delta == 0.0625
        assert fmt.total_bits == 7

    def test_negative_fraction_bits(self):
        """Paper's integer-bit dropping: Delta > 1 means F < 0."""
        fmt = FixedPointFormat(8, -2)
        assert fmt.step == 4.0
        assert fmt.delta == 2.0
        assert fmt.total_bits == 6

    def test_range_symmetric_signed(self):
        fmt = FixedPointFormat(4, 2)
        assert fmt.min_value == -8.0
        assert fmt.max_value == 8.0 - 0.25

    def test_error_std_matches_widrow_model(self):
        fmt = FixedPointFormat(4, 3)
        assert fmt.error_std == pytest.approx(2 * fmt.delta / math.sqrt(12))

    def test_rejects_zero_integer_bits(self):
        with pytest.raises(QuantizationError):
            FixedPointFormat(0, 4)

    def test_rejects_non_positive_total(self):
        with pytest.raises(QuantizationError):
            FixedPointFormat(2, -2)

    def test_str(self):
        assert str(FixedPointFormat(4, -1)) == "4.-1"


class TestQuantize:
    def test_rounds_to_nearest_step(self):
        fmt = FixedPointFormat(4, 2)
        x = np.array([0.1, 0.13, 0.38, -0.4])
        np.testing.assert_allclose(fmt.quantize(x), [0.0, 0.25, 0.5, -0.5])

    def test_saturates_out_of_range(self):
        fmt = FixedPointFormat(3, 1)  # range [-4, 3.5]
        x = np.array([100.0, -100.0])
        np.testing.assert_allclose(fmt.quantize(x), [3.5, -4.0])

    def test_zero_is_exact(self):
        fmt = FixedPointFormat(4, -3)
        assert fmt.quantize(np.array([0.0]))[0] == 0.0

    def test_idempotent(self):
        fmt = FixedPointFormat(5, 3)
        x = np.random.default_rng(0).normal(size=100) * 5
        q = fmt.quantize(x)
        np.testing.assert_array_equal(fmt.quantize(q), q)

    @settings(max_examples=100, deadline=None)
    @given(
        integer_bits=st.integers(2, 12),
        fraction_bits=st.integers(-4, 12),
        seed=st.integers(0, 10_000),
    )
    def test_error_bounded_by_delta_in_range(
        self, integer_bits, fraction_bits, seed
    ):
        """PROPERTY: in-range values round with error <= delta."""
        if integer_bits + fraction_bits < 1:
            return
        fmt = FixedPointFormat(integer_bits, fraction_bits)
        rng = np.random.default_rng(seed)
        x = rng.uniform(fmt.min_value, fmt.max_value, size=64)
        err = np.abs(fmt.rounding_error(x))
        assert np.all(err <= fmt.delta * (1 + 1e-12))

    @settings(max_examples=50, deadline=None)
    @given(fraction_bits=st.integers(-4, 16))
    def test_uniform_error_statistics(self, fraction_bits):
        """PROPERTY: rounding error of dense uniform input is ~uniform
        with std ~ 2*delta/sqrt(12) (Widrow's model, paper Sec. II-A)."""
        fmt = FixedPointFormat(8, fraction_bits)
        rng = np.random.default_rng(fraction_bits + 100)
        x = rng.uniform(-100, 100, size=20_000)
        err = fmt.rounding_error(x)
        assert err.std() == pytest.approx(fmt.error_std, rel=0.05)
        assert abs(err.mean()) < 3 * fmt.error_std / np.sqrt(err.size) * 2


class TestFractionBitsForDelta:
    @pytest.mark.parametrize(
        "delta,expected",
        [
            (0.5, 0),     # 2**-(0+1) = 0.5
            (0.25, 1),
            (0.0625, 3),
            (1.0, -1),    # tolerating 1.0 drops one integer bit
            (2.0, -2),
            (0.3, 1),     # needs the next finer format than 0.5
        ],
    )
    def test_known_values(self, delta, expected):
        assert fraction_bits_for_delta(delta) == expected

    def test_rejects_non_positive(self):
        with pytest.raises(QuantizationError):
            fraction_bits_for_delta(0.0)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_guarantee_property(self, delta):
        """PROPERTY: the chosen F's worst-case error never exceeds delta,
        and one fewer bit would exceed it."""
        f = fraction_bits_for_delta(delta)
        assert 2.0 ** -(f + 1) <= delta * (1 + 1e-9)
        assert 2.0 ** -(f) > delta * (1 - 1e-9)


class TestIntegerBitsForRange:
    @pytest.mark.parametrize(
        "max_abs,expected",
        [(161, 9), (139, 9), (443, 10), (415, 10), (1.0, 2), (0.5, 1), (0, 1)],
    )
    def test_paper_values(self, max_abs, expected):
        assert integer_bits_for_range(max_abs) == expected

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=1e-3, max_value=1e6))
    def test_range_covered(self, max_abs):
        """PROPERTY: the chosen I covers [-max_abs, max_abs]."""
        bits = integer_bits_for_range(max_abs)
        assert 2.0 ** (bits - 1) >= max_abs * (1 - 1e-12)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=1e-3, max_value=1e6))
    def test_agrees_with_layerstats(self, max_abs):
        """Cross-consistency with the duplicated nn.statistics logic."""
        stat = LayerStats(name="x", num_inputs=1, num_macs=1, max_abs_input=max_abs)
        assert stat.integer_bits == integer_bits_for_range(max_abs)


class TestFormatFor:
    def test_combines_both_constraints(self):
        fmt = format_for(delta=0.1, max_abs=100.0)
        assert fmt.delta <= 0.1
        assert fmt.max_value >= 100.0

    def test_quantization_respects_both(self):
        fmt = format_for(delta=0.05, max_abs=10.0)
        x = np.linspace(-10, 10, 999)
        err = np.abs(fmt.rounding_error(x))
        assert err.max() <= 0.05 + 1e-12


class TestQuantizeEdgeCases:
    """Edge cases the integer runtime leans on (ISSUE 8 satellite)."""

    def test_negative_fraction_round_trip(self):
        """Delta > 1 drops integer bits: every multiple of the (large)
        step inside the range survives a quantize round-trip exactly."""
        fmt = FixedPointFormat(8, -3)  # step 8, range [-128, 120]
        assert fmt.delta == 4.0
        exact = np.arange(fmt.min_value, fmt.max_value + 1, fmt.step)
        np.testing.assert_array_equal(fmt.quantize(exact), exact)
        # ... and the implicit shift means off-step values snap to the
        # nearest step, with idempotence.
        q = fmt.quantize(exact + 2.9)
        np.testing.assert_array_equal(fmt.quantize(q), q)
        assert set(np.unique(q % fmt.step)) == {0.0}

    def test_negative_fraction_matches_integer_codes(self):
        """quantize == codes * step for F < 0 (the runtime's identity)."""
        from repro.quant.runtime import codes_to_values, quantize_to_codes

        fmt = FixedPointFormat(6, -2)
        x = np.random.default_rng(1).normal(scale=10.0, size=256)
        codes = quantize_to_codes(x, fmt)
        np.testing.assert_array_equal(codes_to_values(codes, fmt), fmt.quantize(x))

    def test_saturation_clamps_exactly_at_bounds(self):
        fmt = FixedPointFormat(4, 2)  # range [-8, 8 - 0.25]
        eps = 1e-9
        x = np.array(
            [fmt.min_value, fmt.min_value - eps, -1e12,
             fmt.max_value, fmt.max_value + eps, 1e12, np.inf, -np.inf]
        )
        q = fmt.quantize(x)
        np.testing.assert_array_equal(
            q,
            [fmt.min_value, fmt.min_value, fmt.min_value,
             fmt.max_value, fmt.max_value, fmt.max_value,
             fmt.max_value, fmt.min_value],
        )

    @pytest.mark.parametrize("integer_bits,fraction_bits", [(1, -1), (3, -3), (5, -6)])
    def test_zero_or_negative_width_rejected(self, integer_bits, fraction_bits):
        with pytest.raises(QuantizationError):
            FixedPointFormat(integer_bits, fraction_bits)
