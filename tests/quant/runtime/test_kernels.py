"""Integer GEMM backends: exactness, bit-identity, overflow gating."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant.runtime import (
    FLOAT64_EXACT_BOUND,
    accumulation_bound,
    check_accumulator,
    integer_gemm,
    numba_available,
    requantize,
)


def random_codes(rng, shape, bits):
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    return rng.integers(lo, hi + 1, size=shape, dtype=np.int64)


class TestAccumulationBound:
    def test_formula(self):
        # depth * 2**(Ba-1) * 2**(Bw-1)
        assert accumulation_bound(10, 8, 16) == 10 * 128 * 32768

    def test_rejects_empty_dot_product(self):
        with pytest.raises(QuantizationError):
            accumulation_bound(0, 8, 8)

    def test_check_rejects_overflow(self):
        with pytest.raises(QuantizationError):
            check_accumulator(1 << 62, "reference")
        with pytest.raises(QuantizationError):
            check_accumulator(1 << 31, "numba")
        check_accumulator((1 << 31) - 1, "numba")

    def test_check_rejects_unknown_backend(self):
        with pytest.raises(QuantizationError):
            check_accumulator(1, "cuda")


class TestIntegerGemm:
    def test_fast_equals_reference_exactly(self):
        rng = np.random.default_rng(11)
        a = random_codes(rng, (13, 57), 12)
        b = random_codes(rng, (57, 9), 16)
        bound = accumulation_bound(57, 12, 16)
        ref = integer_gemm(a, b, "reference", bound)
        fast = integer_gemm(a, b, "fast", bound)
        np.testing.assert_array_equal(ref, fast)
        assert ref.dtype == fast.dtype == np.int64
        # And both equal the slow pure-python truth on a corner.
        assert ref[0, 0] == int(sum(int(x) * int(y) for x, y in zip(a[0], b[:, 0])))

    def test_fast_falls_back_outside_float64_envelope(self):
        """A bound >= 2**53 must not route through float64 BLAS."""
        rng = np.random.default_rng(13)
        a = random_codes(rng, (4, 8), 16)
        b = random_codes(rng, (8, 4), 16)
        huge_bound = FLOAT64_EXACT_BOUND + 1
        ref = integer_gemm(a, b, "reference", huge_bound)
        fast = integer_gemm(a, b, "fast", huge_bound)
        np.testing.assert_array_equal(ref, fast)

    def test_numba_backend_gated_when_missing(self):
        a = np.ones((2, 2), dtype=np.int64)
        if numba_available():
            out = integer_gemm(a, a, "numba", 100)
            np.testing.assert_array_equal(out, integer_gemm(a, a, "reference", 100))
        else:
            with pytest.raises(QuantizationError, match="numba"):
                integer_gemm(a, a, "numba", 100)


class TestRequantize:
    def test_exact_power_of_two_scaling(self):
        acc = np.array([[3, -5], [1024, 0]], dtype=np.int64)
        np.testing.assert_array_equal(
            requantize(acc, 2), np.array([[0.75, -1.25], [256.0, 0.0]])
        )

    def test_negative_shift_scales_up(self):
        acc = np.array([3], dtype=np.int64)
        assert requantize(acc, -2)[0] == 12.0
