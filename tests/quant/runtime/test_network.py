"""QuantizedNetwork: correctness vs the tap simulation + bit-identity.

The contract under test (``docs/quantized-execution.md``):

* integer execution tracks the float simulation (taps) up to the
  extra 16-bit weight rounding — small, and shrinking as weight_bits
  grows;
* results are bit-identical across backends, packed vs unpacked
  activations, and batched vs sequential execution;
* measured activation traffic matches the analytic bandwidth model.
"""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.hardware.bandwidth import layer_traffic_bits
from repro.models import build_model
from repro.nn import INPUT, Network
from repro.nn.layers.activation import ReLU
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.statistics import measure_ranges, ordered_stats
from repro.quant import BitwidthAllocation
from repro.quant.runtime import (
    QuantizedNetwork,
    RuntimeSpec,
    build_layer_plan,
    numba_available,
)


def tiny_grouped_network(seed=0):
    """A small net covering dense, depthwise, and grouped conv paths."""
    rng = np.random.default_rng(seed)
    net = Network("tiny", (4, 8, 8))
    net.add(
        Conv2D(
            "conv", [INPUT], rng.normal(size=(6, 4, 3, 3)),
            bias=rng.normal(size=6), padding=1,
        )
    )
    net.add(ReLU("relu", ["conv"]))
    net.add(
        Conv2D(
            "dw", ["relu"], rng.normal(size=(6, 1, 3, 3)),
            bias=rng.normal(size=6), padding=1, groups=6,
        )
    )
    net.add(
        Conv2D(
            "grouped", ["dw"], rng.normal(size=(8, 3, 3, 3)),
            padding=1, groups=2,
        )
    )
    net.add(Dense("fc", ["grouped"], rng.normal(size=(5, 8 * 8 * 8))))
    return net


def allocation_for(net, images, total_bits=10):
    stats = measure_ranges(net, images)
    return BitwidthAllocation.uniform(ordered_stats(net, stats), total_bits), stats


@pytest.fixture(scope="module")
def tiny():
    net = tiny_grouped_network()
    images = np.random.default_rng(42).normal(scale=2.0, size=(12, 4, 8, 8))
    allocation, stats = allocation_for(net, images)
    return net, images, allocation, stats


class TestCorrectness:
    def test_tracks_tap_simulation(self, tiny):
        """Integer execution == float sim up to weight rounding only."""
        net, images, allocation, _ = tiny
        sim = net.forward(images, taps=allocation.taps(net))
        out = QuantizedNetwork(net, allocation).forward(images)
        scale = np.max(np.abs(sim))
        assert np.max(np.abs(out - sim)) / scale < 5e-3

    def test_wider_weights_converge_to_simulation(self, tiny):
        """The runtime-vs-sim gap is the weight rounding: growing
        weight_bits must shrink it monotonically (up to noise)."""
        net, images, allocation, _ = tiny
        sim = net.forward(images, taps=allocation.taps(net))
        gaps = []
        for bits in (6, 10, 16):
            out = QuantizedNetwork(
                net, allocation, RuntimeSpec(weight_bits=bits)
            ).forward(images)
            gaps.append(np.max(np.abs(out - sim)))
        assert gaps[2] < gaps[1] < gaps[0]

    def test_dequantized_weights_match_format(self, tiny):
        net, _, allocation, _ = tiny
        q = QuantizedNetwork(net, allocation)
        for name in allocation.names:
            plan = q.plans[name]
            w = net[name].weight
            dq = q.dequantized_weight(name)
            assert dq.shape == w.shape
            assert np.max(np.abs(dq - w)) <= plan.weight_format.delta * (1 + 1e-12)


class TestBitIdentity:
    def test_across_backends_and_packing(self, tiny):
        net, images, allocation, _ = tiny
        reference = QuantizedNetwork(
            net, allocation, RuntimeSpec(backend="reference")
        ).forward(images)
        for backend in ("fast",) + (("numba",) if numba_available() else ()):
            for pack in (True, False):
                out = QuantizedNetwork(
                    net,
                    allocation,
                    RuntimeSpec(backend=backend, pack_activations=pack),
                ).forward(images)
                np.testing.assert_array_equal(out, reference)

    def test_forward_from_many_vs_sequential(self, tiny):
        net, images, allocation, _ = tiny
        q = QuantizedNetwork(net, allocation)
        batches = [images[:4], images[4:8], images[8:]]
        stacked = q.forward_from_many(batches)
        sequential = np.stack([q.forward(b) for b in batches])
        np.testing.assert_array_equal(stacked, sequential)

    def test_forward_from_many_slices_unquantized_gemm_layers(self):
        """Layers outside the allocation run float GEMMs whose BLAS
        kernels depend on batch shape; the batched path must slice them
        back to per-batch shapes to stay bitwise faithful."""
        net = tiny_grouped_network(seed=3)
        images = np.random.default_rng(5).normal(size=(8, 4, 8, 8))
        stats = measure_ranges(net, images)
        # Quantize only the first conv; dw/grouped/fc stay float.
        full = ordered_stats(net, stats)
        allocation = BitwidthAllocation.uniform(full[:1], 10)
        q = QuantizedNetwork(net, allocation)
        batches = [images[:4], images[4:]]
        stacked = q.forward_from_many(batches)
        sequential = np.stack([q.forward(b) for b in batches])
        np.testing.assert_array_equal(stacked, sequential)

    def test_lenet_backends_identical(self):
        net = build_model("lenet")
        images = np.random.default_rng(0).normal(scale=50.0, size=(8,) + net.input_shape)
        allocation, _ = allocation_for(net, images, total_bits=8)
        a = QuantizedNetwork(net, allocation, RuntimeSpec(backend="reference")).forward(images)
        b = QuantizedNetwork(net, allocation, RuntimeSpec(backend="fast")).forward(images)
        np.testing.assert_array_equal(a, b)


class TestTrafficAccounting:
    def test_measured_matches_analytic_model(self, tiny):
        net, images, allocation, stats = tiny
        q = QuantizedNetwork(net, allocation)
        q.forward(images)
        measured = q.measured_input_bits()
        analytic = layer_traffic_bits(stats, allocation)
        for name in allocation.names:
            # Byte-boundary padding is per forward call; one batch of
            # 12 images stays well inside 10%.
            assert measured[name] == pytest.approx(analytic[name], rel=0.10)

    def test_unpacked_counts_exact_bits(self, tiny):
        net, images, allocation, stats = tiny
        q = QuantizedNetwork(net, allocation, RuntimeSpec(pack_activations=False))
        q.forward(images)
        measured = q.measured_input_bits()
        analytic = layer_traffic_bits(stats, allocation)
        for name in allocation.names:
            assert measured[name] == analytic[name]

    def test_counters_reset(self, tiny):
        net, images, allocation, _ = tiny
        q = QuantizedNetwork(net, allocation)
        q.forward(images)
        q.reset_traffic()
        assert q.images_seen == 0
        with pytest.raises(QuantizationError):
            q.measured_input_bits()


class TestValidation:
    def test_rejects_unknown_layer(self, tiny):
        net, images, _, stats = tiny
        from repro.quant.allocation import LayerAllocation

        bogus = BitwidthAllocation([LayerAllocation("nope", 4, 4)])
        with pytest.raises(QuantizationError):
            QuantizedNetwork(net, bogus)

    def test_rejects_non_dot_product_layer(self, tiny):
        net, _, _, _ = tiny
        from repro.quant.allocation import LayerAllocation

        relu_alloc = BitwidthAllocation([LayerAllocation("relu", 4, 4)])
        with pytest.raises(QuantizationError):
            QuantizedNetwork(net, relu_alloc)

    def test_plan_requires_weights(self):
        relu = ReLU("r", [INPUT])
        with pytest.raises(QuantizationError):
            build_layer_plan(relu, 4, 4, RuntimeSpec())

    def test_forward_from_many_shape_checks(self, tiny):
        net, images, allocation, _ = tiny
        q = QuantizedNetwork(net, allocation)
        with pytest.raises(QuantizationError):
            q.forward_from_many([])
        with pytest.raises(QuantizationError):
            q.forward_from_many([images[:4], images[:2]])
