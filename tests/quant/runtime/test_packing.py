"""Bit-packing round-trips: codes, values, and the byte accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quant import FixedPointFormat
from repro.quant.runtime import (
    MAX_PACK_BITS,
    PackedTensor,
    code_bounds,
    codes_to_values,
    pack_codes,
    packed_nbytes,
    quantize_to_codes,
    unpack_codes,
)


class TestCodeBounds:
    @pytest.mark.parametrize(
        "bits,lo,hi",
        [(1, -1, 0), (2, -2, 1), (8, -128, 127), (16, -32768, 32767),
         (32, -(1 << 31), (1 << 31) - 1)],
    )
    def test_two_complement_ranges(self, bits, lo, hi):
        assert code_bounds(bits) == (lo, hi)

    @pytest.mark.parametrize("bits", [0, -1, 33, 64])
    def test_rejects_unpackable_widths(self, bits):
        with pytest.raises(QuantizationError):
            code_bounds(bits)


class TestQuantizeToCodes:
    def test_matches_fmt_quantize_bit_for_bit(self):
        """codes * step must equal FixedPointFormat.quantize exactly."""
        rng = np.random.default_rng(7)
        for integer_bits, fraction_bits in [(4, 4), (2, 9), (8, -3), (1, 6)]:
            fmt = FixedPointFormat(integer_bits, fraction_bits)
            x = rng.normal(scale=2.0 ** integer_bits, size=512)
            codes = quantize_to_codes(x, fmt)
            np.testing.assert_array_equal(
                codes_to_values(codes, fmt), fmt.quantize(x)
            )

    def test_codes_saturate_at_word_bounds(self):
        fmt = FixedPointFormat(3, 2)
        lo, hi = code_bounds(fmt.total_bits)
        codes = quantize_to_codes(np.array([1e9, -1e9]), fmt)
        assert codes.tolist() == [hi, lo]


class TestPackUnpack:
    @settings(max_examples=60, deadline=None)
    @given(
        bits=st.integers(1, MAX_PACK_BITS),
        count=st.integers(0, 200),
        seed=st.integers(0, 10_000),
    )
    def test_round_trip_any_width(self, bits, count, seed):
        """PROPERTY: pack -> unpack is the identity for in-range codes."""
        lo, hi = code_bounds(bits)
        codes = np.random.default_rng(seed).integers(
            lo, hi + 1, size=count, dtype=np.int64
        )
        packed = pack_codes(codes, bits)
        assert packed.nbytes == packed_nbytes(count, bits)
        np.testing.assert_array_equal(
            unpack_codes(packed, bits, count), codes
        )

    def test_extreme_codes_round_trip(self):
        for bits in (1, 2, 7, 8, 9, 16, 31, 32):
            lo, hi = code_bounds(bits)
            codes = np.array([lo, hi, 0, -1 if bits > 1 else lo])
            np.testing.assert_array_equal(
                unpack_codes(pack_codes(codes, bits), bits, codes.size),
                codes,
            )

    def test_out_of_range_codes_raise(self):
        with pytest.raises(QuantizationError):
            pack_codes(np.array([128]), 8)
        with pytest.raises(QuantizationError):
            pack_codes(np.array([-129]), 8)

    def test_truncated_stream_raises(self):
        packed = pack_codes(np.arange(-4, 4), 4)
        with pytest.raises(QuantizationError):
            unpack_codes(packed, 4, 100)


class TestPackedTensor:
    def test_from_codes_round_trip_preserves_shape_and_values(self):
        fmt = FixedPointFormat(4, 6)
        x = np.random.default_rng(3).normal(size=(5, 3, 4, 4))
        codes = quantize_to_codes(x, fmt)
        tensor = PackedTensor.from_codes(codes, fmt.total_bits, fmt.fraction_bits)
        np.testing.assert_array_equal(tensor.codes(), codes)
        np.testing.assert_array_equal(tensor.values(), fmt.quantize(x))
        assert tensor.shape == codes.shape
        assert tensor.packed_bits == codes.size * fmt.total_bits

    def test_nbytes_is_the_packed_footprint(self):
        codes = np.zeros(100, dtype=np.int64)
        tensor = PackedTensor.from_codes(codes, 5, 2)
        assert tensor.nbytes == (100 * 5 + 7) // 8  # 63 bytes, not 800
