"""Packed-weight persistence: keys, round-trips, corruption-as-miss."""

import numpy as np
import pytest

from repro.cache import ResultCache
from repro.nn.statistics import measure_ranges, ordered_stats
from repro.quant import BitwidthAllocation
from repro.quant.runtime import (
    PACKED_WEIGHTS_NAMESPACE,
    RuntimeSpec,
    build_quantized_network,
    load_packed_weights,
    packed_weights_key,
    store_packed_weights,
)

from .test_network import tiny_grouped_network


@pytest.fixture()
def setup(tmp_path):
    net = tiny_grouped_network(seed=9)
    images = np.random.default_rng(1).normal(scale=2.0, size=(6, 4, 8, 8))
    stats = measure_ranges(net, images)
    allocation = BitwidthAllocation.uniform(ordered_stats(net, stats), 9)
    cache = ResultCache(tmp_path / "cache")
    return net, images, allocation, cache


class TestRoundTrip:
    def test_second_build_hits_and_is_bit_identical(self, setup):
        net, images, allocation, cache = setup
        cold = build_quantized_network(net, allocation, cache=cache)
        assert cache.counters.writes == 1
        warm = build_quantized_network(net, allocation, cache=cache)
        assert cache.counters.hits >= 1
        np.testing.assert_array_equal(cold.forward(images), warm.forward(images))
        for name in allocation.names:
            np.testing.assert_array_equal(
                cold.plans[name].weight_codes, warm.plans[name].weight_codes
            )

    def test_store_load_explicit(self, setup):
        net, _, allocation, cache = setup
        spec = RuntimeSpec()
        q = build_quantized_network(net, allocation, spec)
        key = packed_weights_key(net, allocation, spec)
        store_packed_weights(
            cache, key, {n: p.packed_weight for n, p in q.plans.items()}
        )
        restored = load_packed_weights(cache, key, allocation.names)
        assert restored is not None
        for name in allocation.names:
            original = q.plans[name].packed_weight
            np.testing.assert_array_equal(restored[name].codes(), original.codes())
            assert restored[name].bits == original.bits
            assert restored[name].fraction_bits == original.fraction_bits

    def test_missing_layer_is_a_miss(self, setup):
        net, _, allocation, cache = setup
        spec = RuntimeSpec()
        q = build_quantized_network(net, allocation, spec)
        key = packed_weights_key(net, allocation, spec)
        partial = {n: p.packed_weight for n, p in list(q.plans.items())[:1]}
        store_packed_weights(cache, key, partial)
        assert load_packed_weights(cache, key, allocation.names) is None


class TestKeying:
    def test_key_depends_on_weight_bits_not_backend(self, setup):
        net, _, allocation, _ = setup
        base = packed_weights_key(net, allocation, RuntimeSpec())
        assert packed_weights_key(
            net, allocation, RuntimeSpec(backend="reference")
        ) == base
        assert packed_weights_key(
            net, allocation, RuntimeSpec(pack_activations=False)
        ) == base
        assert packed_weights_key(
            net, allocation, RuntimeSpec(weight_bits=8)
        ) != base

    def test_key_depends_on_allocation_and_weights(self, setup):
        net, _, allocation, _ = setup
        spec = RuntimeSpec()
        base = packed_weights_key(net, allocation, spec)
        from repro.quant.allocation import LayerAllocation

        first = allocation.names[0]
        changed = allocation.with_layer(
            LayerAllocation(first, allocation[first].integer_bits, 2)
        )
        assert packed_weights_key(net, changed, spec) != base
        other_net = tiny_grouped_network(seed=10)
        assert packed_weights_key(other_net, allocation, spec) != base

    def test_corrupt_entry_is_a_miss(self, setup):
        net, images, allocation, cache = setup
        spec = RuntimeSpec()
        build_quantized_network(net, allocation, spec, cache=cache)
        key = packed_weights_key(net, allocation, spec)
        path = cache.entry_path(PACKED_WEIGHTS_NAMESPACE, key, ".npb")
        path.write_bytes(path.read_bytes()[:40])  # truncate
        assert load_packed_weights(cache, key, allocation.names) is None
        # ... and the builder recovers by re-packing + re-storing.
        rebuilt = build_quantized_network(net, allocation, spec, cache=cache)
        reference = build_quantized_network(net, allocation, spec)
        np.testing.assert_array_equal(
            rebuilt.forward(images), reference.forward(images)
        )
