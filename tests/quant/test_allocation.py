"""Unit tests for BitwidthAllocation and cost accounting."""

import numpy as np
import pytest

from repro.config import MAX_BITWIDTH, MIN_BITWIDTH
from repro.errors import QuantizationError
from repro.nn.statistics import LayerStats
from repro.quant import BitwidthAllocation, LayerAllocation, pareto_front


@pytest.fixture()
def stats():
    return [
        LayerStats("a", num_inputs=100, num_macs=1000, max_abs_input=100.0),
        LayerStats("b", num_inputs=50, num_macs=4000, max_abs_input=10.0),
        LayerStats("c", num_inputs=10, num_macs=500, max_abs_input=200.0),
    ]


class TestLayerAllocation:
    def test_total_bits(self):
        assert LayerAllocation("a", 8, 4).total_bits == 12

    def test_negative_fraction_reduces_total(self):
        assert LayerAllocation("a", 8, -3).total_bits == 5

    def test_clamped_to_bounds(self):
        assert LayerAllocation("a", 8, -20).total_bits == MIN_BITWIDTH
        assert LayerAllocation("a", 8, 40).total_bits == MAX_BITWIDTH

    def test_fmt_roundtrip(self):
        alloc = LayerAllocation("a", 6, 2)
        assert alloc.fmt.integer_bits == 6
        assert alloc.fmt.fraction_bits == 2


class TestConstruction:
    def test_from_deltas(self, stats):
        alloc = BitwidthAllocation.from_deltas(
            stats, {"a": 0.25, "b": 0.5, "c": 1.0}
        )
        # a: I=8 (max 100), F=1 -> 9 bits
        assert alloc["a"].total_bits == integer_bits_a(stats) + 1
        assert alloc["b"].fraction_bits == 0
        assert alloc["c"].fraction_bits == -1

    def test_from_deltas_clamps_negative_fraction_when_disabled(self, stats):
        alloc = BitwidthAllocation.from_deltas(
            stats, {"a": 4.0, "b": 4.0, "c": 4.0}, allow_negative_fraction=False
        )
        for layer in alloc:
            assert layer.fraction_bits == 0

    def test_uniform(self, stats):
        alloc = BitwidthAllocation.uniform(stats, 8)
        assert all(a.total_bits == 8 for a in alloc)

    def test_from_bitwidths(self, stats):
        alloc = BitwidthAllocation.from_bitwidths(stats, {"a": 5, "b": 7, "c": 9})
        assert alloc.bitwidths() == {"a": 5, "b": 7, "c": 9}

    def test_rejects_empty(self):
        with pytest.raises(QuantizationError):
            BitwidthAllocation([])

    def test_rejects_duplicates(self):
        layers = [LayerAllocation("a", 4, 2), LayerAllocation("a", 4, 3)]
        with pytest.raises(QuantizationError):
            BitwidthAllocation(layers)

    def test_getitem_unknown(self, stats):
        alloc = BitwidthAllocation.uniform(stats, 8)
        with pytest.raises(QuantizationError):
            alloc["ghost"]


class TestWithLayer:
    def test_replaces_one_layer(self, stats):
        alloc = BitwidthAllocation.uniform(stats, 8)
        new = alloc.with_layer(LayerAllocation("b", 4, 2))
        assert new["b"].total_bits == 6
        assert new["a"].total_bits == 8
        # original untouched
        assert alloc["b"].total_bits == 8

    def test_rejects_unknown_layer(self, stats):
        alloc = BitwidthAllocation.uniform(stats, 8)
        with pytest.raises(QuantizationError):
            alloc.with_layer(LayerAllocation("zz", 4, 2))


class TestCosts:
    def test_input_bits(self, stats):
        alloc = BitwidthAllocation.uniform(stats, 8)
        by_name = {s.name: s for s in stats}
        assert alloc.input_bits(by_name) == 8 * (100 + 50 + 10)

    def test_mac_bits(self, stats):
        alloc = BitwidthAllocation.uniform(stats, 8)
        by_name = {s.name: s for s in stats}
        assert alloc.mac_bits(by_name) == 8 * (1000 + 4000 + 500)

    def test_effective_bitwidth_uniform_case(self, stats):
        """Uniform 8-bit allocation has effective bitwidth exactly 8."""
        alloc = BitwidthAllocation.uniform(stats, 8)
        rho = {s.name: float(s.num_inputs) for s in stats}
        assert alloc.effective_bitwidth(rho) == pytest.approx(8.0)

    def test_effective_bitwidth_weighted(self, stats):
        alloc = BitwidthAllocation.from_bitwidths(stats, {"a": 4, "b": 8, "c": 16})
        rho = {"a": 1.0, "b": 1.0, "c": 2.0}
        expected = (4 + 8 + 32) / 4
        assert alloc.effective_bitwidth(rho) == pytest.approx(expected)

    def test_paper_effective_bitwidth_example(self):
        """Paper Sec. V-D: baseline 2833/397.6 ~= 7.1 for AlexNet."""
        paper_stats = [
            LayerStats("conv1", 154_600, 0, 161),
            LayerStats("conv2", 70_000, 0, 139),
            LayerStats("conv3", 43_200, 0, 139),
            LayerStats("conv4", 64_900, 0, 443),
            LayerStats("conv5", 64_900, 0, 415),
        ]
        alloc = BitwidthAllocation.from_bitwidths(
            paper_stats,
            {"conv1": 9, "conv2": 7, "conv3": 4, "conv4": 5, "conv5": 7},
        )
        rho = {s.name: float(s.num_inputs) for s in paper_stats}
        assert alloc.effective_bitwidth(rho) == pytest.approx(7.1, abs=0.05)

    def test_effective_bitwidth_rejects_zero_weights(self, stats):
        alloc = BitwidthAllocation.uniform(stats, 8)
        with pytest.raises(QuantizationError):
            alloc.effective_bitwidth({s.name: 0.0 for s in stats})


class TestTaps:
    def test_taps_quantize_inputs(self, stats):
        alloc = BitwidthAllocation.uniform(stats, 6)
        taps = alloc.taps()
        x = np.array([0.33, 1.77, -2.21])
        q = taps["b"](x)
        fmt = alloc["b"].fmt
        np.testing.assert_array_equal(q, fmt.quantize(x))

    def test_taps_validate_against_network(self, stats, lenet):
        alloc = BitwidthAllocation.uniform(stats, 6)
        with pytest.raises(QuantizationError):
            alloc.taps(lenet)  # lenet has no layers named a/b/c


class TestParetoFront:
    def test_keeps_non_dominated(self, stats):
        a = BitwidthAllocation.uniform(stats, 8)
        candidates = [(a, 1.0, 5.0), (a, 2.0, 2.0), (a, 5.0, 1.0), (a, 3.0, 3.0)]
        front = pareto_front(candidates)
        costs = {(c1, c2) for __, c1, c2 in front}
        assert (3.0, 3.0) not in costs
        assert len(front) == 3

    def test_single_candidate(self, stats):
        a = BitwidthAllocation.uniform(stats, 8)
        assert pareto_front([(a, 1.0, 1.0)]) == [(a, 1.0, 1.0)]


def integer_bits_a(stats):
    return stats[0].integer_bits
