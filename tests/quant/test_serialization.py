"""Tests for allocation JSON serialization."""

import pytest

from repro.errors import QuantizationError
from repro.nn.statistics import LayerStats
from repro.quant import (
    BitwidthAllocation,
    allocation_from_dict,
    allocation_to_dict,
    load_allocation,
    save_allocation,
)


@pytest.fixture()
def allocation():
    stats = [
        LayerStats("a", num_inputs=10, num_macs=100, max_abs_input=50.0),
        LayerStats("b", num_inputs=20, num_macs=200, max_abs_input=400.0),
    ]
    return BitwidthAllocation.from_deltas(stats, {"a": 0.25, "b": 2.0})


class TestRoundtrip:
    def test_dict_roundtrip_preserves_formats(self, allocation):
        rebuilt = allocation_from_dict(allocation_to_dict(allocation))
        for layer in allocation:
            other = rebuilt[layer.name]
            assert other.integer_bits == layer.integer_bits
            assert other.fraction_bits == layer.fraction_bits
            assert other.total_bits == layer.total_bits

    def test_file_roundtrip(self, allocation, tmp_path):
        path = save_allocation(
            allocation, tmp_path / "alloc.json", provenance={"sigma": 0.3}
        )
        rebuilt = load_allocation(path)
        assert rebuilt.bitwidths() == allocation.bitwidths()

    def test_provenance_stored(self, allocation, tmp_path):
        import json

        path = save_allocation(
            allocation, tmp_path / "a.json", provenance={"objective": "mac"}
        )
        data = json.loads(path.read_text())
        assert data["provenance"]["objective"] == "mac"

    def test_negative_fraction_survives(self, allocation):
        """The word length alone can't encode F < 0; the schema must."""
        data = allocation_to_dict(allocation)
        entry = next(e for e in data["layers"] if e["name"] == "b")
        assert entry["fraction_bits"] < 0
        rebuilt = allocation_from_dict(data)
        assert rebuilt["b"].fraction_bits == entry["fraction_bits"]


class TestValidation:
    def test_rejects_wrong_schema(self, allocation):
        data = allocation_to_dict(allocation)
        data["schema_version"] = 99
        with pytest.raises(QuantizationError):
            allocation_from_dict(data)

    def test_rejects_missing_fields(self):
        data = {
            "schema_version": 1,
            "layers": [{"name": "a", "integer_bits": 4}],
        }
        with pytest.raises(QuantizationError):
            allocation_from_dict(data)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(QuantizationError):
            load_allocation(tmp_path / "nope.json")
