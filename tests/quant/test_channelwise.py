"""Tests for the per-channel integer-width refinement."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.models import top1_accuracy
from repro.nn import ordered_stats
from repro.quant import (
    BitwidthAllocation,
    ChannelwiseLayer,
    channelwise_effective_bits,
    channelwise_refinement,
    channelwise_taps,
    measure_channel_ranges,
)


@pytest.fixture(scope="module")
def refined_setup(lenet, lenet_stats, datasets):
    __, test = datasets
    stats = ordered_stats(lenet, lenet_stats)
    allocation = BitwidthAllocation.uniform(stats, 8)
    conv_layers = ["conv2", "conv3"]  # conv inputs with many channels
    ranges = measure_channel_ranges(
        lenet, test.images[:64], conv_layers
    )
    refined = channelwise_refinement(allocation, ranges)
    return lenet, test, stats, allocation, ranges, refined


class TestMeasureChannelRanges:
    def test_one_range_per_channel(self, refined_setup):
        lenet, __, __, __, ranges, __ = refined_setup
        assert ranges["conv2"].shape == (8,)   # conv1 has 8 output channels

    def test_ranges_positive(self, refined_setup):
        __, __, __, __, ranges, __ = refined_setup
        for values in ranges.values():
            assert np.all(values > 0)


class TestRefinement:
    def test_never_exceeds_layer_width(self, refined_setup):
        __, __, __, allocation, __, refined = refined_setup
        for name, layer in refined.items():
            assert np.all(
                layer.channel_integer_bits <= allocation[name].integer_bits
            )

    def test_mean_bits_not_above_layerwise(self, refined_setup):
        __, __, __, allocation, __, refined = refined_setup
        for name, layer in refined.items():
            assert layer.mean_total_bits <= allocation[name].total_bits

    def test_effective_bits_improve_or_match(self, refined_setup):
        __, __, stats, allocation, __, refined = refined_setup
        by_name = {s.name: s for s in stats}
        rho = {s.name: float(s.num_inputs) for s in stats}
        refined_eff = channelwise_effective_bits(allocation, refined, by_name)
        layerwise_eff = allocation.effective_bitwidth(rho)
        assert refined_eff <= layerwise_eff


class TestChannelwiseTaps:
    def test_error_bound_preserved(self, refined_setup):
        """Per-channel formats keep the same step, so the rounding error
        bound (Delta) is unchanged — the paper's model still applies."""
        __, __, __, allocation, __, refined = refined_setup
        layer = refined["conv2"]
        tap = layer.tap()
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, layer.num_channels, 6, 6)) * 10
        err = np.abs(tap(x) - x)
        delta = allocation["conv2"].fmt.delta
        # in-range values obey the bound; saturated channels may exceed
        in_range = np.abs(x) < 2.0 ** (layer.channel_integer_bits.min() - 1)
        assert np.all(err[in_range] <= delta + 1e-12)

    def test_accuracy_unharmed(self, refined_setup):
        """Channelwise refinement must not change accuracy materially
        (channels keep their own full range)."""
        lenet, test, __, allocation, __, refined = refined_setup
        layer_acc = top1_accuracy(lenet, test, taps=allocation.taps(lenet))
        chan_acc = top1_accuracy(
            lenet, test, taps=channelwise_taps(allocation, refined, lenet)
        )
        assert chan_acc >= layer_acc - 0.03

    def test_tap_rejects_wrong_channels(self, refined_setup):
        __, __, __, __, __, refined = refined_setup
        tap = refined["conv2"].tap()
        with pytest.raises(QuantizationError):
            tap(np.zeros((1, 3, 4, 4)))


class TestChannelwiseLayer:
    def test_mean_total_bits(self):
        layer = ChannelwiseLayer(
            name="x",
            fraction_bits=2,
            channel_integer_bits=np.array([4, 6]),
        )
        assert layer.mean_total_bits == pytest.approx(7.0)

    def test_floor_at_one_bit(self):
        layer = ChannelwiseLayer(
            name="x",
            fraction_bits=-10,
            channel_integer_bits=np.array([2, 3]),
        )
        assert layer.mean_total_bits == pytest.approx(1.0)
