"""Tests for percentile-clipped integer ranges."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.models import top1_accuracy
from repro.nn import ordered_stats
from repro.quant import (
    BitwidthAllocation,
    clip_allocation,
    clipping_saving_percent,
    measure_percentile_ranges,
)


@pytest.fixture(scope="module")
def setup(lenet, lenet_stats, datasets):
    __, test = datasets
    stats = ordered_stats(lenet, lenet_stats)
    allocation = BitwidthAllocation.uniform(stats, 8)
    names = [s.name for s in stats]
    ranges = measure_percentile_ranges(
        lenet, test.images[:64], names, percentile=99.0
    )
    return lenet, test, stats, allocation, names, ranges


class TestMeasurePercentileRanges:
    def test_below_absolute_max(self, setup, lenet_stats):
        __, __, stats, __, names, ranges = setup
        for stat in stats:
            assert ranges[stat.name] <= stat.max_abs_input + 1e-9

    def test_positive(self, setup):
        __, __, __, __, __, ranges = setup
        assert all(v > 0 for v in ranges.values())

    def test_lower_percentile_gives_smaller_range(self, setup):
        lenet, test, __, __, names, __ = setup
        p90 = measure_percentile_ranges(
            lenet, test.images[:32], names, percentile=90.0
        )
        p999 = measure_percentile_ranges(
            lenet, test.images[:32], names, percentile=99.9
        )
        for name in names:
            assert p90[name] <= p999[name] + 1e-9

    def test_rejects_bad_percentile(self, setup):
        lenet, test, __, __, names, __ = setup
        with pytest.raises(QuantizationError):
            measure_percentile_ranges(lenet, test.images[:8], names, 40.0)


class TestClipAllocation:
    def test_integer_bits_never_grow(self, setup):
        __, __, __, allocation, __, ranges = setup
        clipped = clip_allocation(allocation, ranges)
        for layer in allocation:
            assert (
                clipped.allocation[layer.name].integer_bits
                <= layer.integer_bits
            )

    def test_fraction_bits_preserved(self, setup):
        __, __, __, allocation, __, ranges = setup
        clipped = clip_allocation(allocation, ranges)
        for layer in allocation:
            assert (
                clipped.allocation[layer.name].fraction_bits
                == layer.fraction_bits
            )

    def test_saving_non_negative(self, setup):
        __, __, stats, allocation, __, ranges = setup
        clipped = clip_allocation(allocation, ranges)
        by_name = {s.name: s for s in stats}
        assert clipping_saving_percent(allocation, clipped, by_name) >= 0

    def test_unlisted_layers_untouched(self, setup):
        __, __, __, allocation, names, ranges = setup
        partial = {names[0]: ranges[names[0]]}
        clipped = clip_allocation(allocation, partial)
        for name in names[1:]:
            assert (
                clipped.allocation[name].integer_bits
                == allocation[name].integer_bits
            )


class TestClippedAccuracy:
    def test_mild_clipping_keeps_accuracy(self, setup):
        """Saturating 1% of activations must not change accuracy much."""
        lenet, test, __, allocation, __, ranges = setup
        base = top1_accuracy(lenet, test, taps=allocation.taps(lenet))
        clipped = clip_allocation(allocation, ranges, percentile=99.0)
        clipped_acc = top1_accuracy(lenet, test, taps=clipped.taps(lenet))
        assert clipped_acc >= base - 0.05

    def test_aggressive_clipping_hurts(self, setup):
        """Clipping at the median destroys information — the accuracy
        validation is what keeps this extension honest."""
        lenet, test, __, allocation, names, __ = setup
        tiny = measure_percentile_ranges(
            lenet, test.images[:32], names, percentile=51.0
        )
        clipped = clip_allocation(allocation, tiny)
        base = top1_accuracy(lenet, test, taps=allocation.taps(lenet))
        clipped_acc = top1_accuracy(lenet, test, taps=clipped.taps(lenet))
        assert clipped_acc < base
