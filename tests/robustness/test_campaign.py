"""Campaign engine end-to-end: cells, fault isolation, resume, strict.

The acceptance tests for ``repro ablate``: an injected chaos crash in
one matrix cell must become a structured ``failed`` row while every
other cell completes bit-identically to a clean run, and ``--resume``
must re-execute only the failed cell.
"""

from dataclasses import replace

import pytest

from repro.errors import DegradedResultWarning, ReproError
from repro.experiments import (
    AblationSpec,
    ExperimentConfig,
    build_campaign_cells,
    campaign_fingerprint,
    run_ablation_campaign,
)
from repro.resilience import SimulatedCrash

TINY = ExperimentConfig(
    model="lenet",
    num_classes=8,
    train_count=96,
    test_count=48,
    profile_images=8,
    profile_points=4,
    search_trials=1,
    seed=1234,
)

SPEC = AblationSpec(models=("lenet",), components=("xi",))

CHAOS_CELL = "component/xi:equal/lenet"


def _comparable(row):
    """Row payload minus fields that legitimately differ across runs."""
    payload = row.as_dict()
    payload.pop("elapsed_seconds")
    payload.pop("cache_counters")
    return payload


@pytest.fixture(scope="module")
def clean_report():
    return run_ablation_campaign(SPEC, config=TINY)


@pytest.fixture(scope="module")
def chaos_state(tmp_path_factory):
    return str(tmp_path_factory.mktemp("campaign-state"))


@pytest.fixture(scope="module")
def chaos_report(chaos_state):
    spec = replace(SPEC, chaos_cells=(CHAOS_CELL,))
    return run_ablation_campaign(spec, config=TINY, state_dir=chaos_state)


@pytest.fixture(scope="module")
def resumed_report(chaos_report, chaos_state):
    # Same campaign, chaos removed: only the crashed cell re-runs.
    return run_ablation_campaign(SPEC, config=TINY, state_dir=chaos_state)


class TestCellGrid:
    def test_cell_ids_are_stable_and_matrix_major(self):
        cells = build_campaign_cells(
            AblationSpec(
                models=("lenet",),
                components=("xi",),
                scenarios=("drop:loose",),
            ),
            TINY,
        )
        assert [c.cell_id for c in cells] == [
            "component/baseline/lenet",
            "component/xi:equal/lenet",
            "scenario/drop:loose/lenet",
        ]

    def test_drop_scenario_overrides_the_campaign_drop(self):
        cells = build_campaign_cells(
            AblationSpec(
                models=("lenet",), components=(), scenarios=("drop:loose",)
            ),
            TINY,
        )
        assert cells[-1].accuracy_drop == 0.5

    def test_unknown_chaos_cell_rejected(self):
        with pytest.raises(ReproError, match="chaos cells"):
            build_campaign_cells(
                replace(SPEC, chaos_cells=("component/nope/lenet",)), TINY
            )

    def test_fingerprint_ignores_chaos_and_state_dir(self):
        base = campaign_fingerprint(SPEC, TINY)
        with_chaos = campaign_fingerprint(
            replace(SPEC, chaos_cells=(CHAOS_CELL,)), TINY
        )
        other_state = campaign_fingerprint(
            SPEC, replace(TINY, state_dir="/elsewhere")
        )
        assert base == with_chaos == other_state

    def test_fingerprint_ignores_observability_knobs(self):
        # Monitoring toggles never change what is measured, so they
        # must not refuse a resume.
        base = campaign_fingerprint(SPEC, TINY)
        observed = campaign_fingerprint(
            SPEC,
            replace(
                TINY,
                telemetry=True,
                trace_out="/tmp/trace.jsonl",
                events_dir="/tmp/events",
            ),
        )
        assert base == observed

    def test_fingerprint_tracks_the_grid_and_config(self):
        base = campaign_fingerprint(SPEC, TINY)
        assert base != campaign_fingerprint(
            replace(SPEC, accuracy_drop=0.01), TINY
        )
        assert base != campaign_fingerprint(
            SPEC, replace(TINY, seed=TINY.seed + 1)
        )


class TestCleanCampaign:
    def test_every_cell_ok(self, clean_report):
        assert [r.status for r in clean_report.rows] == ["ok", "ok"]
        assert clean_report.num_failed == 0

    def test_importance_measured_for_the_toggled_component(
        self, clean_report
    ):
        assert [e.component for e in clean_report.importance] == ["xi"]
        entry = clean_report.importance[0]
        assert entry.cost_delta is not None
        assert entry.accuracy_delta is not None
        assert not entry.critical

    def test_manifest_attached(self, clean_report):
        assert clean_report.manifest.get("config_hash")
        assert clean_report.manifest["config"]["num_cells"] == 2

    def test_report_lines_render(self, clean_report):
        text = "\n".join(clean_report.lines())
        assert "component importance" in text
        assert "2 cells" in text


class TestChaosFaultIsolation:
    def test_chaos_cell_becomes_structured_failed_row(self, chaos_report):
        failed = {
            r.cell_id: r for r in chaos_report.rows if r.status == "failed"
        }
        assert set(failed) == {CHAOS_CELL}
        failure = failed[CHAOS_CELL].failure
        assert failure is not None
        assert failure.error_class == "SimulatedCrash"
        assert failure.stage != ""
        assert len(failure.traceback_digest) == 12

    def test_other_cells_bit_identical_to_clean_run(
        self, clean_report, chaos_report
    ):
        clean = {r.cell_id: r for r in clean_report.rows}
        for row in chaos_report.rows:
            if row.status == "failed":
                continue
            assert _comparable(row) == _comparable(clean[row.cell_id])

    def test_failed_variant_reported_critical(self, chaos_report):
        entry = chaos_report.importance[0]
        assert entry.critical
        assert entry.score == float("inf")


class TestResume:
    def test_only_the_failed_cell_reexecutes(
        self, chaos_report, resumed_report
    ):
        assert chaos_report.executed_cell_ids == [
            "component/baseline/lenet",
            CHAOS_CELL,
        ]
        assert resumed_report.executed_cell_ids == [CHAOS_CELL]

    def test_ok_rows_loaded_as_resumed(self, resumed_report):
        by_id = {r.cell_id: r for r in resumed_report.rows}
        assert by_id["component/baseline/lenet"].resumed
        assert not by_id[CHAOS_CELL].resumed

    def test_resumed_campaign_matches_the_clean_run(
        self, clean_report, resumed_report
    ):
        assert resumed_report.num_failed == 0
        clean = {r.cell_id: r for r in clean_report.rows}
        for row in resumed_report.rows:
            expected = dict(_comparable(clean[row.cell_id]))
            actual = dict(_comparable(row))
            # resume marks reused rows; the measurement must not move
            actual.pop("resumed", None)
            expected.pop("resumed", None)
            assert actual == expected


class TestStrictMode:
    def test_strict_restores_fail_fast(self):
        spec = replace(
            SPEC, chaos_cells=("component/baseline/lenet",)
        )
        with pytest.raises(SimulatedCrash):
            run_ablation_campaign(
                spec, config=replace(TINY, strict=True)
            )


class TestScenarioAndFallbackCells:
    def test_scenario_cells_execute_and_get_verdicts(self):
        report = run_ablation_campaign(
            AblationSpec(
                models=("lenet",),
                components=(),
                scenarios=("topology:tiny", "drop:loose"),
            ),
            config=TINY,
        )
        assert [r.status for r in report.rows] == ["ok", "ok", "ok"]
        verdicts = {e.scenario: e.verdict for e in report.scenarios}
        assert set(verdicts) == {"topology:tiny", "drop:loose"}
        assert verdicts["drop:loose"] in ("ok", "degraded")

    def test_forced_solver_failure_degrades_not_crashes(self):
        with pytest.warns(DegradedResultWarning):
            report = run_ablation_campaign(
                AblationSpec(models=("lenet",), components=("fallback",)),
                config=TINY,
            )
        by_variant = {r.variant: r for r in report.rows}
        forced = by_variant["fallback:forced"]
        assert forced.status == "ok"
        assert forced.degraded is True


class TestCampaignEvents:
    """Ablation lifecycle on the event bus: chaos, then resume."""

    def _events(self, run_dir):
        from repro.telemetry.events import read_bus_events, validate_bus_path

        path = run_dir / "events.jsonl"
        assert validate_bus_path(path) == []
        return read_bus_events(path)

    def test_chaos_then_resume_stream_lifecycle(self, tmp_path):
        state = str(tmp_path / "state")
        spec = replace(SPEC, chaos_cells=(CHAOS_CELL,))
        run_ablation_campaign(
            spec,
            config=replace(TINY, events_dir=str(tmp_path / "chaos")),
            state_dir=state,
        )
        events = self._events(tmp_path / "chaos")
        run_events = [e for e in events if e["type"] == "run"]
        assert [e["event"] for e in run_events] == ["started", "finished"]
        assert run_events[0]["attrs"]["kind"] == "ablate"
        assert run_events[0]["attrs"]["total_cells"] == 2
        assert run_events[-1]["attrs"] == {
            "cells_done": 1, "cells_failed": 1,
        }
        by_cell = {}
        for event in events:
            if event["type"] == "cell":
                by_cell.setdefault(event["name"], []).append(event)
        assert [e["event"] for e in by_cell[CHAOS_CELL]] == [
            "queued", "running", "failed",
        ]
        assert by_cell[CHAOS_CELL][-1]["attrs"]["error_class"] == (
            "SimulatedCrash"
        )
        baseline = by_cell["component/baseline/lenet"]
        assert [e["event"] for e in baseline] == [
            "queued", "running", "done",
        ]
        assert baseline[-1]["attrs"]["elapsed_seconds"] >= 0

        # Resume (chaos removed): the ok row restores as a cached hit,
        # only the crashed cell runs again.
        run_ablation_campaign(
            SPEC,
            config=replace(TINY, events_dir=str(tmp_path / "resume")),
            state_dir=state,
        )
        resumed = self._events(tmp_path / "resume")
        by_cell = {}
        for event in resumed:
            if event["type"] == "cell":
                by_cell.setdefault(event["name"], []).append(event)
        baseline = by_cell["component/baseline/lenet"]
        assert [e["event"] for e in baseline] == [
            "queued", "cached-hit", "done",
        ]
        assert baseline[1]["attrs"]["resumed"] is True
        assert [e["event"] for e in by_cell[CHAOS_CELL]] == [
            "queued", "running", "done",
        ]
