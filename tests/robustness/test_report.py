"""Importance ranking and scenario verdicts from synthetic rows."""

from repro.robustness import CampaignRow, FailureRecord, build_report


def _row(
    cell_id,
    kind="component",
    group="",
    variant="baseline",
    status="ok",
    objective="input",
    **overrides,
):
    defaults = dict(
        model="lenet",
        accuracy_drop=0.05,
        elapsed_seconds=1.0,
        sigma=0.4,
        effective_input_bits=5.0,
        effective_mac_bits=6.0,
        baseline_accuracy=0.9,
        validated_accuracy=0.88,
        target_accuracy=0.85,
        meets_constraint=True,
        degraded=False,
        bitwidths={"fc": 5},
    )
    defaults.update(overrides)
    return CampaignRow(
        cell_id=cell_id,
        kind=kind,
        group=group,
        variant=variant,
        status=status,
        objective=objective,
        **defaults,
    )


BASELINE = _row("component/baseline/lenet")


class TestImportance:
    def test_deltas_measured_against_the_model_baseline(self):
        variant = _row(
            "component/xi:equal/lenet",
            group="xi",
            variant="xi:equal",
            validated_accuracy=0.86,
            effective_input_bits=5.5,
            elapsed_seconds=0.8,
        )
        report = build_report([BASELINE, variant], elapsed_seconds=2.0)
        assert len(report.importance) == 1
        entry = report.importance[0]
        assert entry.component == "xi"
        assert abs(entry.accuracy_delta - (-0.02)) < 1e-12
        assert abs(entry.cost_delta - 0.5) < 1e-12
        assert abs(entry.wall_delta - (-0.2)) < 1e-12
        assert abs(entry.score - (0.5 + 100 * 0.02)) < 1e-9
        assert not entry.critical and not entry.harmful

    def test_mac_objective_uses_mac_bits(self):
        base = _row(
            "component/baseline/lenet", objective="mac"
        )
        variant = _row(
            "component/kernels:reference/lenet",
            group="kernels",
            variant="kernels:reference",
            objective="mac",
            effective_mac_bits=7.0,
        )
        report = build_report([base, variant], elapsed_seconds=1.0)
        assert abs(report.importance[0].cost_delta - 1.0) < 1e-12

    def test_failed_variant_is_critical_and_ranked_first(self):
        crashed = _row(
            "component/fallback:off/lenet",
            group="fallback",
            variant="fallback:off",
            status="failed",
            failure=FailureRecord("X", "m", "allocation", "d" * 12),
        )
        mild = _row(
            "component/cache:off/lenet",
            group="cache",
            variant="cache:off",
            effective_input_bits=5.01,
        )
        report = build_report([BASELINE, crashed, mild], elapsed_seconds=1.0)
        assert [e.component for e in report.importance] == [
            "fallback",
            "cache",
        ]
        first = report.importance[0]
        assert first.critical
        assert first.score == float("inf")
        assert first.cost_delta is None

    def test_harmful_component_flagged(self):
        # Toggling the component OFF saved bits and kept the
        # constraint: the baseline is better off without it.
        better_without = _row(
            "component/kernels:reference/lenet",
            group="kernels",
            variant="kernels:reference",
            effective_input_bits=4.5,
            meets_constraint=True,
        )
        report = build_report(
            [BASELINE, better_without], elapsed_seconds=1.0
        )
        assert report.importance[0].harmful

    def test_constraint_missing_variant_not_flagged_harmful(self):
        cheaper_but_broken = _row(
            "component/xi:equal/lenet",
            group="xi",
            variant="xi:equal",
            effective_input_bits=4.0,
            validated_accuracy=0.5,
            meets_constraint=False,
        )
        report = build_report(
            [BASELINE, cheaper_but_broken], elapsed_seconds=1.0
        )
        assert not report.importance[0].harmful


class TestScenarios:
    def test_verdicts(self):
        rows = [
            _row(
                "scenario/input:noise/lenet",
                kind="scenario",
                group="input:noise",
                variant="input:noise",
            ),
            _row(
                "scenario/drop:tight/lenet",
                kind="scenario",
                group="drop:tight",
                variant="drop:tight",
                degraded=True,
            ),
            _row(
                "scenario/input:scale/lenet",
                kind="scenario",
                group="input:scale",
                variant="input:scale",
                meets_constraint=False,
            ),
            _row(
                "scenario/topology:deep/lenet",
                kind="scenario",
                group="topology:deep",
                variant="topology:deep",
                status="failed",
                failure=FailureRecord("X", "m", "profiling", "e" * 12),
            ),
        ]
        report = build_report(rows, elapsed_seconds=1.0)
        verdicts = {e.scenario: e.verdict for e in report.scenarios}
        assert verdicts == {
            "input:noise": "ok",
            "drop:tight": "degraded",
            "input:scale": "miss",
            "topology:deep": "failed",
        }


class TestReportShape:
    def test_as_dict_schema(self):
        report = build_report([BASELINE], elapsed_seconds=1.0)
        payload = report.as_dict()
        assert payload["schema_version"] == 1
        assert len(payload["rows"]) == 1
        assert payload["rows"][0]["cell_id"] == BASELINE.cell_id

    def test_resumed_rows_excluded_from_cache_totals(self):
        executed = _row(
            "component/baseline/lenet", cache_counters={"hits": 3}
        )
        resumed = _row(
            "component/cache:off/lenet",
            group="cache",
            variant="cache:off",
            cache_counters={"hits": 7},
        )
        resumed.resumed = True
        report = build_report([executed, resumed], elapsed_seconds=1.0)
        assert report.cache_counters == {"hits": 3}

    def test_lines_mention_failures_and_counts(self):
        crashed = _row(
            "component/fallback:off/lenet",
            group="fallback",
            variant="fallback:off",
            status="failed",
            failure=FailureRecord("Boom", "m", "allocation", "f" * 12),
        )
        lines = build_report(
            [BASELINE, crashed], elapsed_seconds=1.0
        ).lines()
        text = "\n".join(lines)
        assert "1 failed" in text
        assert "FAILED component/fallback:off/lenet" in text
        assert "CRITICAL" in text
