"""Campaign state: atomic rows, fingerprint binding, corruption checks."""

import json

import pytest

from repro.errors import ResumeError
from repro.robustness import (
    CAMPAIGN_STATE_VERSION,
    CampaignRow,
    CampaignState,
    FailureRecord,
)


def _ok_row(cell_id="component/baseline/lenet"):
    return CampaignRow(
        cell_id=cell_id,
        kind="component",
        group="",
        variant="baseline",
        model="lenet",
        accuracy_drop=0.05,
        objective="input",
        status="ok",
        elapsed_seconds=1.25,
        sigma=0.4,
        effective_input_bits=5.5,
        effective_mac_bits=6.0,
        baseline_accuracy=0.9,
        validated_accuracy=0.88,
        target_accuracy=0.85,
        meets_constraint=True,
        degraded=False,
        bitwidths={"conv1": 6, "fc": 5},
        cache_counters={"hits": 2, "misses": 1},
    )


def _failed_row(cell_id="component/xi:equal/lenet"):
    return CampaignRow(
        cell_id=cell_id,
        kind="component",
        group="xi",
        variant="xi:equal",
        model="lenet",
        accuracy_drop=0.05,
        objective="input",
        status="failed",
        elapsed_seconds=0.3,
        failure=FailureRecord(
            error_class="SimulatedCrash",
            message="chaos",
            stage="profiling",
            traceback_digest="abc123def456",
        ),
    )


class TestCampaignState:
    def test_bind_creates_versioned_manifest(self, tmp_path):
        state = CampaignState(tmp_path / "campaign")
        manifest = state.bind("fp-1")
        assert manifest["version"] == CAMPAIGN_STATE_VERSION
        assert manifest["fingerprint"] == "fp-1"
        assert state.manifest_path.exists()

    def test_rebind_same_fingerprint_ok(self, tmp_path):
        state = CampaignState(tmp_path)
        state.bind("fp-1")
        assert CampaignState(tmp_path).bind("fp-1")["fingerprint"] == "fp-1"

    def test_rebind_other_fingerprint_rejected(self, tmp_path):
        CampaignState(tmp_path).bind("fp-1")
        with pytest.raises(ResumeError, match="belongs to campaign"):
            CampaignState(tmp_path).bind("fp-2")

    def test_version_mismatch_rejected(self, tmp_path):
        state = CampaignState(tmp_path)
        state.bind("fp-1")
        payload = json.loads(state.manifest_path.read_text())
        payload["version"] = 999
        state.manifest_path.write_text(json.dumps(payload))
        with pytest.raises(ResumeError, match="version"):
            CampaignState(tmp_path).bind("fp-1")

    def test_unreadable_manifest_rejected(self, tmp_path):
        state = CampaignState(tmp_path)
        state.bind("fp-1")
        state.manifest_path.write_text("{not json")
        with pytest.raises(ResumeError, match="unreadable"):
            CampaignState(tmp_path).bind("fp-1")


class TestRows:
    def test_ok_row_round_trips(self, tmp_path):
        state = CampaignState(tmp_path)
        state.bind("fp")
        row = _ok_row()
        state.save_row(row)
        loaded = state.load_rows()
        assert set(loaded) == {row.cell_id}
        assert loaded[row.cell_id] == row

    def test_failed_row_round_trips_with_failure_record(self, tmp_path):
        state = CampaignState(tmp_path)
        state.bind("fp")
        row = _failed_row()
        state.save_row(row)
        loaded = state.load_rows()[row.cell_id]
        assert loaded.status == "failed"
        assert loaded.failure == row.failure

    def test_saving_again_overwrites_the_row(self, tmp_path):
        state = CampaignState(tmp_path)
        state.bind("fp")
        state.save_row(_failed_row("component/baseline/lenet"))
        state.save_row(_ok_row("component/baseline/lenet"))
        loaded = state.load_rows()
        assert len(loaded) == 1
        assert loaded["component/baseline/lenet"].status == "ok"

    def test_corrupt_row_rejected(self, tmp_path):
        state = CampaignState(tmp_path)
        state.bind("fp")
        state.save_row(_ok_row())
        path = next(state.cells_dir.glob("*.json"))
        path.write_text("{broken")
        with pytest.raises(ResumeError, match="corrupt"):
            state.load_rows()

    def test_row_version_mismatch_rejected(self, tmp_path):
        state = CampaignState(tmp_path)
        state.bind("fp")
        state.save_row(_ok_row())
        path = next(state.cells_dir.glob("*.json"))
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ResumeError, match="version"):
            state.load_rows()

    def test_no_cells_dir_means_no_rows(self, tmp_path):
        assert CampaignState(tmp_path / "fresh").load_rows() == {}

    def test_slugged_filenames_are_safe(self, tmp_path):
        state = CampaignState(tmp_path)
        state.bind("fp")
        state.save_row(_ok_row("component/scheme:scheme2/lenet"))
        files = list(state.cells_dir.glob("*.json"))
        assert len(files) == 1
        assert "/" not in files[0].name
        assert ":" not in files[0].name
