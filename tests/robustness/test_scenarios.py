"""Scenario generators: deterministic perturbations, odd topologies."""

import numpy as np
import pytest

from repro.data import SyntheticImageNet
from repro.errors import ReproError
from repro.models import build_model
from repro.robustness import (
    DEFAULT_SCENARIOS,
    SCENARIOS,
    build_scenario_network,
    perturb_dataset,
    perturb_network_weights,
    resolve_scenario,
)

SEED = 1234


@pytest.fixture(scope="module")
def test_set():
    source = SyntheticImageNet(num_classes=8, seed=SEED)
    __, test = source.train_test(32, 32)
    return test


class TestRegistry:
    def test_every_default_scenario_resolves(self):
        for name in DEFAULT_SCENARIOS:
            assert resolve_scenario(name).name == name

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ReproError, match="unknown scenario"):
            resolve_scenario("input:frogs")

    def test_all_four_kinds_covered(self):
        kinds = {s.kind for s in SCENARIOS.values()}
        assert kinds == {"input", "weights", "topology", "drop"}


class TestPerturbDataset:
    def test_scale_and_shift_are_affine(self, test_set):
        scaled = perturb_dataset(
            test_set, resolve_scenario("input:scale"), seed=SEED
        )
        np.testing.assert_allclose(scaled.images, test_set.images * 1.5)
        shifted = perturb_dataset(
            test_set, resolve_scenario("input:shift"), seed=SEED
        )
        offset = 0.25 * float(np.asarray(test_set.images).std())
        np.testing.assert_allclose(
            shifted.images, np.asarray(test_set.images) + offset
        )

    def test_noise_is_deterministic_per_seed(self, test_set):
        scenario = resolve_scenario("input:noise")
        a = perturb_dataset(test_set, scenario, seed=SEED)
        b = perturb_dataset(test_set, scenario, seed=SEED)
        np.testing.assert_array_equal(a.images, b.images)
        c = perturb_dataset(test_set, scenario, seed=SEED + 1)
        assert not np.array_equal(a.images, c.images)

    def test_labels_untouched(self, test_set):
        noisy = perturb_dataset(
            test_set, resolve_scenario("input:noise"), seed=SEED
        )
        np.testing.assert_array_equal(noisy.labels, test_set.labels)

    def test_non_input_scenario_rejected(self, test_set):
        with pytest.raises(ReproError, match="not an input scenario"):
            perturb_dataset(
                test_set, resolve_scenario("weights:noise"), seed=SEED
            )


class TestPerturbWeights:
    def test_perturbation_is_small_deterministic_and_counted(self):
        a = build_model("lenet", num_classes=8, seed=SEED)
        b = build_model("lenet", num_classes=8, seed=SEED)
        count_a = perturb_network_weights(a, rel_std=1e-3, seed=SEED)
        count_b = perturb_network_weights(b, rel_std=1e-3, seed=SEED)
        assert count_a == count_b > 0
        moved = 0
        for la, lb in zip(a.layers, b.layers):
            for attr in ("weight", "bias"):
                ta = getattr(la, attr, None)
                tb = getattr(lb, attr, None)
                if isinstance(ta, np.ndarray) and ta.size:
                    np.testing.assert_array_equal(ta, tb)
                    moved += 1
        assert moved == count_a

    def test_perturbation_actually_changes_weights(self):
        clean = build_model("lenet", num_classes=8, seed=SEED)
        noisy = build_model("lenet", num_classes=8, seed=SEED)
        perturb_network_weights(noisy, rel_std=1e-3, seed=SEED)
        diffs = [
            float(np.abs(lc.weight - ln.weight).max())
            for lc, ln in zip(clean.layers, noisy.layers)
            if isinstance(getattr(lc, "weight", None), np.ndarray)
            and lc.weight.size
        ]
        assert diffs and max(diffs) > 0

    def test_nonpositive_rel_std_rejected(self):
        network = build_model("lenet", num_classes=8, seed=SEED)
        with pytest.raises(ReproError, match="rel_std"):
            perturb_network_weights(network, rel_std=0.0, seed=SEED)


class TestTopologyBuilders:
    def test_tiny_has_single_analyzed_layer(self):
        network = build_scenario_network(
            resolve_scenario("topology:tiny"), num_classes=8, seed=SEED
        )
        assert network.analyzed_layer_names == ["fc"]

    def test_deep_has_requested_depth_plus_head(self):
        network = build_scenario_network(
            resolve_scenario("topology:deep"), num_classes=8, seed=SEED
        )
        assert len(network.analyzed_layer_names) == 13  # 12 convs + fc

    def test_narrow_contains_one_channel_bottleneck(self):
        network = build_scenario_network(
            resolve_scenario("topology:narrow"), num_classes=8, seed=SEED
        )
        assert "bottleneck" in network.analyzed_layer_names

    def test_non_topology_scenario_rejected(self):
        with pytest.raises(ReproError, match="not a topology scenario"):
            build_scenario_network(
                resolve_scenario("drop:tight"), num_classes=8, seed=SEED
            )

    def test_topology_networks_forward(self, test_set):
        for name in ("topology:tiny", "topology:deep", "topology:narrow"):
            network = build_scenario_network(
                resolve_scenario(name), num_classes=8, seed=SEED
            )
            out = network.forward(np.asarray(test_set.images)[:2])
            assert out.shape == (2, 8)
            assert np.isfinite(out).all()
