"""Failure classification: stage attribution, digests, round-trips."""

from repro.robustness import FailureRecord, classify_failure


def _raise_and_classify(exc_type, message, stage_hint=""):
    try:
        raise exc_type(message)
    except exc_type as exc:
        return classify_failure(exc, stage_hint=stage_hint)


class TestClassifyFailure:
    def test_records_class_and_message(self):
        record = _raise_and_classify(ValueError, "boom")
        assert record.error_class == "ValueError"
        assert record.message == "boom"

    def test_stage_hint_used_without_repro_frames(self):
        record = _raise_and_classify(RuntimeError, "x", stage_hint="context")
        assert record.stage == "context"

    def test_unknown_stage_without_hint_or_repro_frames(self):
        record = _raise_and_classify(RuntimeError, "x")
        assert record.stage == "unknown"

    def test_deepest_repro_frame_decides_the_stage(self):
        # resolve_scenario raises from repro/robustness/scenarios.py —
        # not a marked stage — but the traceback digest still exists
        # and the hint fills the stage.
        from repro.errors import ReproError
        from repro.robustness import resolve_scenario

        try:
            resolve_scenario("nope")
        except ReproError as exc:
            record = classify_failure(exc, stage_hint="campaign")
        assert record.stage == "campaign"
        assert len(record.traceback_digest) == 12

    def test_allocation_stage_inferred_from_optimize_frames(self):
        from repro.errors import OptimizationError
        from repro.optimize import input_bandwidth_objective

        try:
            input_bandwidth_objective({})
        except OptimizationError as exc:
            record = classify_failure(exc)
        assert record.stage == "allocation"

    def test_digest_is_stable_across_identical_raises(self):
        def trip():
            raise ValueError("same path")

        records = []
        for __ in range(2):
            try:
                trip()
            except ValueError as exc:
                records.append(classify_failure(exc))
        assert records[0].traceback_digest == records[1].traceback_digest

    def test_digest_differs_for_different_raise_sites(self):
        a = _raise_and_classify(ValueError, "x")

        def other_site():
            raise ValueError("x")

        try:
            other_site()
        except ValueError as exc:
            b = classify_failure(exc)
        assert a.traceback_digest != b.traceback_digest

    def test_long_messages_truncated(self):
        record = _raise_and_classify(ValueError, "y" * 2000)
        assert len(record.message) == 500
        assert record.message.endswith("...")

    def test_no_traceback_digest_placeholder(self):
        record = classify_failure(ValueError("never raised"))
        assert record.traceback_digest  # digest of "<no-traceback>"
        assert record.stage == "unknown"


class TestFailureRecordRoundTrip:
    def test_as_dict_from_dict(self):
        record = _raise_and_classify(KeyError, "'k'", stage_hint="cache")
        clone = FailureRecord.from_dict(record.as_dict())
        assert clone == record
