"""Ablation matrix generation: one toggle per variant, baseline first."""

import pytest

from repro.errors import ReproError
from repro.experiments import ExperimentConfig
from repro.robustness import (
    DEFAULT_COMPONENTS,
    MatrixVariant,
    build_matrix,
)

CONFIG = ExperimentConfig(model="lenet")


class TestBuildMatrix:
    def test_baseline_first_and_names_unique(self):
        variants = build_matrix(CONFIG)
        assert variants[0].is_baseline
        assert variants[0].name == "baseline"
        names = [v.name for v in variants]
        assert len(set(names)) == len(names)

    def test_every_default_component_represented(self):
        variants = build_matrix(CONFIG)
        components = {v.component for v in variants if not v.is_baseline}
        assert components == set(DEFAULT_COMPONENTS)

    def test_component_subset_preserves_order(self):
        variants = build_matrix(CONFIG, components=("cache", "xi"))
        assert [v.component for v in variants] == ["", "cache", "xi"]

    def test_unknown_component_rejected(self):
        with pytest.raises(ReproError, match="unknown ablation components"):
            build_matrix(CONFIG, components=("warp-drive",))

    def test_scheme_variant_toggles_to_the_other_scheme(self):
        from dataclasses import replace

        s1 = build_matrix(CONFIG, components=("scheme",))[1]
        assert s1.config_overrides == {"scheme": "scheme2"}
        s2 = build_matrix(
            replace(CONFIG, scheme="scheme2"), components=("scheme",)
        )[1]
        assert s2.config_overrides == {"scheme": "scheme1"}

    def test_backend_variants_cover_the_other_backends(self):
        from dataclasses import replace

        serial_config = CONFIG  # jobs=1
        names = {
            v.name
            for v in build_matrix(serial_config, components=("backend",))
            if not v.is_baseline
        }
        assert names == {"backend:thread", "backend:process"}

        pooled = replace(CONFIG, jobs=4, parallel_backend="thread")
        names = {
            v.name
            for v in build_matrix(pooled, components=("backend",))
            if not v.is_baseline
        }
        assert names == {"backend:serial", "backend:process"}

    def test_fallback_component_has_off_and_forced_variants(self):
        variants = build_matrix(CONFIG, components=("fallback",))
        by_name = {v.name: v for v in variants}
        assert by_name["fallback:off"].optimizer_overrides == {
            "fallback": False
        }
        assert by_name["fallback:forced"].force_solver_failure


class TestMatrixVariant:
    def test_apply_replaces_config_fields(self):
        variant = MatrixVariant(
            name="x",
            component="cache",
            description="",
            config_overrides={"no_cache": True},
        )
        applied = variant.apply(CONFIG)
        assert applied.no_cache is True
        assert applied.model == CONFIG.model

    def test_apply_without_overrides_returns_config_unchanged(self):
        variant = MatrixVariant(name="x", component="", description="")
        assert variant.apply(CONFIG) is CONFIG

    def test_invalid_allocator_rejected(self):
        with pytest.raises(ReproError, match="allocator"):
            MatrixVariant(
                name="x", component="xi", description="", allocator="magic"
            )

    def test_as_dict_round_trips_the_knobs(self):
        variant = MatrixVariant(
            name="x",
            component="backend",
            description="d",
            config_overrides={"jobs": 2},
            parallel_overrides={"fast_kernels": False},
            allocator="equal",
        )
        payload = variant.as_dict()
        assert payload["config_overrides"] == {"jobs": 2}
        assert payload["parallel_overrides"] == {"fast_kernels": False}
        assert payload["allocator"] == "equal"
