"""Tests for configuration dataclasses and the error hierarchy."""

import pytest

from repro import (
    GraphError,
    ModelError,
    OptimizationError,
    ProfilingError,
    QuantizationError,
    ReproError,
    SearchError,
    ShapeError,
)
from repro.config import FAST_PROFILE, FAST_SEARCH, ProfileSettings, SearchSettings


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            ModelError,
            OptimizationError,
            ProfilingError,
            QuantizationError,
            SearchError,
            ShapeError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestProfileSettings:
    def test_defaults_match_paper(self):
        s = ProfileSettings()
        assert s.num_delta_points == 20  # paper Sec. V-A
        assert s.num_images == 50       # paper: 50-200 images

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ProfileSettings(num_images=0)
        with pytest.raises(ValueError):
            ProfileSettings(num_delta_points=1)
        with pytest.raises(ValueError):
            ProfileSettings(delta_min=1.0, delta_max=0.5)
        with pytest.raises(ValueError):
            ProfileSettings(num_repeats=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            ProfileSettings().num_images = 5


class TestSearchSettings:
    def test_defaults_match_paper(self):
        s = SearchSettings()
        assert s.tolerance == 0.01        # paper Sec. V-C
        assert s.initial_upper == 1.0     # paper's initial guess

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SearchSettings(tolerance=0.0)
        with pytest.raises(ValueError):
            SearchSettings(initial_upper=-1.0)
        with pytest.raises(ValueError):
            SearchSettings(num_trials=0)

    def test_fast_presets_valid(self):
        assert FAST_PROFILE.num_images < ProfileSettings().num_images
        assert FAST_SEARCH.tolerance >= SearchSettings().tolerance
