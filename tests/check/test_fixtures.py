"""Fixture harness: every seeded violation is found, nothing else is.

Each fixture file under ``tests/check/fixtures/`` marks its expected
findings with trailing ``# expect[rule-id]`` comments.  The harness
runs the pass(es) for the fixture's class over the file and asserts the
*exact* set of ``(line, rule)`` pairs — a missed marker is a false
negative, an unmarked finding is a false positive; both fail.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.check.concurrency import analyze_concurrency
from repro.check.determinism import analyze_determinism
from repro.check.registry import run_analyzers

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture subdirectory -> analyzer passes exercised against it
PASSES = {
    "races": ("concurrency",),
    "pickle": ("concurrency",),
    "rng": ("determinism",),
    "keyfield": ("determinism",),
    "clean": ("lint", "concurrency", "determinism"),
}

_EXPECT_RE = re.compile(r"expect\[([a-z0-9-]+)\]")


def expected_markers(path: Path) -> set:
    pairs = set()
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in _EXPECT_RE.finditer(line):
            pairs.add((lineno, match.group(1)))
    return pairs


def all_fixtures():
    for subdir, passes in sorted(PASSES.items()):
        for path in sorted((FIXTURES / subdir).glob("*.py")):
            yield pytest.param(path, passes, id=f"{subdir}/{path.name}")


@pytest.mark.parametrize("path,passes", list(all_fixtures()))
def test_fixture_findings_exact(path, passes):
    report, num_files = run_analyzers([path], passes)
    assert num_files == 1
    found = {(f.line, f.rule) for f in report}
    expected = expected_markers(path)
    missing = expected - found
    unexpected = found - expected
    assert not missing, f"false negatives (not detected): {sorted(missing)}"
    assert not unexpected, (
        f"false positives (unmarked findings): {sorted(unexpected)}"
    )


def test_fixture_inventory():
    """≥12 violation fixtures spanning all four contract classes."""
    marked = [
        path
        for subdir in PASSES
        for path in (FIXTURES / subdir).glob("*.py")
        if expected_markers(path)
    ]
    assert len(marked) >= 10
    total_markers = sum(len(expected_markers(p)) for p in marked)
    assert total_markers >= 12
    for subdir in ("races", "pickle", "rng", "keyfield"):
        assert any(
            expected_markers(p) for p in (FIXTURES / subdir).glob("*.py")
        ), f"no violation fixture in {subdir}/"


def test_clean_fixture_exists():
    clean = list((FIXTURES / "clean").glob("*.py"))
    assert clean, "need at least one all-exemptions clean fixture"
    for path in clean:
        assert not expected_markers(path)


def test_suppression_comment_silences_finding(tmp_path):
    src = (
        "import numpy as np\n"
        "\n"
        "\n"
        "def engine_draw(seed):\n"
        "    rng = np.random.default_rng(seed)"
        "  # repro-check: ignore[rng-outside-helper]\n"
        "    return rng\n"
    )
    path = tmp_path / "engine_suppressed.py"
    path.write_text(src, encoding="utf-8")
    report, _ = run_analyzers([path], ("determinism",))
    assert not report.findings
    # Without the suppression the same source is flagged.
    bare = src.replace("  # repro-check: ignore[rng-outside-helper]", "")
    path.write_text(bare, encoding="utf-8")
    report, _ = run_analyzers([path], ("determinism",))
    assert [f.rule for f in report] == ["rng-outside-helper"]


def test_registry_deletion_is_detected():
    """Deleting a KEY_FIELD_REGISTRY entry makes the analyzer fail."""
    config = Path("src/repro/config.py")
    source = config.read_text(encoding="utf-8")
    from repro.cache.keys import KEY_FIELD_DISPOSITIONS, KEY_FIELD_REGISTRY

    # Intact registry: clean.
    clean = analyze_determinism(
        [(str(config), source)],
        registry=KEY_FIELD_REGISTRY,
        dispositions=set(KEY_FIELD_DISPOSITIONS),
    )
    assert [f for f in clean if f.rule == "unkeyed-field"] == []

    # Drop ProfileSettings.seed from a copy: the field is now
    # unclassified, which must be reported.
    pruned = {
        cls: dict(fields) for cls, fields in KEY_FIELD_REGISTRY.items()
    }
    del pruned["ProfileSettings"]["seed"]
    findings = analyze_determinism(
        [(str(config), source)],
        registry=pruned,
        dispositions=set(KEY_FIELD_DISPOSITIONS),
    )
    assert any(
        f.rule == "unkeyed-field" and "ProfileSettings.seed" in f.message
        for f in findings
    )


def test_registry_covers_every_settings_field():
    """The live registry classifies every field of every registered
    dataclass, with only legal dispositions (acceptance criterion)."""
    import dataclasses

    from repro.cache.keys import KEY_FIELD_DISPOSITIONS, KEY_FIELD_REGISTRY
    from repro.cache.leases import LeaseSettings
    from repro.config import (
        ParallelSettings,
        ProfileSettings,
        SearchSettings,
        TelemetrySettings,
    )
    from repro.experiments.ablate import AblationSpec
    from repro.experiments.common import ExperimentConfig
    from repro.experiments.distributed import DistributedSettings
    from repro.experiments.scheduler import SweepSpec

    classes = {
        "ProfileSettings": ProfileSettings,
        "SearchSettings": SearchSettings,
        "ParallelSettings": ParallelSettings,
        "TelemetrySettings": TelemetrySettings,
        "ExperimentConfig": ExperimentConfig,
        "SweepSpec": SweepSpec,
        "AblationSpec": AblationSpec,
        "LeaseSettings": LeaseSettings,
        "DistributedSettings": DistributedSettings,
    }
    for name, cls in classes.items():
        declared = KEY_FIELD_REGISTRY[name]
        actual = {f.name for f in dataclasses.fields(cls)}
        assert set(declared) == actual, name
        assert set(declared.values()) <= set(KEY_FIELD_DISPOSITIONS), name


def test_concurrency_direct_api():
    """analyze_concurrency is callable on raw (path, source) pairs."""
    src = (
        "from concurrent.futures import ThreadPoolExecutor\n"
        "STATE = {}\n"
        "def task(k):\n"
        "    STATE[k] = 1\n"
        "def run(keys):\n"
        "    with ThreadPoolExecutor() as pool:\n"
        "        return [pool.submit(task, k) for k in keys]\n"
    )
    findings = analyze_concurrency([("mod.py", src)])
    assert [f.rule for f in findings] == ["global-write-in-worker"]
    assert findings[0].line == 4
