"""Runtime sanitizer (``REPRO_SANITIZE=1``): tripwires, not behavior.

The sanitizer's contract is asymmetric: on clean runs it must change
*nothing* (bit-identical results, identical keys, identical stores),
and on contract violations it must fail *immediately* instead of
letting the corruption surface later as a miss or a skewed fit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import ResultCache, make_key
from repro.sanitize import SANITIZE_ENV, fp_guard, sanitize_enabled


@pytest.fixture
def sanitized(monkeypatch):
    monkeypatch.setenv(SANITIZE_ENV, "1")


class TestToggle:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        assert not sanitize_enabled()

    def test_zero_and_empty_are_off(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "0")
        assert not sanitize_enabled()
        monkeypatch.setenv(SANITIZE_ENV, "")
        assert not sanitize_enabled()

    def test_one_is_on(self, sanitized):
        assert sanitize_enabled()


class TestFpGuard:
    def test_traps_overflow_when_enabled(self, sanitized):
        with pytest.raises(FloatingPointError):
            with fp_guard():
                np.float64(1e308) * np.float64(10.0)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_no_trap_when_disabled(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        with fp_guard():
            assert np.isinf(np.float64(1e308) * np.float64(10.0))

    def test_underflow_stays_untrapped(self, sanitized):
        # Denormal activations are routine; trapping underflow would
        # make every deep network fail.
        with fp_guard():
            tiny = np.float64(1e-308) * np.float64(1e-10)
        assert tiny == pytest.approx(0.0, abs=1e-300)


class TestKeyRecomputation:
    PARTS = {
        "kind": "fit",
        "layer": "conv1",
        "digest": "abc123",
        "delta": 0.125,
        "coords": [1, 2, 3],
        "nested": {"b": 2.5, "a": 1.0},
    }

    def test_sanitized_key_equals_unsanitized(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        plain = make_key(self.PARTS)
        monkeypatch.setenv(SANITIZE_ENV, "1")
        assert make_key(self.PARTS) == plain

    def test_unstable_payload_is_caught(self, sanitized, monkeypatch):
        # Force the second canonicalization pass to disagree, as an
        # order-dependent encoding would: the tripwire must raise
        # rather than emit a drifting key.
        from repro.cache import keys

        real = keys._canonical
        calls = {"n": 0}

        def flaky(value):
            # Capture the call index on entry: _canonical recurses, so
            # only the very first top-level pass (index 0) stays clean;
            # the tripwire's second pass then sees drifted output.
            index = calls["n"]
            calls["n"] += 1
            out = real(value)
            if index > 0 and isinstance(out, dict):
                out = dict(out)
                out["__drift__"] = "x"
            return out

        monkeypatch.setattr(keys, "_canonical", flaky)
        with pytest.raises(RuntimeError, match="REPRO_SANITIZE"):
            make_key(self.PARTS)


class TestStoreWriteVerification:
    def test_clean_writes_pass(self, sanitized, tmp_path):
        cache = ResultCache(tmp_path / "store")
        cache.put_json("ns", "k" * 64, {"a": 1})
        cache.put_arrays("ns", "a" * 64, {"x": np.arange(12.0)})
        assert cache.get_json("ns", "k" * 64) == {"a": 1}
        arrays = cache.get_arrays("ns", "a" * 64)
        assert arrays is not None
        np.testing.assert_array_equal(arrays["x"], np.arange(12.0))

    def test_torn_json_write_raises_immediately(
        self, sanitized, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path / "store")
        real = ResultCache._write_atomic

        def torn(self, path, data):
            real(self, path, data[: len(data) // 2])

        monkeypatch.setattr(ResultCache, "_write_atomic", torn)
        with pytest.raises((RuntimeError, ValueError, KeyError)):
            cache.put_json("ns", "k" * 64, {"a": 1})

    def test_torn_array_write_raises_immediately(
        self, sanitized, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path / "store")
        real = ResultCache._write_atomic

        def torn(self, path, data):
            real(self, path, data[:-8])

        monkeypatch.setattr(ResultCache, "_write_atomic", torn)
        with pytest.raises(RuntimeError, match="REPRO_SANITIZE"):
            cache.put_arrays("ns", "a" * 64, {"x": np.arange(12.0)})

    def test_torn_write_ignored_without_sanitizer(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        cache = ResultCache(tmp_path / "store")
        real = ResultCache._write_atomic

        def torn(self, path, data):
            real(self, path, data[:-8])

        monkeypatch.setattr(ResultCache, "_write_atomic", torn)
        cache.put_arrays("ns", "a" * 64, {"x": np.arange(12.0)})
        # Discovered later, as the usual corruption-as-miss policy.
        assert cache.get_arrays("ns", "a" * 64) is None


class TestBitIdentity:
    def test_profiler_smoke_bit_identical(
        self, lenet, datasets, monkeypatch
    ):
        """A sanitized profile is bit-for-bit the unsanitized profile
        (acceptance criterion): the sanitizer observes, never perturbs.
        """
        from repro.analysis import ErrorProfiler
        from repro.config import ProfileSettings

        __, test = datasets
        settings = ProfileSettings(
            num_images=8, num_delta_points=4, seed=20190325
        )

        def run():
            return ErrorProfiler(lenet, test.images, settings).profile()

        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        plain = run()
        monkeypatch.setenv(SANITIZE_ENV, "1")
        guarded = run()

        assert sorted(plain.profiles) == sorted(guarded.profiles)
        for name in plain.profiles:
            p, g = plain.profiles[name], guarded.profiles[name]
            assert float(p.lam).hex() == float(g.lam).hex(), name
            assert float(p.theta).hex() == float(g.theta).hex(), name
