"""Pass 1a: structural, shape, and dtype verification."""

from __future__ import annotations

import numpy as np

from repro.check import (
    LayerDecl,
    Severity,
    decls_of,
    verify_dtypes,
    verify_graph_decls,
    verify_network,
    verify_shapes,
)
from repro.models import build_model
from repro.nn.layers import Dense

TEST_SEED = 1234


def rules(report):
    return {f.rule for f in report}


# ----------------------------------------------------------------------
# Declaration-level structural pass
# ----------------------------------------------------------------------
class TestGraphDecls:
    def test_clean_chain(self):
        decls = [
            LayerDecl("a", ("input",)),
            LayerDecl("b", ("a",)),
            LayerDecl("c", ("b", "a")),
        ]
        report = verify_graph_decls(decls)
        assert report.ok()
        assert not report.errors

    def test_cycle_rejected(self):
        decls = [
            LayerDecl("a", ("input",)),
            LayerDecl("b", ("c",)),
            LayerDecl("c", ("b",)),
        ]
        report = verify_graph_decls(decls, output="a")
        assert "cycle" in rules(report)
        assert not report.ok()
        assert report.exit_code() == 1

    def test_dangling_producer_rejected(self):
        decls = [LayerDecl("a", ("input",)), LayerDecl("b", ("ghost",))]
        report = verify_graph_decls(decls, output="a")
        assert "dangling-producer" in rules(report)
        assert not report.ok()

    def test_self_loop_rejected(self):
        decls = [LayerDecl("a", ("input", "a"))]
        report = verify_graph_decls(decls)
        assert "self-loop" in rules(report)

    def test_duplicate_and_reserved_names(self):
        decls = [
            LayerDecl("a", ("input",)),
            LayerDecl("a", ("input",)),
            LayerDecl("input", ("a",)),
        ]
        found = rules(verify_graph_decls(decls, output="a"))
        assert "duplicate-layer" in found
        assert "reserved-name" in found

    def test_unreachable_output(self):
        # b only consumes a constant-less orphan chain: output cannot
        # be traced back to the network input.
        decls = [
            LayerDecl("a", ("input",)),
            LayerDecl("b", ("b2",)),
            LayerDecl("b2", ("b",)),
        ]
        report = verify_graph_decls(decls, output="b")
        assert not report.ok()

    def test_dead_layers_reported_as_info(self):
        decls = [
            LayerDecl("a", ("input",)),
            LayerDecl("dead", ("input",)),
        ]
        report = verify_graph_decls(decls, output="a")
        dead = report.by_rule("dead-layers")
        assert dead and dead[0].severity == Severity.INFO
        assert report.ok()  # info findings never fail the check

    def test_empty_graph(self):
        assert not verify_graph_decls([]).ok()


# ----------------------------------------------------------------------
# Built-network passes
# ----------------------------------------------------------------------
class TestVerifyNetwork:
    def test_zoo_model_is_clean(self):
        network = build_model("lenet", num_classes=8, seed=TEST_SEED)
        report = verify_network(network)
        assert report.ok(strict=True), report.render(verbose=True)

    def test_decls_projection(self):
        network = build_model("lenet", num_classes=8, seed=TEST_SEED)
        decls = decls_of(network)
        assert len(decls) == len(network)
        assert decls[0].inputs == ("input",)

    def test_stale_shape_after_weight_surgery(self):
        network = build_model("lenet", num_classes=8, seed=TEST_SEED)
        dense = next(
            layer for layer in network.layers if isinstance(layer, Dense)
        )
        # Replace the weight with one producing a different output
        # width; the bound shape is now stale.
        dense.weight = np.zeros((dense.out_features + 3, dense.in_features))
        report = verify_shapes(network)
        assert "stale-shape" in rules(report)
        assert not report.ok()

    def test_incompatible_weight_shape(self):
        network = build_model("lenet", num_classes=8, seed=TEST_SEED)
        dense = next(
            layer for layer in network.layers if isinstance(layer, Dense)
        )
        dense.weight = np.zeros((dense.out_features, dense.in_features + 1))
        report = verify_shapes(network)
        assert "shape-mismatch" in rules(report)

    def test_dtype_promotion_flagged(self):
        network = build_model("lenet", num_classes=8, seed=TEST_SEED)
        conv = network.layers[0]
        conv.weight = conv.weight.astype("float32")  # repro-check: ignore[dtype-mismatch]
        report = verify_dtypes(network)
        assert "dtype-promotion" in rules(report)
        offender = report.by_rule("dtype-promotion")[0]
        assert offender.layer == conv.name

    def test_non_finite_parameter_flagged(self):
        network = build_model("lenet", num_classes=8, seed=TEST_SEED)
        conv = network.layers[0]
        conv.weight = conv.weight.copy()
        conv.weight.flat[0] = np.nan
        report = verify_dtypes(network)
        assert "non-finite-parameter" in rules(report)

    def test_full_verify_combines_passes(self):
        network = build_model("lenet", num_classes=8, seed=TEST_SEED)
        conv = network.layers[0]
        conv.weight = conv.weight.astype("float32")  # repro-check: ignore[dtype-mismatch]
        report = verify_network(network)
        assert "dtype-promotion" in rules(report)
