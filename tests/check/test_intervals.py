"""Pass 1b: static activation-range propagation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.check import Interval, input_range_of, propagate_ranges
from repro.models import build_model
from repro.nn.builder import NetworkBuilder

TEST_SEED = 1234


class TestInterval:
    def test_basic_properties(self):
        iv = Interval(-2.0, 3.0)
        assert iv.max_abs == 3.0
        assert iv.with_zero() == iv
        assert Interval(1.0, 2.0).with_zero() == Interval(0.0, 2.0)
        assert Interval(-3.0, -1.0).relu() == Interval(0.0, 0.0)
        assert (Interval(-1.0, 1.0) + Interval(2.0, 3.0)) == Interval(1.0, 4.0)
        assert Interval(-1.0, 0.5).hull(Interval(0.0, 2.0)) == Interval(-1.0, 2.0)

    def test_invalid_intervals_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)
        with pytest.raises(ValueError):
            Interval(float("nan"), 1.0)

    def test_input_range_of(self):
        images = np.array([[-3.0, 7.0], [1.0, 2.0]])
        assert input_range_of(images) == Interval(-3.0, 7.0)
        widened = input_range_of(images, margin=0.2)
        assert widened.lo < -3.0 and widened.hi > 7.0


def _forward_bound_network(builder_fn, batch):
    """Propagate intervals and compare with an actual forward pass."""
    network = builder_fn()
    analysis = propagate_ranges(network, input_range_of(batch))
    cache = network.run_all(batch)
    return network, analysis, cache


class TestPropagation:
    def test_dense_bound_is_sound_and_attained(self):
        rng = np.random.default_rng(TEST_SEED)
        weight = rng.normal(size=(4, 6))
        builder = NetworkBuilder("tiny", (6,), seed=TEST_SEED)
        builder.dense("fc", 4)
        network = builder.build()
        network["fc"].weight = weight
        network["fc"].bias = np.zeros(4)

        lo, hi = -1.5, 2.0
        analysis = propagate_ranges(network, Interval(lo, hi))
        bound = analysis.outputs["fc"]

        # Sound: every sampled input stays inside the bound.
        x = rng.uniform(lo, hi, size=(512, 6))
        y = x @ weight.T
        assert y.min() >= bound.lo - 1e-9
        assert y.max() <= bound.hi + 1e-9

        # Attained: the vertex input realizes the upper bound exactly.
        best = np.where(weight > 0, hi, lo)
        attained = (best * weight).sum(axis=1).max()
        assert attained == pytest.approx(bound.hi)

    def test_relu_softmax_and_merge_bounds(self):
        builder = NetworkBuilder("merge", (4,), seed=TEST_SEED)
        builder.dense("fc1", 4, relu=True)
        network = builder.build()
        analysis = propagate_ranges(network, Interval(-1.0, 1.0))
        relu_name = network.output_name
        out = analysis.outputs[relu_name]
        assert out.lo >= 0.0

    def test_zoo_bound_covers_measured_ranges(
        self, lenet, lenet_stats, datasets
    ):
        """Static bounds must dominate anything the data produced."""
        __, test = datasets
        analysis = propagate_ranges(lenet, input_range_of(test.images))
        assert not analysis.report.findings  # every layer type supported
        for name, stat in lenet_stats.items():
            bound = analysis.analyzed_inputs[name]
            assert stat.max_abs_input <= bound.max_abs * (1 + 1e-12), name

    def test_all_zoo_layer_types_supported(self):
        # GoogleNet exercises concat/LRN/global-pool; ResNet exercises
        # add/batch-norm affine.
        for model in ("googlenet", "resnet50"):
            network = build_model(model, num_classes=8, seed=TEST_SEED)
            analysis = propagate_ranges(network, Interval(-100.0, 100.0))
            assert not analysis.report.findings, model
            assert set(analysis.analyzed_inputs) == set(
                network.analyzed_layer_names
            )

    def test_deeper_layers_widen(self, lenet, datasets):
        __, test = datasets
        analysis = propagate_ranges(lenet, input_range_of(test.images))
        names = lenet.analyzed_layer_names
        first = analysis.analyzed_inputs[names[0]]
        last = analysis.analyzed_inputs[names[-1]]
        assert last.max_abs >= first.max_abs
