"""Pass 1c: static allocation audits (overflow, negative-F, xi, fits)."""

from __future__ import annotations

import numpy as np

from repro.check import (
    Interval,
    Severity,
    audit_allocation,
    audit_allocation_result,
    audit_profiles,
    audit_xi,
)
from repro.analysis.profiler import LayerErrorProfile
from repro.models import build_model
from repro.nn.statistics import LayerStats
from repro.optimize.sqp import XI_FLOOR
from repro.quant.allocation import BitwidthAllocation, LayerAllocation
from repro.quant.fixed_point import integer_bits_for_range

TEST_SEED = 1234


def rules(report):
    return {f.rule for f in report}


def make_profile(name, lam=2.0, theta=0.01, r_squared=0.99):
    grid = np.geomspace(1e-3, 1e-1, 5)
    return LayerErrorProfile(
        name=name,
        lam=lam,
        theta=theta,
        r_squared=r_squared,
        max_relative_error=0.02,
        deltas=grid,
        sigmas=(grid - theta) / lam,
    )


# ----------------------------------------------------------------------
class TestOverflowAudit:
    def test_undersized_integer_bits_flagged(self):
        """The acceptance fixture: I too small for the measured range."""
        stats = {
            "conv1": LayerStats(
                "conv1", num_inputs=100, num_macs=1000, max_abs_input=443.0
            )
        }
        needed = integer_bits_for_range(443.0)
        allocation = BitwidthAllocation(
            [LayerAllocation("conv1", integer_bits=needed - 2, fraction_bits=6)]
        )
        report = audit_allocation(allocation, stats=stats)
        overflow = report.by_rule("overflow")
        assert overflow and overflow[0].severity == Severity.ERROR
        assert overflow[0].layer == "conv1"
        assert report.exit_code() == 1

    def test_adequate_integer_bits_clean(self):
        stats = {
            "conv1": LayerStats(
                "conv1", num_inputs=100, num_macs=1000, max_abs_input=443.0
            )
        }
        allocation = BitwidthAllocation(
            [
                LayerAllocation(
                    "conv1",
                    integer_bits=integer_bits_for_range(443.0),
                    fraction_bits=6,
                )
            ]
        )
        assert audit_allocation(allocation, stats=stats).ok(strict=True)

    def test_pipeline_allocation_from_stats_is_clean(self):
        """uniform() derives I from the stats, so it can never overflow."""
        stats = [
            LayerStats("a", 10, 100, max_abs_input=139.0),
            LayerStats("b", 10, 100, max_abs_input=7.5),
        ]
        allocation = BitwidthAllocation.uniform(stats, total_bits=12)
        report = audit_allocation(
            allocation, stats={s.name: s for s in stats}
        )
        assert not report.by_rule("overflow")


class TestFormatAudit:
    def test_negative_f_dropping_all_integer_bits(self):
        allocation = BitwidthAllocation(
            [LayerAllocation("a", integer_bits=4, fraction_bits=-4)]
        )
        report = audit_allocation(allocation)
        flagged = report.by_rule("negative-f")
        assert flagged and flagged[0].severity == Severity.ERROR

    def test_moderate_negative_f_is_fine(self):
        # The paper's Sec. II-A trick: F=-2 with I=8 is a legal
        # 6-bit word with an implicit shift.
        allocation = BitwidthAllocation(
            [LayerAllocation("a", integer_bits=8, fraction_bits=-2)]
        )
        assert audit_allocation(allocation).ok(strict=True)

    def test_clamped_width_warned(self):
        allocation = BitwidthAllocation(
            [LayerAllocation("a", integer_bits=20, fraction_bits=20)]
        )
        report = audit_allocation(allocation)
        assert "clamped-width" in rules(report)
        assert report.ok()  # warning only
        assert not report.ok(strict=True)


class TestNetworkCoverage:
    def test_unknown_and_unanalyzed_targets(self):
        network = build_model("lenet", num_classes=8, seed=TEST_SEED)
        non_analyzed = next(
            layer.name for layer in network.layers if not layer.analyzed
        )
        allocation = BitwidthAllocation(
            [
                LayerAllocation("ghost", 4, 4),
                LayerAllocation(non_analyzed, 4, 4),
            ]
        )
        report = audit_allocation(allocation, network=network)
        assert "unknown-layer" in rules(report)
        assert "not-analyzed" in rules(report)
        assert "uncovered-layers" in rules(report)

    def test_static_range_audit_warns_on_small_i(self):
        network = build_model("lenet", num_classes=8, seed=TEST_SEED)
        name = network.analyzed_layer_names[-1]
        allocation = BitwidthAllocation(
            [LayerAllocation(name, integer_bits=1, fraction_bits=7)]
        )
        report = audit_allocation(
            allocation, network=network, input_range=Interval(-100.0, 100.0)
        )
        flagged = report.by_rule("static-range")
        assert flagged and flagged[0].severity == Severity.WARNING


# ----------------------------------------------------------------------
class TestXiAudit:
    def test_valid_xi_clean(self):
        assert audit_xi({"a": 0.25, "b": 0.75}).ok(strict=True)

    def test_sum_violation(self):
        report = audit_xi({"a": 0.6, "b": 0.6})
        assert "xi-sum" in rules(report)
        assert report.exit_code() == 1

    def test_floor_violation(self):
        report = audit_xi({"a": XI_FLOOR / 10, "b": 1.0 - XI_FLOOR / 10})
        assert "xi-floor" in rules(report)

    def test_negative_share(self):
        report = audit_xi({"a": -0.2, "b": 1.2})
        assert "xi-negative" in rules(report)

    def test_empty(self):
        assert "xi-empty" in rules(audit_xi({}))


class TestProfileGates:
    def test_healthy_profiles_clean(self):
        report = audit_profiles({"a": make_profile("a")})
        assert report.ok(strict=True)

    def test_degenerate_lambda(self):
        report = audit_profiles({"a": make_profile("a", lam=1e-12)})
        flagged = report.by_rule("degenerate-lambda")
        assert flagged and flagged[0].severity == Severity.ERROR
        assert flagged[0].reference == "Eq. 5"

    def test_negative_lambda(self):
        report = audit_profiles({"a": make_profile("a", lam=-0.5)})
        assert "negative-lambda" in rules(report)

    def test_negative_r_squared(self):
        report = audit_profiles({"a": make_profile("a", r_squared=-0.3)})
        assert "negative-r2" in rules(report)
        assert report.exit_code() == 1

    def test_low_r_squared_warns(self):
        report = audit_profiles({"a": make_profile("a", r_squared=0.3)})
        assert "low-r2" in rules(report)
        assert report.ok() and not report.ok(strict=True)


# ----------------------------------------------------------------------
class TestAuditResult:
    def test_combined_audit(self):
        from repro.optimize.allocator import AllocationResult
        from repro.optimize.objective import Objective

        stats = {
            "a": LayerStats("a", 10, 100, max_abs_input=100.0),
        }
        allocation = BitwidthAllocation(
            [LayerAllocation("a", integer_bits=2, fraction_bits=6)]
        )
        result = AllocationResult(
            allocation=allocation,
            xi={"a": 0.8},  # violates the sum constraint
            deltas={"a": 0.01},
            sigma=0.5,
            objective=Objective("input", {"a": 1.0}),
        )
        report = audit_allocation_result(
            result,
            stats=stats,
            profiles={"a": make_profile("a", lam=1e-15)},
        )
        found = rules(report)
        assert {"overflow", "xi-sum", "degenerate-lambda"} <= found
