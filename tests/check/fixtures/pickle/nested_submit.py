"""Fixture: locally-defined function submitted to a process pool."""

from concurrent.futures import ProcessPoolExecutor


def run(values, scale):
    def task(v):
        return v * scale

    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(task, v) for v in values]  # expect[unpicklable-task]
    return [f.result() for f in futures]
