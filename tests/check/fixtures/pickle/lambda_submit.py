"""Fixture: lambda submitted to a process pool (unpicklable)."""

from concurrent.futures import ProcessPoolExecutor


def run(values):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(lambda v: v * 2, v) for v in values]  # expect[unpicklable-task]
    return [f.result() for f in futures]
