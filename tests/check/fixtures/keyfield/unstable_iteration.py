"""Fixture: digest built from insertion-ordered dict iteration."""

import hashlib


def table_digest(table):
    h = hashlib.sha256()
    for name, value in table.items():  # expect[unstable-iteration]
        h.update(f"{name}={value}".encode("utf-8"))
    return h.hexdigest()
