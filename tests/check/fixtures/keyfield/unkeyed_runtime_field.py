"""Fixture: the quantized runtime's spec grew an unclassified field."""

from dataclasses import dataclass


@dataclass(frozen=True)
class RuntimeSpec:
    weight_bits: int = 16
    backend: str = "fast"
    pack_activations: bool = True
    scratch_dir: str = ""  # expect[unkeyed-field]
