"""Fixture: a registered settings class grew an unclassified field."""

from dataclasses import dataclass


@dataclass(frozen=True)
class ProfileSettings:
    num_images: int = 16
    num_delta_points: int = 6
    delta_min: float = 1e-9
    delta_max: float = 1e-1
    num_repeats: int = 1
    seed: int = 20190325
    extra_knob: int = 0  # expect[unkeyed-field]
