"""Fixture: the lease protocol's settings grew an unclassified field."""

from dataclasses import dataclass


@dataclass(frozen=True)
class LeaseSettings:
    ttl_seconds: float = 60.0
    heartbeat_seconds: float = 0.0
    poll_seconds: float = 0.5
    claim_salt: str = ""  # expect[unkeyed-field]
