"""Fixture: the registry still lists a field this spec dropped."""

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class SweepSpec:  # expect[stale-registry-entry]
    models: Sequence[str] = ("lenet",)
    accuracy_drops: Sequence[float] = (0.01, 0.05)
