"""Fixture: a cache-key builder that skips the code-version salt."""

import hashlib
import json


def widget_cache_key(parts):
    canonical = json.dumps(parts, sort_keys=True)
    h = hashlib.sha256(canonical.encode("utf-8"))  # expect[missing-code-salt]
    return h.hexdigest()
