"""Fixture: frozen spec with mutable container fields."""

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class CampaignSpec:
    name: str = "default"
    layers: List[str] = field(default_factory=list)  # expect[mutable-spec-field]
    overrides: Dict[str, float] = field(default_factory=dict)  # expect[mutable-spec-field]
