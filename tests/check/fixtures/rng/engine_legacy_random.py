"""Fixture: engine-scoped module using the legacy global RNG."""

import numpy as np


def perturb(x):
    noise = np.random.normal(0.0, 1.0, x.shape)  # expect[rng-outside-helper]
    np.random.shuffle(x)  # expect[rng-outside-helper]
    return x + noise
