"""Fixture: engine-scoped module drawing RNG outside the helpers."""

import numpy as np


def run_trial(seed, size):
    rng = np.random.default_rng(seed)  # expect[rng-outside-helper]
    return rng.normal(size=size)
