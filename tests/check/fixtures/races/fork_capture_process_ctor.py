"""Fixture: worker fan-out via multiprocessing.Process, not a pool.

The distributed sweep spawns workers this way; the same contracts
apply — a lock in ``args=`` does not survive the fork/pickle boundary,
and a lambda target cannot be pickled at all.
"""

import threading
from multiprocessing import Process


def worker_loop(run_dir, guard):
    with guard:
        return run_dir


def spawn(run_dir):
    guard = threading.Lock()
    proc = Process(target=worker_loop, args=(run_dir, guard))  # expect[fork-unsafe-capture]
    proc.start()
    return proc


def spawn_lambda(run_dir):
    proc = Process(target=lambda: run_dir)  # expect[unpicklable-task]
    proc.start()
    return proc
