"""Fixture: the lease claim protocol re-implemented outside the helper.

Each of these is a real failure mode the analyzer must catch: a worker
touching its own lease (heartbeat without the helper), a cleanup pass
unlinking leases non-atomically, a claim via plain truncating open
(no O_EXCL — two workers both "win"), and a steal via rename that
skips the expiry re-check.
"""

import os
from pathlib import Path


def heartbeat_by_hand(lease_path):
    os.utime(lease_path)  # expect[lease-write-outside-helper]


def sweep_cleanup(run_dir):
    for stale_lease in Path(run_dir).glob("*.lease"):
        stale_lease.unlink()  # expect[lease-write-outside-helper]


def claim_without_excl(cell_lease):
    with open(cell_lease, "w") as handle:  # expect[lease-write-outside-helper]
        handle.write("mine")


def steal_without_expiry_check(lease_file, tomb):
    os.rename(lease_file, tomb)  # expect[lease-write-outside-helper]


def read_is_fine(lease_path):
    # Read-side access never mutates the claim; not flagged.
    return Path(lease_path).read_text(encoding="utf-8")
