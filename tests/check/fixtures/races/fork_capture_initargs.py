"""Fixture: an open file handle and an mmap leaked through initargs."""

import mmap
from concurrent.futures import ProcessPoolExecutor


def _init(handle, mapped):
    pass


def run(path, task, items):
    handle = open(path, "rb")
    mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    pool = ProcessPoolExecutor(initializer=_init, initargs=(handle, mapped))  # expect[fork-unsafe-capture]
    with pool:
        return list(pool.map(task, items))
