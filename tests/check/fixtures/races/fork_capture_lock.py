"""Fixture: a threading.Lock captured into a process-pool submission."""

import threading
from concurrent.futures import ProcessPoolExecutor


def work(guard, value):
    with guard:
        return value * 2


def run(values):
    guard = threading.Lock()
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(work, guard, v) for v in values]  # expect[fork-unsafe-capture]
    return [f.result() for f in futures]
