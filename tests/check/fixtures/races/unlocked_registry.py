"""Fixture: lock-owning class mutating shared attrs outside the lock."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {}
        self._last = None

    def observe(self, name):
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + 1

    def observe_racy(self, name):
        self._counts[name] = 1  # expect[unlocked-registry-write]
        self._last = name  # expect[unlocked-registry-write]

    def reset(self):
        self._counts.clear()  # expect[unlocked-registry-write]
