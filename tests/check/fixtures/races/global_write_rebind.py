"""Fixture: pool-submitted function rebinds a global counter."""

from concurrent.futures import ProcessPoolExecutor

COUNTER = 0
EVENTS = []


def bump(delta):
    global COUNTER
    COUNTER = COUNTER + delta  # expect[global-write-in-worker]
    EVENTS.append(delta)  # expect[global-write-in-worker]
    return COUNTER


def run(deltas):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(bump, deltas))
