"""Fixture: pool-submitted function mutates a module-level dict."""

from concurrent.futures import ThreadPoolExecutor

RESULTS = {}


def record(name, value):
    RESULTS[name] = value  # expect[global-write-in-worker]
    return value


def run(items):
    with ThreadPoolExecutor(max_workers=4) as pool:
        futures = [pool.submit(record, k, v) for k, v in items]
    return [f.result() for f in futures]
