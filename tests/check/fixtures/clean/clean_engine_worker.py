"""Fixture: the sanctioned patterns — must produce zero findings.

Covers the exemptions each rule carves out: a process-pool
*initializer* writing per-process module state, a submitted worker
that only returns results, a lock-owning registry that takes its lock
for every mutation, a digest built over sorted iteration, and a frozen
spec made of immutable fields.
"""

import hashlib
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence

_WORKER_STATE = {}

CODE_SALT = "fixture-salt-v1"


def _worker_init(name):
    # Per-process setup before any task runs: the sanctioned place to
    # populate module state.
    _WORKER_STATE["name"] = name


def worker_run(value):
    return value * 2


def run(values):
    with ProcessPoolExecutor(initializer=_worker_init, initargs=("x",)) as pool:
        futures = [pool.submit(worker_run, v) for v in values]
    return [f.result() for f in futures]


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {}

    def observe(self, name):
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + 1

    def snapshot(self):
        with self._lock:
            return dict(self._counts)


def table_key(table):
    h = hashlib.sha256()
    h.update(CODE_SALT.encode("utf-8"))
    for name in sorted(table.keys()):  # sorted: order-independent
        h.update(f"{name}={table[name]}".encode("utf-8"))
    return h.hexdigest()


@dataclass(frozen=True)
class CleanSpec:
    models: Sequence[str] = ("lenet",)
    objective: str = "input"
    limit: Optional[int] = None
