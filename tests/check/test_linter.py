"""Pass 2: AST numerical linter — one positive + one negative per rule."""

from __future__ import annotations

import textwrap

from repro.check import lint_paths, lint_source


def lint(snippet):
    return lint_source(textwrap.dedent(snippet), path="snippet.py")


def rules(findings):
    return {f.rule for f in findings}


class TestUnseededRandom:
    def test_legacy_global_rng_flagged(self):
        findings = lint(
            """
            import numpy as np
            x = np.random.uniform(-1, 1, size=8)
            """
        )
        assert rules(findings) == {"unseeded-random"}
        assert findings[0].line == 3

    def test_unseeded_default_rng_flagged(self):
        findings = lint(
            """
            import numpy as np
            rng = np.random.default_rng()
            """
        )
        assert rules(findings) == {"unseeded-random"}

    def test_seeded_generator_is_clean(self):
        findings = lint(
            """
            import numpy as np
            rng = np.random.default_rng(20190325)
            x = rng.uniform(-1, 1, size=8)
            """
        )
        assert not findings

    def test_non_numpy_random_ignored(self):
        # `random` here is some other module; only numpy aliases count.
        findings = lint(
            """
            import mylib as np2
            x = np2.random.uniform(0, 1)
            """
        )
        assert not findings


class TestFloatEquality:
    def test_equality_against_float_literal_flagged(self):
        findings = lint("ok = sigma == 0.0\n")
        assert rules(findings) == {"float-equality"}

    def test_inequality_flagged(self):
        findings = lint("bad = x != 1.5\n")
        assert rules(findings) == {"float-equality"}

    def test_integer_and_ordering_comparisons_clean(self):
        findings = lint(
            """
            a = n == 0
            b = x <= 0.0
            c = x < 1.5
            """
        )
        assert not findings


class TestDtypeMismatch:
    def test_dtype_kwarg_flagged(self):
        findings = lint(
            """
            import numpy as np
            x = np.zeros(4, dtype="float32")
            """
        )
        assert rules(findings) == {"dtype-mismatch"}

    def test_astype_attribute_flagged(self):
        findings = lint(
            """
            import numpy as np
            y = x.astype(np.float32)
            """
        )
        assert rules(findings) == {"dtype-mismatch"}

    def test_substrate_dtype_clean(self):
        findings = lint(
            """
            import numpy as np
            x = np.zeros(4, dtype="float64")
            y = x.astype(np.float64)
            """
        )
        assert not findings


class TestCacheMutation:
    def test_augassign_on_cache_item_flagged(self):
        findings = lint("cache['conv1'] += noise\n")
        assert rules(findings) == {"cache-mutation"}

    def test_element_store_flagged(self):
        findings = lint("activation_cache['conv1'][0] = 0.0\n")
        assert rules(findings) == {"cache-mutation"}

    def test_mutating_method_flagged(self):
        findings = lint("cache['conv1'].fill(0.0)\n")
        assert rules(findings) == {"cache-mutation"}

    def test_slot_rebinding_is_clean(self):
        # The dict-building idiom: assigning a fresh array to a slot.
        findings = lint("cache['conv1'] = outputs\n")
        assert not findings

    def test_non_cache_receiver_is_clean(self):
        findings = lint("weights['conv1'] += noise\n")
        assert not findings


class TestOverbroadExcept:
    def test_bare_except_flagged(self):
        findings = lint(
            """
            try:
                run()
            except:
                pass
            """
        )
        assert rules(findings) == {"overbroad-except"}

    def test_swallowing_exception_flagged(self):
        findings = lint(
            """
            try:
                run()
            except Exception:
                log()
            """
        )
        assert rules(findings) == {"overbroad-except"}

    def test_reraising_handler_is_clean(self):
        findings = lint(
            """
            try:
                run()
            except Exception:
                cleanup()
                raise
            """
        )
        assert not findings

    def test_narrow_handler_is_clean(self):
        findings = lint(
            """
            try:
                run()
            except ValueError:
                recover()
            """
        )
        assert not findings


class TestSuppressionAndDriver:
    def test_targeted_suppression(self):
        findings = lint(
            "ok = sigma == 0.0  # repro-check: ignore[float-equality]\n"
        )
        assert not findings

    def test_blanket_suppression(self):
        findings = lint("ok = sigma == 0.0  # repro-check: ignore\n")
        assert not findings

    def test_wrong_rule_suppression_does_not_hide(self):
        findings = lint(
            "ok = sigma == 0.0  # repro-check: ignore[cache-mutation]\n"
        )
        assert rules(findings) == {"float-equality"}

    def test_syntax_error_becomes_finding(self):
        findings = lint("def broken(:\n")
        assert rules(findings) == {"syntax-error"}

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "bad.py").write_text("x = y == 0.5\n")
        (tmp_path / "good.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("y == 0.5 not python\n")
        report, num_files = lint_paths([tmp_path])
        assert num_files == 2
        assert {f.rule for f in report} == {"float-equality"}
        assert report.exit_code() == 1
