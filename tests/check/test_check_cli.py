"""The ``python -m repro.check`` entry point and pipeline integration."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.check.cli import main
from repro.errors import DegradedResultWarning, NumericalGuardError
from repro.models import build_model
from repro.pipeline import PrecisionOptimizer

TEST_SEED = 1234


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "violations.py"
    path.write_text(
        textwrap.dedent(
            """
            import numpy as np

            x = np.random.uniform(-1, 1, size=4)
            ok = x.std() == 0.0
            y = x.astype(np.float32)
            """
        )
    )
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(
        textwrap.dedent(
            """
            import numpy as np

            rng = np.random.default_rng(20190325)
            x = rng.uniform(-1, 1, size=4)
            degenerate = float(x.std()) <= 1e-15
            """
        )
    )
    return path


class TestLintCli:
    def test_seeded_violations_exit_nonzero(self, bad_file, capsys):
        code = main(["--lint", str(bad_file)])
        out = capsys.readouterr().out
        assert code == 1
        for rule in ("unseeded-random", "float-equality", "dtype-mismatch"):
            assert rule in out

    def test_strict_also_fails(self, bad_file, capsys):
        assert main(["--lint", str(bad_file), "--strict"]) == 1
        capsys.readouterr()

    def test_clean_file_exits_zero(self, clean_file, capsys):
        assert main(["--lint", str(clean_file)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_json_output(self, bad_file, capsys):
        code = main(["--lint", str(bad_file), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["errors"] >= 3
        rules = {f["rule"] for f in payload["findings"]}
        assert "unseeded-random" in rules

    def test_self_lint_is_clean(self, capsys):
        """The package's own source passes its own linter (CI gate)."""
        assert main(["--self"]) == 0
        capsys.readouterr()


class TestPipelineIntegration:
    def test_verify_rejects_corrupted_network_strict(self, datasets):
        __, test = datasets
        network = build_model("lenet", num_classes=8, seed=TEST_SEED)
        conv = network.layers[0]
        conv.weight = conv.weight.astype("float32")  # repro-check: ignore[dtype-mismatch]
        with pytest.raises(NumericalGuardError, match="static"):
            PrecisionOptimizer(network, test, strict=True)

    def test_verify_warns_by_default(self, datasets):
        __, test = datasets
        network = build_model("lenet", num_classes=8, seed=TEST_SEED)
        conv = network.layers[0]
        conv.weight = conv.weight.astype("float32")  # repro-check: ignore[dtype-mismatch]
        with pytest.warns(DegradedResultWarning, match="static"):
            PrecisionOptimizer(network, test, strict=False)

    def test_verify_opt_out(self, datasets):
        __, test = datasets
        network = build_model("lenet", num_classes=8, seed=TEST_SEED)
        conv = network.layers[0]
        conv.weight = conv.weight.astype("float32")  # repro-check: ignore[dtype-mismatch]
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            PrecisionOptimizer(network, test, verify=False)

    def test_clean_network_constructs_silently(self, datasets):
        __, test = datasets
        network = build_model("lenet", num_classes=8, seed=TEST_SEED)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            PrecisionOptimizer(network, test)
