"""The 0/1/2 exit-code contract and baseline handling of the check CLI.

0 = clean, 1 = findings present (or warnings under ``--strict``),
2 = the analyzer itself crashed.  The distinction lets CI tell "the
code has violations" apart from "the checker is broken" — both red,
different on-call.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.check import registry as check_registry
from repro.check.cli import EXIT_CRASH, main

RACY = textwrap.dedent(
    """
    from concurrent.futures import ThreadPoolExecutor

    STATE = {}


    def task(k):
        STATE[k] = 1


    def run(keys):
        with ThreadPoolExecutor() as pool:
            return [pool.submit(task, k) for k in keys]
    """
)

CLEAN = textwrap.dedent(
    """
    def double(x):
        return 2 * x
    """
)


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.py"
    path.write_text(RACY, encoding="utf-8")
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN, encoding="utf-8")
    return path


class TestExitCodes:
    def test_findings_exit_one(self, racy_file, capsys):
        code = main(["--lint", str(racy_file), "--concurrency"])
        out = capsys.readouterr().out
        assert code == 1
        assert "global-write-in-worker" in out

    def test_clean_exit_zero(self, clean_file, capsys):
        code = main(
            ["--lint", str(clean_file), "--concurrency", "--determinism"]
        )
        capsys.readouterr()
        assert code == 0

    def test_crash_exit_two(self, clean_file, capsys, monkeypatch):
        def boom(files):
            raise RuntimeError("analyzer bug")

        monkeypatch.setitem(check_registry.ANALYZERS, "concurrency", boom)
        code = main(["--lint", str(clean_file), "--concurrency"])
        err = capsys.readouterr().err
        assert code == EXIT_CRASH == 2
        assert "analyzer crashed" in err
        assert "analyzer bug" in err

    def test_pipeline_mode_crash_exit_two(self, capsys, monkeypatch):
        # The contract holds outside static mode too.
        import argparse

        import repro.check.cli as cli_mod

        def boom(args):
            raise RuntimeError("pipeline checker bug")

        monkeypatch.setattr(cli_mod, "run_pipeline_check", boom)
        code = cli_mod.run_check(
            argparse.Namespace(
                lint_self=False,
                lint=None,
                concurrency=False,
                determinism=False,
            )
        )
        capsys.readouterr()
        assert code == 2

    def test_analyzer_flags_alone_imply_self(self, capsys):
        # `--concurrency --determinism` with no paths runs against the
        # package's own tree, which must be clean (acceptance gate).
        code = main(["--concurrency", "--determinism"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 error(s)" in out


class TestBaseline:
    def test_write_and_apply_baseline(self, racy_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "--lint",
                    str(racy_file),
                    "--concurrency",
                    "--write-baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(baseline.read_text())
        assert payload["digests"], "expected the racy finding's digest"

        # With the baseline, the same findings are accepted debt.
        code = main(
            [
                "--lint",
                str(racy_file),
                "--concurrency",
                "--baseline",
                str(baseline),
            ]
        )
        capsys.readouterr()
        assert code == 0

    def test_new_finding_not_masked_by_baseline(
        self, racy_file, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        main(
            [
                "--lint",
                str(racy_file),
                "--concurrency",
                "--write-baseline",
                str(baseline),
            ]
        )
        capsys.readouterr()
        # Introduce a second violation the baseline has never seen.
        source = racy_file.read_text()
        racy_file.write_text(
            source.replace("STATE[k] = 1", "STATE[k] = 1\n    STATE.pop(k)")
        )
        code = main(
            [
                "--lint",
                str(racy_file),
                "--concurrency",
                "--baseline",
                str(baseline),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "global-write-in-worker" in out

    def test_stale_baseline_digest_warns(
        self, clean_file, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps({"version": 1, "digests": ["deadbeefdeadbeef"]})
        )
        code = main(
            [
                "--lint",
                str(clean_file),
                "--concurrency",
                "--baseline",
                str(baseline),
                "--strict",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1  # strict: the stale-digest warning fails
        assert "stale-baseline" in out

    def test_malformed_baseline_is_a_crash(self, clean_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("[1, 2, 3]")
        code = main(
            [
                "--lint",
                str(clean_file),
                "--concurrency",
                "--baseline",
                str(baseline),
            ]
        )
        capsys.readouterr()
        assert code == 2

    def test_committed_baseline_is_clean(self, capsys):
        """The repo's committed baseline carries zero accepted findings:
        the tree itself satisfies every contract."""
        from pathlib import Path

        from repro.check.registry import load_baseline

        repo_root = Path(__file__).resolve().parents[2]
        assert load_baseline(repo_root / "check-baseline.json") == []


class TestLintDedupe:
    def test_overlapping_paths_report_once(self, tmp_path, capsys):
        """Satellite: dir + file + absolute spellings collapse to one
        finding per defect, keeping baselines stable."""
        from repro.check.linter import lint_paths

        path = tmp_path / "dupe.py"
        path.write_text(
            "import numpy as np\nx = np.random.uniform(0.0, 1.0)\n",
            encoding="utf-8",
        )
        report, _ = lint_paths(
            [tmp_path, path, str(path.resolve())]
        )
        assert len(report.findings) == 1
        assert report.findings[0].rule == "unseeded-random"

    def test_same_line_repeats_collapse(self, tmp_path):
        from repro.check.linter import lint_paths

        path = tmp_path / "twice.py"
        # Two float-literal equality comparisons on one line: one
        # digest, one finding.
        path.write_text("bad = (a == 0.0) or (b == 0.0)\n", encoding="utf-8")
        report, _ = lint_paths([path])
        assert len(report.by_rule("float-equality")) == 1
