"""Property tests on randomly generated network DAGs.

Hand-written graph tests cover known shapes; these generate arbitrary
valid DAGs (random depth, branching, merges, pooling) and assert the
two invariants the whole reproduction rests on:

* a tapped full forward equals partial replay from the tapped layer,
* the forward pass with memory freeing equals the keep-everything pass.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import NetworkBuilder, validate_dag


def build_random_network(seed: int):
    """A random but always-valid DAG over a 2x8x8 input."""
    rng = np.random.default_rng(seed)
    b = NetworkBuilder(f"rand{seed}", (2, 8, 8), seed=seed)
    # heads: (name, channels) of CHW-shaped outputs available to consume
    heads = []
    current = b.conv("c0", int(rng.integers(2, 5)), 3)
    heads.append((current, b.network[current.replace("_relu", "")].out_channels))
    num_blocks = int(rng.integers(1, 5))
    for i in range(num_blocks):
        choice = rng.integers(0, 4)
        src_name, src_channels = heads[int(rng.integers(0, len(heads)))]
        if choice == 0:  # plain conv
            name = b.conv(
                f"conv{i}", int(rng.integers(2, 6)), 3, source=src_name
            )
            channels = b.network[f"conv{i}"].out_channels
        elif choice == 1:  # two-branch concat
            left = b.conv(
                f"l{i}", int(rng.integers(2, 4)), 1, padding=0, source=src_name
            )
            right = b.conv(
                f"r{i}", int(rng.integers(2, 4)), 3, source=src_name
            )
            name = b.concat(f"cat{i}", [left, right])
            channels = (
                b.network[f"l{i}"].out_channels
                + b.network[f"r{i}"].out_channels
            )
        elif choice == 2:  # residual add
            branch = b.conv(
                f"b{i}", src_channels, 3, relu=False, source=src_name
            )
            name = b.add_residual(f"add{i}", [src_name, branch])
            b.relu(f"post{i}")
            name = f"post{i}"
            channels = src_channels
        else:  # norm
            name = b.batch_norm(f"bn{i}", source=src_name)
            channels = src_channels
        heads.append((name, channels))
    final = heads[-1][0]
    b.global_pool("gap", source=final)
    b.dense("fc", 4)
    return b.build()


class TestRandomGraphs:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_generated_graphs_are_valid(self, seed):
        net = build_random_network(seed)
        validate_dag(net)
        x = np.random.default_rng(seed).normal(size=(2, 2, 8, 8))
        out = net.forward(x)
        assert out.shape == (2, 4)
        assert np.isfinite(out).all()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), layer_pick=st.integers(0, 100))
    def test_partial_replay_matches_tapped_forward(self, seed, layer_pick):
        """PROPERTY: forward_from == forward-with-tap, on any DAG and
        any analyzed layer — the profiler's core assumption."""
        net = build_random_network(seed)
        analyzed = net.analyzed_layer_names
        target = analyzed[layer_pick % len(analyzed)]
        x = np.random.default_rng(seed + 1).normal(size=(2, 2, 8, 8))
        cache = net.run_all(x)

        def tap(a):
            return a * 1.01 + 0.1

        full = net.forward(x, taps={target: tap})
        partial = net.forward_from(cache, target, tap)
        np.testing.assert_allclose(partial, full, rtol=1e-10)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_memory_freeing_forward_matches_cache(self, seed):
        """PROPERTY: the memory-bounded forward equals run_all."""
        net = build_random_network(seed)
        x = np.random.default_rng(seed + 2).normal(size=(1, 2, 8, 8))
        np.testing.assert_allclose(
            net.forward(x), net.run_all(x)[net.output_name], rtol=1e-12
        )
