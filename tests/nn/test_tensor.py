"""Unit tests for the im2col / windowing helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn.tensor import (
    assert_batched,
    conv_output_hw,
    extract_windows,
    flatten_spatial,
    im2col,
    pad_nchw,
)


class TestConvOutputHW:
    def test_unit_stride_no_padding(self):
        assert conv_output_hw(8, 8, 3, 1, 0) == (6, 6)

    def test_same_padding(self):
        assert conv_output_hw(8, 8, 3, 1, 1) == (8, 8)

    def test_stride_two(self):
        assert conv_output_hw(8, 8, 2, 2, 0) == (4, 4)

    def test_rectangular_input(self):
        assert conv_output_hw(6, 10, 3, 1, 1) == (6, 10)

    def test_kernel_too_large_raises(self):
        with pytest.raises(ShapeError):
            conv_output_hw(2, 2, 5, 1, 0)


class TestPad:
    def test_zero_padding_is_identity(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        assert pad_nchw(x, 0) is x

    def test_padding_adds_zero_border(self):
        x = np.ones((1, 1, 2, 2))
        padded = pad_nchw(x, 1)
        assert padded.shape == (1, 1, 4, 4)
        assert padded[0, 0, 0, :].sum() == 0
        assert padded[0, 0, 1, 1] == 1


class TestExtractWindows:
    def test_shape(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 6, 6))
        windows = extract_windows(x, 3, 1, 0)
        assert windows.shape == (2, 3, 4, 4, 3, 3)

    def test_window_content_matches_slice(self):
        x = np.arange(36.0).reshape(1, 1, 6, 6)
        windows = extract_windows(x, 3, 1, 0)
        np.testing.assert_array_equal(windows[0, 0, 2, 1], x[0, 0, 2:5, 1:4])

    def test_strided_window_content(self):
        x = np.arange(64.0).reshape(1, 1, 8, 8)
        windows = extract_windows(x, 2, 2, 0)
        np.testing.assert_array_equal(windows[0, 0, 1, 3], x[0, 0, 2:4, 6:8])

    def test_rejects_non_nchw(self):
        with pytest.raises(ShapeError):
            extract_windows(np.zeros((4, 4)), 2, 1, 0)


class TestIm2col:
    def test_shape(self):
        x = np.zeros((2, 3, 5, 5))
        cols = im2col(x, 3, 1, 1)
        assert cols.shape == (2, 27, 25)

    def test_conv_via_im2col_matches_naive(self):
        """im2col convolution equals the straightforward nested loop."""
        rng = np.random.default_rng(7)
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        cols = im2col(x, 3, 1, 0)
        out = np.matmul(w.reshape(4, -1)[None], cols).reshape(2, 4, 4, 4)
        naive = np.zeros_like(out)
        for n in range(2):
            for f in range(4):
                for i in range(4):
                    for j in range(4):
                        naive[n, f, i, j] = np.sum(
                            x[n, :, i : i + 3, j : j + 3] * w[f]
                        )
        np.testing.assert_allclose(out, naive, rtol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
        padding=st.integers(0, 1),
        size=st.integers(4, 7),
    )
    def test_column_count_matches_output_positions(
        self, kernel, stride, padding, size
    ):
        x = np.zeros((1, 2, size, size))
        out_h, out_w = conv_output_hw(size, size, kernel, stride, padding)
        cols = im2col(x, kernel, stride, padding)
        assert cols.shape == (1, 2 * kernel * kernel, out_h * out_w)


class TestFlatten:
    def test_flattens_nchw(self):
        x = np.arange(24.0).reshape(2, 3, 2, 2)
        flat = flatten_spatial(x)
        assert flat.shape == (2, 12)
        np.testing.assert_array_equal(flat[0], x[0].ravel())

    def test_flat_input_passthrough(self):
        x = np.zeros((2, 5))
        assert flatten_spatial(x) is x

    def test_rejects_3d(self):
        with pytest.raises(ShapeError):
            flatten_spatial(np.zeros((2, 3, 4)))


class TestAssertBatched:
    def test_accepts_2d_and_4d(self):
        assert_batched(np.zeros((1, 2)))
        assert_batched(np.zeros((1, 2, 3, 4)))

    def test_rejects_others(self):
        with pytest.raises(ShapeError):
            assert_batched(np.zeros((3,)))
        with pytest.raises(ShapeError):
            assert_batched(np.zeros((1, 2, 3)))
