"""Unit tests for the Dense (fully connected) layer."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import Dense


class TestDenseForward:
    def test_matches_matmul(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 6))
        w = rng.normal(size=(3, 6))
        b = rng.normal(size=3)
        layer = Dense("fc", ["input"], w, bias=b)
        layer.bind([(6,)])
        np.testing.assert_allclose(layer.forward([x]), x @ w.T + b, rtol=1e-12)

    def test_flattens_spatial_input(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 2, 3, 3))
        w = rng.normal(size=(5, 18))
        layer = Dense("fc", ["input"], w)
        layer.bind([(2, 3, 3)])
        expected = x.reshape(2, 18) @ w.T
        np.testing.assert_allclose(layer.forward([x]), expected, rtol=1e-12)

    def test_no_bias(self):
        w = np.eye(3)
        layer = Dense("fc", ["input"], w)
        layer.bind([(3,)])
        x = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_array_equal(layer.forward([x]), x)


class TestDenseValidation:
    def test_rejects_non_2d_weight(self):
        with pytest.raises(ShapeError):
            Dense("fc", ["input"], np.zeros((2, 3, 4)))

    def test_rejects_feature_mismatch(self):
        layer = Dense("fc", ["input"], np.zeros((2, 5)))
        with pytest.raises(ShapeError):
            layer.bind([(6,)])

    def test_rejects_bad_bias(self):
        with pytest.raises(ShapeError):
            Dense("fc", ["input"], np.zeros((2, 5)), bias=np.zeros(5))


class TestDenseStats:
    def test_macs_equals_in_times_out(self):
        layer = Dense("fc", ["input"], np.zeros((7, 11)))
        layer.bind([(11,)])
        assert layer.num_macs() == 77

    def test_input_elements(self):
        layer = Dense("fc", ["input"], np.zeros((7, 12)))
        layer.bind([(3, 2, 2)])
        assert layer.num_input_elements() == 12

    def test_parameters(self):
        layer = Dense("fc", ["input"], np.zeros((7, 11)), bias=np.zeros(7))
        assert layer.num_parameters() == 7 * 11 + 7

    def test_output_shape(self):
        layer = Dense("fc", ["input"], np.zeros((7, 11)))
        layer.bind([(11,)])
        assert layer.output_shape == (7,)
