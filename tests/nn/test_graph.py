"""Unit tests for the Network DAG: wiring, taps, partial re-execution."""

import numpy as np
import pytest

from repro.errors import GraphError, ShapeError
from repro.nn import (
    Add,
    Conv2D,
    Dense,
    GlobalAvgPool,
    Network,
    NetworkBuilder,
    ReLU,
)
from repro.nn.graph import INPUT


def tiny_network(seed=0):
    """conv -> relu -> conv -> gap -> fc, all deterministic."""
    b = NetworkBuilder("tiny", (2, 6, 6), seed=seed)
    b.conv("c1", 3, 3)
    b.conv("c2", 4, 3)
    b.global_pool("gap")
    b.dense("fc", 5)
    return b.build()


def residual_network(seed=0):
    """A DAG with a skip connection (c1 feeds both c2 and the add)."""
    b = NetworkBuilder("res", (2, 6, 6), seed=seed)
    c1 = b.conv("c1", 4, 3)
    b.conv("c2", 4, 3, source=c1)
    c3 = b.conv("c3", 4, 3, relu=False)
    b.add_residual("add", [c1, c3])
    b.relu("post")
    b.global_pool("gap")
    b.dense("fc", 3)
    return b.build()


class TestConstruction:
    def test_duplicate_name_rejected(self):
        net = Network("n", (2, 4, 4))
        net.add(ReLU("r", [INPUT]))
        with pytest.raises(GraphError):
            net.add(ReLU("r", [INPUT]))

    def test_reserved_name_rejected(self):
        net = Network("n", (2, 4, 4))
        with pytest.raises(GraphError):
            net.add(ReLU(INPUT, [INPUT]))

    def test_unknown_producer_rejected(self):
        net = Network("n", (2, 4, 4))
        with pytest.raises(GraphError):
            net.add(ReLU("r", ["ghost"]))

    def test_empty_layer_name_rejected(self):
        with pytest.raises(GraphError):
            ReLU("", [INPUT])

    def test_bad_input_shape_rejected(self):
        with pytest.raises(GraphError):
            Network("n", (2, 4))

    def test_output_defaults_to_last_layer(self):
        net = tiny_network()
        assert net.output_name == "fc"

    def test_set_output(self):
        net = tiny_network()
        net.set_output("gap")
        assert net.output_name == "gap"
        with pytest.raises(GraphError):
            net.set_output("ghost")

    def test_getitem_and_contains(self):
        net = tiny_network()
        assert "c1" in net
        assert net["c1"].name == "c1"
        with pytest.raises(GraphError):
            net["nope"]

    def test_len_counts_layers(self):
        net = tiny_network()
        # c1, c1_relu, c2, c2_relu, gap, fc
        assert len(net) == 6


class TestAnalyzedLayers:
    def test_defaults_to_all_dot_product_layers(self):
        net = tiny_network()
        assert net.analyzed_layer_names == ["c1", "c2", "fc"]

    def test_restriction(self):
        net = tiny_network()
        net.set_analyzed_layers(["c1", "c2"])
        assert net.analyzed_layer_names == ["c1", "c2"]

    def test_rejects_non_dot_product_layer(self):
        net = tiny_network()
        with pytest.raises(GraphError):
            net.set_analyzed_layers(["gap"])


class TestForward:
    def test_output_shape(self):
        net = tiny_network()
        x = np.random.default_rng(0).normal(size=(3, 2, 6, 6))
        assert net.forward(x).shape == (3, 5)

    def test_deterministic(self):
        net = tiny_network()
        x = np.random.default_rng(0).normal(size=(2, 2, 6, 6))
        np.testing.assert_array_equal(net.forward(x), net.forward(x))

    def test_rejects_wrong_input_shape(self):
        net = tiny_network()
        with pytest.raises(ShapeError):
            net.forward(np.zeros((1, 3, 6, 6)))

    def test_rejects_unknown_tap_target(self):
        net = tiny_network()
        with pytest.raises(GraphError):
            net.forward(np.zeros((1, 2, 6, 6)), taps={"ghost": lambda x: x})

    def test_identity_tap_is_noop(self):
        net = tiny_network()
        x = np.random.default_rng(1).normal(size=(2, 2, 6, 6))
        out_plain = net.forward(x)
        out_tapped = net.forward(x, taps={"c2": lambda a: a})
        np.testing.assert_array_equal(out_plain, out_tapped)

    def test_tap_modifies_downstream(self):
        net = tiny_network()
        x = np.random.default_rng(2).normal(size=(2, 2, 6, 6))
        out_plain = net.forward(x)
        out_tapped = net.forward(x, taps={"c2": lambda a: a + 1.0})
        assert not np.allclose(out_plain, out_tapped)

    def test_tap_sees_layer_input(self):
        net = tiny_network()
        x = np.random.default_rng(3).normal(size=(2, 2, 6, 6))
        seen = {}

        def spy(a):
            seen["shape"] = a.shape
            return a

        net.forward(x, taps={"c2": spy})
        assert seen["shape"] == (2, 3, 6, 6)  # c1 has 3 output channels

    def test_residual_forward_matches_manual(self):
        net = residual_network()
        x = np.random.default_rng(4).normal(size=(1, 2, 6, 6))
        cache = net.run_all(x)
        manual = cache["c1_relu"] + cache["c3"]
        np.testing.assert_allclose(cache["add"], manual, rtol=1e-12)


class TestRunAllAndForwardFrom:
    def test_cache_contains_every_layer(self):
        net = tiny_network()
        x = np.random.default_rng(0).normal(size=(2, 2, 6, 6))
        cache = net.run_all(x)
        for layer in net.layers:
            assert layer.name in cache

    def test_forward_from_equals_full_forward_with_same_tap(self):
        """Partial re-execution must agree exactly with a tapped full pass."""
        net = tiny_network()
        x = np.random.default_rng(1).normal(size=(2, 2, 6, 6))
        cache = net.run_all(x)

        def tap(a):
            return a + 0.5

        for start in ["c1", "c2", "fc"]:
            full = net.forward(x, taps={start: tap})
            partial = net.forward_from(cache, start, tap)
            np.testing.assert_allclose(partial, full, rtol=1e-12)

    def test_forward_from_on_dag_with_skip(self):
        """Injection below a fork must leave the skip path clean."""
        net = residual_network()
        x = np.random.default_rng(2).normal(size=(2, 2, 6, 6))
        cache = net.run_all(x)

        def tap(a):
            return a * 1.01

        for start in ["c1", "c2", "c3", "fc"]:
            full = net.forward(x, taps={start: tap})
            partial = net.forward_from(cache, start, tap)
            np.testing.assert_allclose(partial, full, rtol=1e-12)

    def test_forward_from_identity_tap_reproduces_cache(self):
        net = residual_network()
        x = np.random.default_rng(3).normal(size=(2, 2, 6, 6))
        cache = net.run_all(x)
        out = net.forward_from(cache, "c2", lambda a: a)
        np.testing.assert_allclose(out, cache[net.output_name], rtol=1e-12)

    def test_num_parameters_positive(self):
        assert tiny_network().num_parameters() > 0


class TestMemoryFreeing:
    def test_forward_correct_when_producer_feeds_multiple_consumers(self):
        """The last-use bookkeeping must not free a value still needed."""
        net = residual_network()
        x = np.random.default_rng(5).normal(size=(2, 2, 6, 6))
        expected = net.run_all(x)[net.output_name]
        np.testing.assert_allclose(net.forward(x), expected, rtol=1e-12)
