"""Unit tests for per-layer statistics (Table II's raw rows)."""

import numpy as np
import pytest

from repro.nn import (
    NetworkBuilder,
    measure_ranges,
    ordered_stats,
    static_stats,
    total_inputs,
    total_macs,
)
from repro.nn.statistics import LayerStats


@pytest.fixture()
def net():
    b = NetworkBuilder("n", (3, 8, 8), seed=0)
    b.conv("c1", 4, 3)
    b.max_pool("p1", 2)
    b.conv("c2", 8, 3)
    b.global_pool("gap")
    b.dense("fc", 5)
    return b.build()


class TestStaticStats:
    def test_covers_analyzed_layers_only(self, net):
        stats = static_stats(net)
        assert set(stats) == {"c1", "c2", "fc"}

    def test_input_counts(self, net):
        stats = static_stats(net)
        assert stats["c1"].num_inputs == 3 * 8 * 8
        assert stats["c2"].num_inputs == 4 * 4 * 4
        assert stats["fc"].num_inputs == 8

    def test_mac_counts(self, net):
        stats = static_stats(net)
        assert stats["c1"].num_macs == 4 * 8 * 8 * 3 * 9
        assert stats["c2"].num_macs == 8 * 4 * 4 * 4 * 9
        assert stats["fc"].num_macs == 8 * 5

    def test_totals(self, net):
        stats = static_stats(net)
        assert total_inputs(stats) == sum(s.num_inputs for s in stats.values())
        assert total_macs(stats) == sum(s.num_macs for s in stats.values())

    def test_ordered_follows_analyzed_order(self, net):
        stats = static_stats(net)
        assert [s.name for s in ordered_stats(net, stats)] == ["c1", "c2", "fc"]


class TestMeasuredRanges:
    def test_max_abs_positive_after_measurement(self, net):
        images = np.random.default_rng(0).normal(size=(8, 3, 8, 8)) * 10
        stats = measure_ranges(net, images)
        for s in stats.values():
            assert s.max_abs_input > 0

    def test_c1_range_matches_input_range(self, net):
        images = np.random.default_rng(1).normal(size=(8, 3, 8, 8))
        stats = measure_ranges(net, images)
        assert stats["c1"].max_abs_input == pytest.approx(
            float(np.abs(images).max())
        )

    def test_batching_does_not_change_result(self, net):
        images = np.random.default_rng(2).normal(size=(10, 3, 8, 8))
        s_all = measure_ranges(net, images, batch_size=10)
        s_batched = measure_ranges(net, images, batch_size=3)
        for name in s_all:
            assert s_all[name].max_abs_input == pytest.approx(
                s_batched[name].max_abs_input
            )


class TestIntegerBits:
    @pytest.mark.parametrize(
        "max_abs,expected",
        [
            (161.0, 9),   # paper Table II conv1
            (139.0, 9),   # paper Table II conv2/conv3
            (443.0, 10),  # paper Table II conv4
            (415.0, 10),  # paper Table II conv5
            (1.0, 2),
            (0.9, 1),
            (0.0, 1),
        ],
    )
    def test_matches_paper_formula(self, max_abs, expected):
        stat = LayerStats(name="x", num_inputs=1, num_macs=1, max_abs_input=max_abs)
        assert stat.integer_bits == expected
