"""Tests for the networkx-based graph utilities."""

import pytest

from repro.errors import GraphError
from repro.models import build_model
from repro.nn import (
    downstream_layers,
    layer_depths,
    replay_cost_fraction,
    to_networkx,
    validate_dag,
)
from repro.nn.graph import INPUT


@pytest.fixture(scope="module")
def resnet():
    return build_model("resnet50")


class TestToNetworkx:
    def test_node_count(self, lenet):
        graph = to_networkx(lenet)
        assert graph.number_of_nodes() == len(lenet) + 1  # + input

    def test_edges_match_wiring(self, lenet):
        graph = to_networkx(lenet)
        assert graph.has_edge(INPUT, "conv1")
        assert graph.has_edge("conv1", "conv1_relu")

    def test_analyzed_attribute(self, lenet):
        graph = to_networkx(lenet)
        assert graph.nodes["conv1"]["analyzed"]
        assert not graph.nodes["pool1"]["analyzed"]


class TestValidateDag:
    def test_zoo_models_are_valid(self, lenet, resnet):
        validate_dag(lenet)
        validate_dag(resnet)


class TestLayerDepths:
    def test_monotone_along_chain(self, lenet):
        depths = layer_depths(lenet)
        assert depths["conv1"] < depths["conv2"] < depths["conv3"] < depths["fc"]

    def test_input_is_zero(self, lenet):
        assert layer_depths(lenet)[INPUT] == 0

    def test_residual_depth_takes_longest_path(self, resnet):
        depths = layer_depths(resnet)
        # the add node is deeper than its shortcut input
        assert depths["s1b1_add"] > depths["s1b1_proj"]


class TestDownstream:
    def test_last_layer_downstream_is_itself(self, lenet):
        assert downstream_layers(lenet, "fc") == ["fc"]

    def test_first_layer_downstream_is_everything(self, lenet):
        assert len(downstream_layers(lenet, "conv1")) == len(lenet)

    def test_unknown_layer_rejected(self, lenet):
        with pytest.raises(GraphError):
            downstream_layers(lenet, "ghost")

    def test_skip_path_not_included(self, resnet):
        """Layers on a parallel branch are not downstream."""
        downstream = set(downstream_layers(resnet, "s1b1_a"))
        assert "s1b1_proj" not in downstream
        assert "s1b1_add" in downstream


class TestReplayCost:
    def test_fraction_bounds(self, lenet):
        for name in lenet.analyzed_layer_names:
            fraction = replay_cost_fraction(lenet, name)
            assert 0 < fraction <= 1

    def test_late_layers_cheaper(self, lenet):
        assert replay_cost_fraction(lenet, "fc") < replay_cost_fraction(
            lenet, "conv1"
        )

    def test_first_layer_costs_full_pass(self, lenet):
        assert replay_cost_fraction(lenet, "conv1") == pytest.approx(1.0)
