"""Unit tests for ReLU, Softmax, LRN, ChannelAffine, Add, Concat, Flatten."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import (
    Add,
    ChannelAffine,
    Concat,
    Flatten,
    LRN,
    ReLU,
    Softmax,
)


class TestReLU:
    def test_clamps_negatives(self):
        layer = ReLU("r", ["input"])
        layer.bind([(2,)])
        out = layer.forward([np.array([[-1.0, 2.0]])])
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_preserves_shape(self):
        layer = ReLU("r", ["input"])
        layer.bind([(2, 3, 3)])
        assert layer.output_shape == (2, 3, 3)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        layer = Softmax("s", ["input"])
        layer.bind([(5,)])
        out = layer.forward([np.random.default_rng(0).normal(size=(3, 5))])
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-12)

    def test_stable_for_large_logits(self):
        layer = Softmax("s", ["input"])
        layer.bind([(2,)])
        out = layer.forward([np.array([[1e4, 0.0]])])
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(1.0)

    def test_argmax_invariant(self):
        """Softmax never changes the predicted class."""
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(16, 10))
        layer = Softmax("s", ["input"])
        layer.bind([(10,)])
        out = layer.forward([logits])
        np.testing.assert_array_equal(
            np.argmax(out, axis=1), np.argmax(logits, axis=1)
        )


class TestLRN:
    def _naive_lrn(self, x, size, alpha, beta, k):
        out = np.empty_like(x)
        half = size // 2
        channels = x.shape[1]
        for c in range(channels):
            lo, hi = max(0, c - half), min(channels, c + half + 1)
            ssq = (x[:, lo:hi] ** 2).sum(axis=1)
            out[:, c] = x[:, c] / (k + alpha / size * ssq) ** beta
        return out

    def test_matches_naive(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 7, 4, 4))
        layer = LRN("l", ["input"], local_size=5, alpha=1e-3, beta=0.75, k=2.0)
        layer.bind([(7, 4, 4)])
        np.testing.assert_allclose(
            layer.forward([x]),
            self._naive_lrn(x, 5, 1e-3, 0.75, 2.0),
            rtol=1e-10,
        )

    def test_rejects_even_window(self):
        with pytest.raises(ShapeError):
            LRN("l", ["input"], local_size=4)


class TestChannelAffine:
    def test_scale_and_shift(self):
        layer = ChannelAffine(
            "a", ["input"], scale=np.array([2.0, 0.5]), shift=np.array([1.0, 0.0])
        )
        layer.bind([(2, 2, 2)])
        x = np.ones((1, 2, 2, 2))
        out = layer.forward([x])
        assert np.all(out[0, 0] == 3.0)
        assert np.all(out[0, 1] == 0.5)

    def test_rejects_channel_mismatch(self):
        layer = ChannelAffine(
            "a", ["input"], scale=np.ones(3), shift=np.zeros(3)
        )
        with pytest.raises(ShapeError):
            layer.bind([(2, 4, 4)])

    def test_rejects_mismatched_scale_shift(self):
        with pytest.raises(ShapeError):
            ChannelAffine("a", ["input"], scale=np.ones(3), shift=np.zeros(2))


class TestAdd:
    def test_sums_inputs(self):
        layer = Add("add", ["a", "b"])
        layer.bind([(2, 2, 2), (2, 2, 2)])
        out = layer.forward([np.ones((1, 2, 2, 2)), 2 * np.ones((1, 2, 2, 2))])
        assert np.all(out == 3.0)

    def test_three_way_add(self):
        layer = Add("add", ["a", "b", "c"])
        layer.bind([(2,)] * 3)
        out = layer.forward([np.ones((1, 2))] * 3)
        assert np.all(out == 3.0)

    def test_does_not_mutate_inputs(self):
        layer = Add("add", ["a", "b"])
        layer.bind([(2,), (2,)])
        a = np.ones((1, 2))
        layer.forward([a, a])
        assert np.all(a == 1.0)

    def test_rejects_single_input(self):
        with pytest.raises(ShapeError):
            Add("add", ["a"])

    def test_rejects_shape_mismatch(self):
        layer = Add("add", ["a", "b"])
        with pytest.raises(ShapeError):
            layer.bind([(2, 2, 2), (3, 2, 2)])


class TestConcat:
    def test_concatenates_channels(self):
        layer = Concat("cat", ["a", "b"])
        layer.bind([(2, 3, 3), (4, 3, 3)])
        assert layer.output_shape == (6, 3, 3)
        out = layer.forward([np.ones((1, 2, 3, 3)), np.zeros((1, 4, 3, 3))])
        assert out[0, :2].sum() == 18
        assert out[0, 2:].sum() == 0

    def test_rejects_spatial_mismatch(self):
        layer = Concat("cat", ["a", "b"])
        with pytest.raises(ShapeError):
            layer.bind([(2, 3, 3), (2, 4, 4)])


class TestFlatten:
    def test_shape(self):
        layer = Flatten("f", ["input"])
        layer.bind([(2, 3, 4)])
        assert layer.output_shape == (24,)
