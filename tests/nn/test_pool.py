"""Unit tests for pooling layers."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import AvgPool2D, GlobalAvgPool, MaxPool2D


class TestMaxPool:
    def test_basic_2x2(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 1, 2, 2)
        layer = MaxPool2D("p", ["input"], 2)
        layer.bind([(1, 2, 2)])
        assert layer.forward([x])[0, 0, 0, 0] == 4.0

    def test_overlapping_3x3_stride1(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 2, 5, 5))
        layer = MaxPool2D("p", ["input"], 3, stride=1)
        layer.bind([(2, 5, 5)])
        out = layer.forward([x])
        assert out.shape == (1, 2, 3, 3)
        assert out[0, 1, 0, 0] == x[0, 1, 0:3, 0:3].max()

    def test_padding_uses_neg_inf_not_zero(self):
        """All-negative inputs must not pool to the zero padding."""
        x = -np.ones((1, 1, 2, 2))
        layer = MaxPool2D("p", ["input"], 3, stride=1, padding=1)
        layer.bind([(1, 2, 2)])
        out = layer.forward([x])
        assert np.all(out == -1.0)

    def test_default_stride_equals_kernel(self):
        layer = MaxPool2D("p", ["input"], 2)
        layer.bind([(1, 6, 6)])
        assert layer.output_shape == (1, 3, 3)

    def test_rejects_flat_input(self):
        layer = MaxPool2D("p", ["input"], 2)
        with pytest.raises(ShapeError):
            layer.bind([(4,)])

    def test_error_passthrough_property(self):
        """Paper Sec. III-C: max pooling sub-samples errors, so a small
        perturbation moves the output by (at most) the same amount."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 3, 8, 8))
        layer = MaxPool2D("p", ["input"], 2)
        layer.bind([(3, 8, 8)])
        delta = 1e-6
        noise = rng.uniform(-delta, delta, size=x.shape)
        diff = layer.forward([x + noise]) - layer.forward([x])
        assert np.max(np.abs(diff)) <= delta * (1 + 1e-9)


class TestAvgPool:
    def test_basic_average(self):
        x = np.arange(4.0).reshape(1, 1, 2, 2)
        layer = AvgPool2D("p", ["input"], 2)
        layer.bind([(1, 2, 2)])
        assert layer.forward([x])[0, 0, 0, 0] == 1.5

    def test_error_scaling_matches_dot_product_model(self):
        """Paper Sec. III-C: avg pooling with N elements scales error std
        by ~1/sqrt(N) for i.i.d. errors."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=(8, 4, 16, 16))
        layer = AvgPool2D("p", ["input"], 4)
        layer.bind([(4, 16, 16)])
        noise = rng.uniform(-1.0, 1.0, size=x.shape)
        diff = layer.forward([x + noise]) - layer.forward([x])
        ratio = diff.std() / noise.std()
        assert ratio == pytest.approx(1.0 / 4.0, rel=0.1)  # sqrt(16)=4


class TestGlobalAvgPool:
    def test_produces_flat_features(self):
        x = np.arange(8.0).reshape(1, 2, 2, 2)
        layer = GlobalAvgPool("g", ["input"])
        layer.bind([(2, 2, 2)])
        out = layer.forward([x])
        assert out.shape == (1, 2)
        np.testing.assert_allclose(out[0], [1.5, 5.5])

    def test_rejects_flat_input(self):
        layer = GlobalAvgPool("g", ["input"])
        with pytest.raises(ShapeError):
            layer.bind([(4,)])

    def test_no_macs(self):
        layer = GlobalAvgPool("g", ["input"])
        layer.bind([(2, 2, 2)])
        assert layer.num_macs() == 0
