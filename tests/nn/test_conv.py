"""Unit tests for Conv2D (dense, grouped, depthwise paths)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import Conv2D


def naive_conv(x, w, stride=1, padding=0, groups=1):
    """Reference convolution via explicit loops."""
    n, c_in, h, wd = x.shape
    c_out, c_in_g, k, _ = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        h, wd = h + 2 * padding, wd + 2 * padding
    out_h = (h - k) // stride + 1
    out_w = (wd - k) // stride + 1
    out = np.zeros((n, c_out, out_h, out_w))
    out_per_group = c_out // groups
    for b in range(n):
        for f in range(c_out):
            g = f // out_per_group
            xs = x[b, g * c_in_g : (g + 1) * c_in_g]
            for i in range(out_h):
                for j in range(out_w):
                    patch = xs[:, i * stride : i * stride + k, j * stride : j * stride + k]
                    out[b, f, i, j] = np.sum(patch * w[f])
    return out


def make_conv(w, **kw):
    layer = Conv2D("c", ["input"], w, **kw)
    in_channels = w.shape[1] * kw.get("groups", 1)
    return layer, in_channels


class TestDenseConv:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(5, 3, 3, 3))
        layer, _ = make_conv(w, padding=1, stride=2)
        layer.bind([(3, 7, 7)])
        out = layer.forward([x])
        np.testing.assert_allclose(
            out, naive_conv(x, w, stride=2, padding=1), rtol=1e-10
        )

    def test_bias_added_per_channel(self):
        w = np.zeros((2, 1, 1, 1))
        layer = Conv2D("c", ["input"], w, bias=np.array([1.0, -2.0]))
        layer.bind([(1, 3, 3)])
        out = layer.forward([np.zeros((1, 1, 3, 3))])
        assert np.all(out[0, 0] == 1.0)
        assert np.all(out[0, 1] == -2.0)

    def test_1x1_conv_is_channel_mix(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 3, 4, 4))
        w = rng.normal(size=(2, 3, 1, 1))
        layer, _ = make_conv(w, padding=0)
        layer.bind([(3, 4, 4)])
        out = layer.forward([x])
        expected = np.einsum("nchw,fc->nfhw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(out, expected, rtol=1e-12)


class TestGroupedConv:
    def test_two_groups_match_naive(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 4, 5, 5))
        w = rng.normal(size=(6, 2, 3, 3))
        layer = Conv2D("c", ["input"], w, padding=1, groups=2)
        layer.bind([(4, 5, 5)])
        out = layer.forward([x])
        np.testing.assert_allclose(
            out, naive_conv(x, w, padding=1, groups=2), rtol=1e-10
        )

    def test_depthwise_matches_naive(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 4, 6, 6))
        w = rng.normal(size=(4, 1, 3, 3))
        layer = Conv2D("c", ["input"], w, padding=1, groups=4)
        layer.bind([(4, 6, 6)])
        out = layer.forward([x])
        np.testing.assert_allclose(
            out, naive_conv(x, w, padding=1, groups=4), rtol=1e-10
        )

    def test_depthwise_with_stride(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(1, 3, 8, 8))
        w = rng.normal(size=(3, 1, 3, 3))
        layer = Conv2D("c", ["input"], w, stride=2, padding=1, groups=3)
        layer.bind([(3, 8, 8)])
        out = layer.forward([x])
        np.testing.assert_allclose(
            out, naive_conv(x, w, stride=2, padding=1, groups=3), rtol=1e-10
        )


class TestConvValidation:
    def test_rejects_non_square_kernel(self):
        with pytest.raises(ShapeError):
            Conv2D("c", ["input"], np.zeros((1, 1, 2, 3)))

    def test_rejects_wrong_channel_count(self):
        layer = Conv2D("c", ["input"], np.zeros((2, 3, 3, 3)))
        with pytest.raises(ShapeError):
            layer.bind([(4, 8, 8)])

    def test_rejects_bad_bias_shape(self):
        with pytest.raises(ShapeError):
            Conv2D("c", ["input"], np.zeros((2, 1, 3, 3)), bias=np.zeros(3))

    def test_rejects_out_channels_not_divisible_by_groups(self):
        with pytest.raises(ShapeError):
            Conv2D("c", ["input"], np.zeros((3, 1, 3, 3)), groups=2)

    def test_rejects_flat_input_shape(self):
        layer = Conv2D("c", ["input"], np.zeros((2, 3, 3, 3)))
        with pytest.raises(ShapeError):
            layer.bind([(27,)])


class TestConvStats:
    def test_mac_count(self):
        # output 4x4x8, each output needs 3*3*3 multiplies
        layer = Conv2D("c", ["input"], np.zeros((8, 3, 3, 3)), padding=1)
        layer.bind([(3, 4, 4)])
        assert layer.num_macs() == 8 * 4 * 4 * 3 * 3 * 3

    def test_depthwise_mac_count(self):
        layer = Conv2D("c", ["input"], np.zeros((4, 1, 3, 3)), padding=1, groups=4)
        layer.bind([(4, 4, 4)])
        assert layer.num_macs() == 4 * 4 * 4 * 1 * 3 * 3

    def test_input_elements(self):
        layer = Conv2D("c", ["input"], np.zeros((8, 3, 3, 3)), padding=1)
        layer.bind([(3, 4, 4)])
        assert layer.num_input_elements() == 3 * 4 * 4

    def test_parameter_count_with_bias(self):
        layer = Conv2D("c", ["input"], np.zeros((8, 3, 3, 3)), bias=np.zeros(8))
        assert layer.num_parameters() == 8 * 3 * 9 + 8

    def test_alexnet_paper_mac_formula(self):
        """Sanity-check the #MAC formula against the paper's AlexNet conv1:
        96 filters, 11x11x3 kernels, 55x55 output => 1.05e8 MACs."""
        layer = Conv2D("c", ["input"], np.zeros((96, 3, 11, 11)), stride=4)
        layer.bind([(3, 227, 227)])
        assert layer.num_macs() == pytest.approx(1.05e8, rel=0.01)
