"""Tests for declarative network specs."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.nn import LayerSpec, NetworkSpec, build_from_spec


def small_spec():
    return NetworkSpec(
        name="specnet",
        input_shape=(3, 16, 16),
        layers=[
            LayerSpec("conv", "c1", {"out_channels": 4, "kernel": 3}),
            LayerSpec("max_pool", "p1", {"kernel": 2}),
            LayerSpec("conv", "c2", {"out_channels": 8, "kernel": 3}),
            LayerSpec("global_pool", "gap"),
            LayerSpec("dense", "fc", {"out_features": 5}),
        ],
        analyzed_layers=["c1", "c2", "fc"],
    )


def branchy_spec():
    return NetworkSpec(
        name="branchy",
        input_shape=(3, 8, 8),
        layers=[
            LayerSpec("conv", "a", {"out_channels": 4, "kernel": 3}),
            LayerSpec(
                "conv", "b", {"out_channels": 4, "kernel": 1},
                source="input",
            ),
            LayerSpec("concat", "cat", sources=["a_relu", "b_relu"]),
            LayerSpec("add", "sum", sources=["a_relu", "b_relu"]),
            LayerSpec("global_pool", "gap", source="cat"),
            LayerSpec("dense", "fc", {"out_features": 3}),
        ],
    )


class TestBuild:
    def test_builds_working_network(self):
        net = small_spec().build(seed=3)
        x = np.random.default_rng(0).normal(size=(2, 3, 16, 16))
        assert net.forward(x).shape == (2, 5)

    def test_analyzed_layers_respected(self):
        net = small_spec().build()
        assert net.analyzed_layer_names == ["c1", "c2", "fc"]

    def test_seed_reproducible(self):
        a = small_spec().build(seed=9)
        b = small_spec().build(seed=9)
        np.testing.assert_array_equal(a["c1"].weight, b["c1"].weight)

    def test_branching_layers(self):
        net = branchy_spec().build()
        assert net["cat"].output_shape == (8, 8, 8)
        assert net["sum"].output_shape == (4, 8, 8)

    def test_unknown_param_rejected(self):
        spec = NetworkSpec(
            name="bad",
            input_shape=(3, 8, 8),
            layers=[
                LayerSpec("conv", "c", {"out_channels": 4, "kernel": 3,
                                        "dilation": 2}),
            ],
        )
        with pytest.raises(GraphError):
            spec.build()


class TestValidation:
    def test_unknown_type_rejected(self):
        with pytest.raises(GraphError):
            LayerSpec("transformer", "t")

    def test_multi_source_needs_sources(self):
        with pytest.raises(GraphError):
            LayerSpec("concat", "cat")

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError):
            LayerSpec("relu", "")


class TestSerialization:
    def test_dict_roundtrip(self):
        spec = small_spec()
        rebuilt = NetworkSpec.from_dict(spec.to_dict())
        assert rebuilt.name == spec.name
        assert [l.name for l in rebuilt.layers] == [
            l.name for l in spec.layers
        ]

    def test_file_roundtrip_builds_identically(self, tmp_path):
        spec = small_spec()
        path = spec.save(tmp_path / "net.json")
        net_a = spec.build(seed=4)
        net_b = NetworkSpec.load(path).build(seed=4)
        x = np.random.default_rng(1).normal(size=(1, 3, 16, 16))
        np.testing.assert_array_equal(net_a.forward(x), net_b.forward(x))

    def test_build_from_spec_accepts_all_forms(self, tmp_path):
        spec = small_spec()
        path = spec.save(tmp_path / "net.json")
        for form in (spec, spec.to_dict(), path):
            net = build_from_spec(form, seed=1)
            assert len(net) > 0

    def test_rejects_wrong_version(self):
        data = small_spec().to_dict()
        data["spec_version"] = 999
        with pytest.raises(GraphError):
            NetworkSpec.from_dict(data)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(GraphError):
            NetworkSpec.load(tmp_path / "none.json")


class TestSpecWithOptimizer:
    def test_spec_network_runs_full_pipeline(self, source, datasets):
        """A spec-defined custom network goes through the whole paper
        pipeline like any zoo model."""
        from repro import PrecisionOptimizer
        from repro.config import ProfileSettings, SearchSettings
        from repro.models import lsuv_calibrate, pretrain

        train, test = datasets
        spec = NetworkSpec(
            name="custom",
            input_shape=(3, 32, 32),
            layers=[
                LayerSpec("conv", "c1", {"out_channels": 8, "kernel": 3}),
                LayerSpec("max_pool", "p1", {"kernel": 2}),
                LayerSpec("conv", "c2", {"out_channels": 8, "kernel": 3}),
                LayerSpec("global_pool", "gap"),
                LayerSpec("dense", "fc", {"out_features": 8}),
            ],
            analyzed_layers=["c1", "c2"],
        )
        net = spec.build(seed=5)
        lsuv_calibrate(net, train.images[:16])
        pretrain(net, train, test)
        optimizer = PrecisionOptimizer(
            net,
            test.subset(64),
            profile_settings=ProfileSettings(num_images=8, num_delta_points=6),
            search_settings=SearchSettings(tolerance=0.05, num_trials=1),
        )
        outcome = optimizer.optimize("input", accuracy_drop=0.10)
        assert set(outcome.bitwidths) == {"c1", "c2"}
