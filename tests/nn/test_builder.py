"""Unit tests for NetworkBuilder."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.nn import NetworkBuilder
from repro.nn.layers import Conv2D


class TestBuilderWiring:
    def test_conv_appends_relu_by_default(self):
        b = NetworkBuilder("n", (3, 8, 8), seed=0)
        head = b.conv("c1", 4, 3)
        assert head == "c1_relu"
        net = b.build()
        assert "c1" in net and "c1_relu" in net

    def test_conv_without_relu(self):
        b = NetworkBuilder("n", (3, 8, 8), seed=0)
        head = b.conv("c1", 4, 3, relu=False)
        assert head == "c1"
        assert "c1_relu" not in b.build()

    def test_default_padding_is_same(self):
        b = NetworkBuilder("n", (3, 8, 8), seed=0)
        b.conv("c1", 4, 5)
        net = b.build()
        assert net["c1"].output_shape == (4, 8, 8)

    def test_explicit_source(self):
        b = NetworkBuilder("n", (3, 8, 8), seed=0)
        b.conv("c1", 4, 3)
        b.conv("c2", 4, 3)
        b.conv("c3", 4, 3, source="c1_relu")
        net = b.build()
        assert net["c3"].inputs == ["c1_relu"]

    def test_depthwise_uses_channel_groups(self):
        b = NetworkBuilder("n", (4, 8, 8), seed=0)
        b.depthwise_conv("dw", 3)
        net = b.build()
        layer = net["dw"]
        assert isinstance(layer, Conv2D)
        assert layer.groups == 4
        assert layer.weight.shape == (4, 1, 3, 3)

    def test_build_empty_rejected(self):
        b = NetworkBuilder("n", (3, 8, 8), seed=0)
        with pytest.raises(GraphError):
            b.build()

    def test_build_sets_output_and_analyzed(self):
        b = NetworkBuilder("n", (3, 8, 8), seed=0)
        b.conv("c1", 4, 3)
        b.global_pool("gap")
        b.dense("fc", 5)
        net = b.build(output="fc", analyzed_layers=["c1"])
        assert net.output_name == "fc"
        assert net.analyzed_layer_names == ["c1"]

    def test_seed_determinism(self):
        w1 = NetworkBuilder("a", (3, 8, 8), seed=7).conv("c", 4, 3)
        w2 = NetworkBuilder("b", (3, 8, 8), seed=7).conv("c", 4, 3)
        # builders built independently with the same seed produce the
        # same weights
        b1 = NetworkBuilder("a", (3, 8, 8), seed=7)
        b1.conv("c", 4, 3)
        b2 = NetworkBuilder("b", (3, 8, 8), seed=7)
        b2.conv("c", 4, 3)
        np.testing.assert_array_equal(
            b1.build()["c"].weight, b2.build()["c"].weight
        )

    def test_he_scaling_shrinks_with_fan_in(self):
        b = NetworkBuilder("n", (64, 8, 8), seed=0)
        b.conv("wide", 8, 3)
        b2 = NetworkBuilder("n", (4, 8, 8), seed=0)
        b2.conv("narrow", 8, 3)
        wide_std = b.build()["wide"].weight.std()
        narrow_std = b2.build()["narrow"].weight.std()
        assert wide_std < narrow_std

    def test_dense_from_input(self):
        b = NetworkBuilder("n", (12,), seed=0)
        b.dense("fc", 5)
        net = b.build()
        assert net["fc"].in_features == 12

    def test_batch_norm_channels(self):
        b = NetworkBuilder("n", (3, 8, 8), seed=0)
        b.conv("c1", 6, 3, relu=False)
        b.batch_norm("bn")
        net = b.build()
        assert net["bn"].scale.shape == (6,)

    def test_concat_and_residual(self):
        b = NetworkBuilder("n", (3, 8, 8), seed=0)
        a = b.conv("a", 4, 3)
        c = b.conv("c", 4, 3, source="input")
        b.concat("cat", [a, c])
        b.add_residual("add", [a, c])
        net = b.build()
        assert net["cat"].output_shape == (8, 8, 8)
        assert net["add"].output_shape == (4, 8, 8)
