"""Tests for the Loom-style per-layer weight bitwidth search."""

import pytest

from repro.models import top1_accuracy
from repro.weights import search_per_layer_weight_bits


@pytest.fixture(scope="module")
def result(lenet, datasets):
    __, test = datasets
    base = top1_accuracy(lenet, test)
    res = search_per_layer_weight_bits(lenet, test, base, 0.05)
    return lenet, test, base, res


class TestPerLayerWeightSearch:
    def test_covers_all_analyzed_layers(self, result):
        lenet, __, __, res = result
        assert set(res.bits) == set(lenet.analyzed_layer_names)

    def test_meets_joint_constraint(self, result):
        __, __, base, res = result
        assert res.accuracy >= base * 0.95

    def test_bits_in_valid_range(self, result):
        __, __, __, res = result
        for bits in res.bits.values():
            assert 2 <= bits <= 16

    def test_no_worse_than_uniform_search(self, result, datasets):
        """The per-layer assignment's max width is a valid uniform width,
        so its effective bits can't exceed the uniform result by much."""
        lenet, test, base, res = result
        from repro.weights import search_weight_bitwidth

        uniform = search_weight_bitwidth(lenet, test, base, 0.05)
        weights = {name: 1.0 for name in res.bits}
        assert res.effective_bits(weights) <= uniform.bits + 1

    def test_network_restored(self, result, images):
        """Search must leave the model weights untouched."""
        lenet, test, base, res = result
        assert top1_accuracy(lenet, test) == pytest.approx(base)

    def test_effective_bits_weighted_mean(self, result):
        __, __, __, res = result
        names = list(res.bits)
        weights = {name: 1.0 for name in names}
        expected = sum(res.bits.values()) / len(names)
        assert res.effective_bits(weights) == pytest.approx(expected)
