"""Tests for analytic weight bitwidth allocation (Eq. 5 for weights)."""

import numpy as np
import pytest

from repro.config import ProfileSettings
from repro.errors import ProfilingError
from repro.models import top1_accuracy
from repro.weights import (
    QuantizedWeights,
    WeightErrorProfiler,
    allocate_weight_bits,
)


@pytest.fixture(scope="module")
def weight_report(lenet, datasets):
    __, test = datasets
    profiler = WeightErrorProfiler(
        lenet,
        test.images,
        ProfileSettings(num_images=12, num_delta_points=6, seed=5),
    )
    return profiler.profile()


class TestWeightErrorProfiler:
    def test_linear_law_holds_for_weights(self, weight_report):
        """The paper's Eq. 5, with weight errors as the source."""
        for p in weight_report:
            assert p.lam > 0
            assert p.r_squared > 0.85

    def test_covers_all_analyzed_layers(self, lenet, weight_report):
        assert set(p.name for p in weight_report) == set(
            lenet.analyzed_layer_names
        )

    def test_weights_restored_after_profiling(self, lenet, datasets):
        __, test = datasets
        before = lenet["conv1"].weight.copy()
        WeightErrorProfiler(
            lenet, test.images,
            ProfileSettings(num_images=4, num_delta_points=4),
        ).profile(["conv1"])
        np.testing.assert_array_equal(lenet["conv1"].weight, before)

    def test_sigma_grows_with_delta(self, weight_report):
        for p in weight_report:
            assert p.sigmas[-1] > p.sigmas[0]

    def test_rejects_weightless_layer(self, lenet, datasets):
        __, test = datasets
        profiler = WeightErrorProfiler(
            lenet, test.images,
            ProfileSettings(num_images=4, num_delta_points=4),
        )
        with pytest.raises(ProfilingError):
            profiler.profile(["pool1"])


class TestAllocateWeightBits:
    def test_bits_in_range(self, lenet, weight_report):
        alloc = allocate_weight_bits(lenet, weight_report.profiles, 0.3)
        for bits in alloc.bits.values():
            assert 2 <= bits <= 16

    def test_tighter_budget_needs_more_bits(self, lenet, weight_report):
        loose = allocate_weight_bits(lenet, weight_report.profiles, 1.0)
        tight = allocate_weight_bits(lenet, weight_report.profiles, 0.05)
        assert sum(tight.bits.values()) >= sum(loose.bits.values())

    def test_budget_fraction_scales_sigma(self, lenet, weight_report):
        half = allocate_weight_bits(
            lenet, weight_report.profiles, 0.4, budget_fraction=0.5
        )
        tenth = allocate_weight_bits(
            lenet, weight_report.profiles, 0.4, budget_fraction=0.1
        )
        assert tenth.sigma_weights < half.sigma_weights

    def test_rejects_bad_fraction(self, lenet, weight_report):
        with pytest.raises(ProfilingError):
            allocate_weight_bits(
                lenet, weight_report.profiles, 0.3, budget_fraction=1.5
            )

    def test_effective_bits_weighted_mean(self, lenet, weight_report):
        alloc = allocate_weight_bits(lenet, weight_report.profiles, 0.3)
        weights = {name: 1.0 for name in alloc.bits}
        expected = sum(alloc.bits.values()) / len(alloc.bits)
        assert alloc.effective_bits(weights) == pytest.approx(expected)

    def test_quantized_accuracy_tracks_budget(
        self, lenet, datasets, weight_report
    ):
        """A small weight budget keeps accuracy near baseline; a huge
        one degrades it — the analytic allocation is actually wired to
        the accuracy knob."""
        __, test = datasets
        base = top1_accuracy(lenet, test)
        small = allocate_weight_bits(
            lenet, weight_report.profiles, 0.05, budget_fraction=0.5
        )
        with QuantizedWeights(lenet, small.bits):
            acc_small = top1_accuracy(lenet, test)
        huge = allocate_weight_bits(
            lenet, weight_report.profiles, 8.0, budget_fraction=0.5
        )
        with QuantizedWeights(lenet, huge.bits):
            acc_huge = top1_accuracy(lenet, test)
        assert acc_small >= base - 0.05
        assert acc_huge <= acc_small
