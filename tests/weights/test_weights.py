"""Tests for weight quantization and the weight bitwidth search."""

import numpy as np
import pytest

from repro.errors import QuantizationError, SearchError
from repro.models import top1_accuracy
from repro.weights import (
    QuantizedWeights,
    search_weight_bitwidth,
    weight_format,
)


class TestWeightFormat:
    def test_covers_range(self):
        w = np.array([0.5, -1.75, 0.3])
        fmt = weight_format(w, 8)
        assert fmt.max_value >= 1.75
        assert fmt.total_bits == 8

    def test_error_within_half_step(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=100)
        fmt = weight_format(w, 10)
        err = np.abs(fmt.quantize(w) - w)
        assert err.max() <= fmt.delta + 1e-12

    def test_rejects_too_few_bits(self):
        with pytest.raises(QuantizationError):
            weight_format(np.array([100.0]), 2)


class TestQuantizedWeights:
    def test_restores_on_exit(self, fresh_lenet):
        original = fresh_lenet["conv1"].weight.copy()
        with QuantizedWeights(fresh_lenet, 4):
            assert not np.array_equal(fresh_lenet["conv1"].weight, original)
        np.testing.assert_array_equal(fresh_lenet["conv1"].weight, original)

    def test_restores_on_exception(self, fresh_lenet):
        original = fresh_lenet["conv1"].weight.copy()
        with pytest.raises(RuntimeError):
            with QuantizedWeights(fresh_lenet, 4):
                raise RuntimeError("boom")
        np.testing.assert_array_equal(fresh_lenet["conv1"].weight, original)

    def test_weights_are_quantized_inside(self, fresh_lenet):
        with QuantizedWeights(fresh_lenet, 6):
            w = fresh_lenet["conv1"].weight
            fmt = weight_format(w, 6)
            np.testing.assert_array_equal(fmt.quantize(w), w)

    def test_per_layer_bits(self, fresh_lenet):
        bits = {"conv1": 4, "conv2": 8, "conv3": 8, "fc": 8}
        with QuantizedWeights(fresh_lenet, bits):
            pass  # enters and exits cleanly

    def test_rejects_weightless_layer(self, fresh_lenet):
        with pytest.raises(QuantizationError):
            with QuantizedWeights(fresh_lenet, 8, layer_names=["pool1"]):
                pass

    def test_wide_weights_accuracy_unchanged(self, fresh_lenet, datasets):
        __, test = datasets
        base = top1_accuracy(fresh_lenet, test)
        with QuantizedWeights(fresh_lenet, 16):
            quant = top1_accuracy(fresh_lenet, test)
        assert quant == pytest.approx(base, abs=0.02)

    def test_tiny_weights_destroy_accuracy(self, fresh_lenet, datasets):
        __, test = datasets
        base = top1_accuracy(fresh_lenet, test)
        with QuantizedWeights(fresh_lenet, 2):
            quant = top1_accuracy(fresh_lenet, test)
        assert quant < base


class TestWeightSearch:
    def test_finds_passing_width(self, fresh_lenet, datasets):
        __, test = datasets
        base = top1_accuracy(fresh_lenet, test)
        result = search_weight_bitwidth(fresh_lenet, test, base, 0.05)
        assert result.accuracy >= base * 0.95
        assert 2 <= result.bits <= 16

    def test_network_restored_after_search(self, fresh_lenet, datasets):
        __, test = datasets
        original = fresh_lenet["fc"].weight.copy()
        base = top1_accuracy(fresh_lenet, test)
        search_weight_bitwidth(fresh_lenet, test, base, 0.05)
        np.testing.assert_array_equal(fresh_lenet["fc"].weight, original)

    def test_rejects_bad_bounds(self, fresh_lenet, datasets):
        __, test = datasets
        with pytest.raises(SearchError):
            search_weight_bitwidth(
                fresh_lenet, test, 1.0, 0.05, start_bits=2, min_bits=8
            )
