"""Unit tests for the energy / bandwidth / accelerator models."""

import pytest

from repro.errors import ReproError
from repro.hardware import (
    BitSerialAccelerator,
    MacEnergyModel,
    bandwidth_saving_percent,
    energy_saving_percent,
    input_traffic_bits,
    layer_traffic_bits,
    per_layer_table,
    uniform_weight_bits,
)
from repro.nn.statistics import LayerStats
from repro.quant import BitwidthAllocation


@pytest.fixture()
def stats():
    return {
        "a": LayerStats("a", num_inputs=100, num_macs=10_000, max_abs_input=50),
        "b": LayerStats("b", num_inputs=200, num_macs=2_000, max_abs_input=50),
    }


@pytest.fixture()
def stats_list(stats):
    return [stats["a"], stats["b"]]


class TestMacEnergyModel:
    def test_monotone_in_input_bits(self):
        model = MacEnergyModel()
        energies = [model.mac_energy_pj(b, 8) for b in range(1, 17)]
        assert all(e1 < e2 for e1, e2 in zip(energies, energies[1:]))

    def test_bilinear_partial_product_term(self):
        model = MacEnergyModel(e_static_pj=0, e_accumulate_pj_per_bit=0)
        assert model.mac_energy_pj(8, 8) == pytest.approx(
            4 * model.mac_energy_pj(4, 4)
        )

    def test_16x16_in_published_range(self):
        """Horowitz ISSCC'14: int MAC at 45nm ~ 0.5-1 pJ."""
        e = MacEnergyModel().mac_energy_pj(16, 16)
        assert 0.3 < e < 1.5

    def test_rejects_zero_width(self):
        with pytest.raises(ReproError):
            MacEnergyModel().mac_energy_pj(0, 8)

    def test_network_energy_sums_layers(self, stats):
        model = MacEnergyModel()
        alloc = BitwidthAllocation.from_bitwidths(
            list(stats.values()), {"a": 8, "b": 4}
        )
        wbits = uniform_weight_bits(alloc, 8)
        per_layer = model.layer_energy_pj(stats, alloc, wbits)
        assert model.network_energy_pj(stats, alloc, wbits) == pytest.approx(
            sum(per_layer.values())
        )

    def test_layer_energy_proportional_to_macs(self, stats):
        model = MacEnergyModel()
        alloc = BitwidthAllocation.uniform(list(stats.values()), 8)
        wbits = uniform_weight_bits(alloc, 8)
        per_layer = model.layer_energy_pj(stats, alloc, wbits)
        assert per_layer["a"] == pytest.approx(5 * per_layer["b"])


class TestEnergySaving:
    def test_percent(self):
        assert energy_saving_percent(200.0, 150.0) == pytest.approx(25.0)

    def test_rejects_zero_baseline(self):
        with pytest.raises(ReproError):
            energy_saving_percent(0.0, 1.0)


class TestPerLayerTable:
    def test_rows_per_layer_and_scheme(self, stats, stats_list):
        base = BitwidthAllocation.uniform(stats_list, 8)
        opt = BitwidthAllocation.from_bitwidths(stats_list, {"a": 6, "b": 10})
        wbits = uniform_weight_bits(base, 8)
        rows = per_layer_table(
            stats, {"baseline": base, "optimized": opt}, wbits
        )
        assert len(rows) == 2
        assert rows[0]["baseline_bits"] == 8
        assert rows[0]["optimized_bits"] == 6
        assert rows[0]["optimized_energy_pj"] < rows[0]["baseline_energy_pj"]

    def test_rejects_empty(self, stats):
        with pytest.raises(ReproError):
            per_layer_table(stats, {}, {})


class TestBandwidth:
    def test_traffic_is_input_weighted_bits(self, stats, stats_list):
        alloc = BitwidthAllocation.from_bitwidths(stats_list, {"a": 4, "b": 8})
        assert input_traffic_bits(stats, alloc) == 100 * 4 + 200 * 8

    def test_layer_traffic(self, stats, stats_list):
        alloc = BitwidthAllocation.uniform(stats_list, 8)
        traffic = layer_traffic_bits(stats, alloc)
        assert traffic == {"a": 800.0, "b": 1600.0}

    def test_saving_percent(self, stats, stats_list):
        base = BitwidthAllocation.uniform(stats_list, 8)
        opt = BitwidthAllocation.uniform(stats_list, 6)
        assert bandwidth_saving_percent(stats, base, opt) == pytest.approx(25.0)


class TestAccelerator:
    def test_cycles_scale_with_bits(self, stats, stats_list):
        acc = BitSerialAccelerator(lanes=100)
        a8 = acc.total_cycles(stats, BitwidthAllocation.uniform(stats_list, 8))
        a4 = acc.total_cycles(stats, BitwidthAllocation.uniform(stats_list, 4))
        assert a8 == pytest.approx(2 * a4)

    def test_speedup_vs_16bit_baseline(self, stats, stats_list):
        acc = BitSerialAccelerator(lanes=100, baseline_bits=16)
        alloc = BitwidthAllocation.uniform(stats_list, 8)
        assert acc.speedup(stats, alloc) == pytest.approx(2.0)

    def test_paper_scaling_claim(self, stats, stats_list):
        """Performance scales linearly with effective MAC bitwidth
        (paper Sec. VI): halving the effective bitwidth doubles speed."""
        acc = BitSerialAccelerator()
        full = BitwidthAllocation.uniform(stats_list, 12)
        rho = {name: float(s.num_macs) for name, s in stats.items()}
        half = BitwidthAllocation.uniform(stats_list, 6)
        ratio = acc.speedup(stats, half) / acc.speedup(stats, full)
        eff_ratio = full.effective_bitwidth(rho) / half.effective_bitwidth(rho)
        assert ratio == pytest.approx(eff_ratio)
