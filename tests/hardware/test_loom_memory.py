"""Tests for the Loom accelerator and memory-hierarchy energy models."""

import pytest

from repro.errors import ReproError
from repro.hardware import (
    LoomAccelerator,
    MacEnergyModel,
    MemoryEnergyModel,
    system_energy,
)
from repro.nn.statistics import LayerStats
from repro.quant import BitwidthAllocation


@pytest.fixture()
def stats():
    return {
        "a": LayerStats("a", num_inputs=100, num_macs=10_000, max_abs_input=50),
        "b": LayerStats("b", num_inputs=200, num_macs=2_000, max_abs_input=50),
    }


@pytest.fixture()
def stats_list(stats):
    return [stats["a"], stats["b"]]


class TestLoom:
    def test_cycles_scale_with_both_widths(self, stats, stats_list):
        loom = LoomAccelerator(lanes=100)
        alloc8 = BitwidthAllocation.uniform(stats_list, 8)
        w8 = {"a": 8, "b": 8}
        w4 = {"a": 4, "b": 4}
        assert loom.total_cycles(stats, alloc8, w8) == pytest.approx(
            2 * loom.total_cycles(stats, alloc8, w4)
        )

    def test_speedup_vs_16x16(self, stats, stats_list):
        loom = LoomAccelerator()
        alloc = BitwidthAllocation.uniform(stats_list, 8)
        w = {"a": 8, "b": 8}
        assert loom.speedup(stats, alloc, w) == pytest.approx(4.0)

    def test_loom_beats_stripes_when_weights_narrow(self, stats, stats_list):
        """Loom exploits weight precision that Stripes cannot."""
        from repro.hardware import BitSerialAccelerator

        alloc = BitwidthAllocation.uniform(stats_list, 8)
        stripes = BitSerialAccelerator()
        loom = LoomAccelerator()
        narrow_w = {"a": 4, "b": 4}
        assert loom.speedup(stats, alloc, narrow_w) > stripes.speedup(
            stats, alloc
        )

    def test_rejects_bad_weight_width(self, stats, stats_list):
        loom = LoomAccelerator()
        alloc = BitwidthAllocation.uniform(stats_list, 8)
        with pytest.raises(ReproError):
            loom.total_cycles(stats, alloc, {"a": 0, "b": 8})


class TestMemoryModel:
    def test_dram_fraction_raises_cost(self, stats, stats_list):
        alloc = BitwidthAllocation.uniform(stats_list, 8)
        cheap = MemoryEnergyModel(dram_activation_fraction=0.0)
        pricey = MemoryEnergyModel(dram_activation_fraction=1.0)
        assert pricey.activation_energy_pj(stats, alloc) > (
            cheap.activation_energy_pj(stats, alloc)
        )

    def test_activation_energy_proportional_to_bits(self, stats, stats_list):
        model = MemoryEnergyModel()
        a8 = model.activation_energy_pj(
            stats, BitwidthAllocation.uniform(stats_list, 8)
        )
        a4 = model.activation_energy_pj(
            stats, BitwidthAllocation.uniform(stats_list, 4)
        )
        assert a8 == pytest.approx(2 * a4)

    def test_weight_energy(self):
        model = MemoryEnergyModel(sram_pj_per_bit=0.1, dram_pj_per_bit=10.0)
        params = {"a": 1000}
        assert model.weight_energy_pj(params, {"a": 8}) == pytest.approx(800.0)
        assert model.weight_energy_pj(
            params, {"a": 8}, from_dram=True
        ) == pytest.approx(80_000.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ReproError):
            MemoryEnergyModel(dram_activation_fraction=1.5)


class TestSystemEnergy:
    def test_breakdown_sums(self, stats, stats_list):
        alloc = BitwidthAllocation.uniform(stats_list, 8)
        w = {"a": 8, "b": 8}
        params = {"a": 900, "b": 100}
        breakdown = system_energy(stats, alloc, w, params)
        assert breakdown.total_pj == pytest.approx(
            breakdown.mac_pj + breakdown.activation_pj + breakdown.weight_pj
        )
        assert set(breakdown.as_dict()) == {
            "mac_pj",
            "activation_pj",
            "weight_pj",
            "total_pj",
        }

    def test_all_components_positive(self, stats, stats_list):
        alloc = BitwidthAllocation.uniform(stats_list, 8)
        breakdown = system_energy(
            stats, alloc, {"a": 8, "b": 8}, {"a": 10, "b": 10}
        )
        assert breakdown.mac_pj > 0
        assert breakdown.activation_pj > 0
        assert breakdown.weight_pj > 0
