"""Cross-cutting property-based tests on core invariants.

These use hypothesis to exercise invariants that individual unit tests
only sample: linearity of the conv substrate, monotonicity of the
error model, and bounds on cost accounting.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import deltas_for_sigma
from repro.analysis.profiler import LayerErrorProfile
from repro.nn import NetworkBuilder
from repro.nn.statistics import LayerStats
from repro.quant import BitwidthAllocation


def linear_network(seed=0):
    """conv -> conv -> gap -> dense with no nonlinearity and no bias."""
    b = NetworkBuilder("linear", (2, 8, 8), seed=seed)
    b.conv("c1", 4, 3, relu=False, bias=False)
    b.conv("c2", 4, 3, relu=False, bias=False)
    b.global_pool("gap")
    net = b.network
    # dense without bias for exact homogeneity
    from repro.nn.layers import Dense

    rng = np.random.default_rng(seed + 1)
    net.add(Dense("fc", ["gap"], rng.normal(size=(3, 4))))
    return b.build()


class TestSubstrateLinearity:
    @settings(max_examples=20, deadline=None)
    @given(scale=st.floats(min_value=0.1, max_value=100), seed=st.integers(0, 50))
    def test_forward_is_homogeneous(self, scale, seed):
        """PROPERTY: a bias-free, activation-free CNN is linear, so
        f(a*x) = a*f(x).  Validates conv/pool/dense arithmetic at once."""
        net = linear_network()
        x = np.random.default_rng(seed).normal(size=(2, 2, 8, 8))
        base = net.forward(x)
        scaled = net.forward(scale * x)
        np.testing.assert_allclose(scaled, scale * base, rtol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 50))
    def test_forward_is_additive(self, seed):
        """PROPERTY: f(x + y) = f(x) + f(y) for the linear network."""
        net = linear_network()
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 2, 8, 8))
        y = rng.normal(size=(1, 2, 8, 8))
        np.testing.assert_allclose(
            net.forward(x + y), net.forward(x) + net.forward(y), rtol=1e-9
        )


class TestQuantizationTapProperties:
    @settings(max_examples=30, deadline=None)
    @given(bits=st.integers(3, 12), seed=st.integers(0, 100))
    def test_tap_idempotent(self, bits, seed):
        """PROPERTY: quantizing a quantized tensor changes nothing."""
        stats = [LayerStats("a", 10, 100, max_abs_input=30.0)]
        tap = BitwidthAllocation.uniform(stats, bits).taps()["a"]
        x = np.random.default_rng(seed).normal(size=200) * 20
        once = tap(x)
        np.testing.assert_array_equal(tap(once), once)

    @settings(max_examples=30, deadline=None)
    @given(
        bits_small=st.integers(2, 8),
        extra=st.integers(1, 8),
        seed=st.integers(0, 100),
    )
    def test_more_bits_less_error(self, bits_small, extra, seed):
        """PROPERTY: widening the format never increases the error."""
        stats = [LayerStats("a", 10, 100, max_abs_input=30.0)]
        small = BitwidthAllocation.uniform(stats, bits_small).taps()["a"]
        large = BitwidthAllocation.uniform(stats, bits_small + extra).taps()["a"]
        x = np.random.default_rng(seed).uniform(-30, 30, size=500)
        err_small = np.abs(small(x) - x).max()
        err_large = np.abs(large(x) - x).max()
        assert err_large <= err_small + 1e-12


class TestErrorModelMonotonicity:
    def _profile(self, lam, theta):
        grid = np.geomspace(0.01, 1.0, 5)
        return LayerErrorProfile(
            name="p",
            lam=lam,
            theta=theta,
            r_squared=1.0,
            max_relative_error=0.0,
            deltas=grid,
            sigmas=(grid - theta) / lam,
        )

    @settings(max_examples=30, deadline=None)
    @given(
        lam=st.floats(min_value=1.0, max_value=500.0),
        theta=st.floats(min_value=-0.01, max_value=0.1),
        sigma_low=st.floats(min_value=0.01, max_value=1.0),
        factor=st.floats(min_value=1.01, max_value=10.0),
    )
    def test_deltas_monotone_in_sigma(self, lam, theta, sigma_low, factor):
        """PROPERTY: a larger output budget never shrinks any Delta."""
        profiles = {"p": self._profile(lam, theta)}
        low = deltas_for_sigma(profiles, sigma_low)["p"]
        high = deltas_for_sigma(profiles, sigma_low * factor)["p"]
        assert high >= low


class TestEffectiveBitwidthBounds:
    @settings(max_examples=30, deadline=None)
    @given(
        b1=st.integers(2, 16),
        b2=st.integers(2, 16),
        w1=st.floats(min_value=0.1, max_value=1000),
        w2=st.floats(min_value=0.1, max_value=1000),
    )
    def test_weighted_mean_between_extremes(self, b1, b2, w1, w2):
        """PROPERTY: effective bitwidth lies between the min and max
        per-layer widths for any positive weighting."""
        stats = [
            LayerStats("a", 10, 100, max_abs_input=10.0),
            LayerStats("b", 20, 200, max_abs_input=10.0),
        ]
        alloc = BitwidthAllocation.from_bitwidths(stats, {"a": b1, "b": b2})
        eff = alloc.effective_bitwidth({"a": w1, "b": w2})
        widths = [alloc["a"].total_bits, alloc["b"].total_bits]
        assert min(widths) - 1e-9 <= eff <= max(widths) + 1e-9
