"""Structural checks: each replica preserves its original's topology."""

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import validate_dag
from repro.nn.layers import (
    Add,
    Concat,
    Conv2D,
    Dense,
    GlobalAvgPool,
    LRN,
    MaxPool2D,
)


def layers_of_type(net, cls):
    return [l for l in net.layers if isinstance(l, cls)]


class TestAlexNetStructure:
    def test_grouped_convs(self):
        net = build_model("alexnet")
        assert net["conv2"].groups == 2
        assert net["conv4"].groups == 2
        assert net["conv5"].groups == 2
        assert net["conv1"].groups == 1

    def test_lrn_after_first_two_convs(self):
        net = build_model("alexnet")
        assert len(layers_of_type(net, LRN)) == 2

    def test_three_fully_connected(self):
        net = build_model("alexnet")
        dense = layers_of_type(net, Dense)
        assert [d.name for d in dense] == ["fc6", "fc7", "fc8"]

    def test_fc_not_analyzed(self):
        net = build_model("alexnet")
        assert "fc6" not in net.analyzed_layer_names


class TestVGGStructure:
    def test_five_pool_blocks(self):
        net = build_model("vgg19")
        assert len(layers_of_type(net, MaxPool2D)) == 5

    def test_all_convs_are_3x3(self):
        net = build_model("vgg19")
        for conv in layers_of_type(net, Conv2D):
            assert conv.kernel == 3

    def test_spatial_collapse_to_1x1(self):
        net = build_model("vgg19")
        assert net["pool5"].output_shape[1:] == (1, 1)


class TestNiNStructure:
    def test_mlpconv_blocks_use_1x1(self):
        net = build_model("nin")
        convs = layers_of_type(net, Conv2D)
        one_by_one = [c for c in convs if c.kernel == 1]
        assert len(one_by_one) == 8  # 2 per block x 4 blocks

    def test_no_analyzed_dense(self):
        net = build_model("nin")
        assert all(
            not isinstance(net[n], Dense) for n in net.analyzed_layer_names
        )


class TestGoogleNetStructure:
    def test_nine_inception_modules(self):
        net = build_model("googlenet")
        concats = layers_of_type(net, Concat)
        assert len(concats) == 9

    def test_each_module_concatenates_four_branches(self):
        net = build_model("googlenet")
        for concat in layers_of_type(net, Concat):
            assert len(concat.inputs) == 4


class TestResNetStructure:
    @pytest.mark.parametrize(
        "name,blocks", [("resnet50", 16), ("resnet152", 50)]
    )
    def test_residual_add_count(self, name, blocks):
        net = build_model(name)
        assert len(layers_of_type(net, Add)) == blocks

    def test_four_projection_shortcuts(self):
        net = build_model("resnet50")
        projections = [
            l for l in net.layers if l.name.endswith("_proj")
        ]
        assert len(projections) == 4

    def test_bottleneck_kernel_pattern(self):
        """Each block is 1x1 -> 3x3 -> 1x1."""
        net = build_model("resnet50")
        assert net["s2b1_a"].kernel == 1
        assert net["s2b1_b"].kernel == 3
        assert net["s2b1_c"].kernel == 1

    def test_head_dense_is_analyzed(self):
        net = build_model("resnet50")
        assert "fc" in net.analyzed_layer_names


class TestSqueezeNetStructure:
    def test_eight_fire_modules(self):
        net = build_model("squeezenet")
        squeezes = [l for l in net.layers if l.name.endswith("_squeeze")]
        assert len(squeezes) == 8

    def test_fire_expands_concat_two_branches(self):
        net = build_model("squeezenet")
        for concat in layers_of_type(net, Concat):
            assert len(concat.inputs) == 2

    def test_squeeze_narrower_than_expand(self):
        net = build_model("squeezenet")
        squeeze = net["fire2_squeeze"]
        expand = net["fire2_e1x1"]
        assert squeeze.out_channels < 2 * expand.out_channels


class TestMobileNetStructure:
    def test_thirteen_depthwise_blocks(self):
        net = build_model("mobilenet")
        depthwise = [
            l
            for l in net.layers
            if isinstance(l, Conv2D) and l.groups > 1
        ]
        assert len(depthwise) == 13

    def test_depthwise_one_kernel_per_channel(self):
        net = build_model("mobilenet")
        dw = net["dw3"]
        assert dw.groups == dw.weight.shape[0]
        assert dw.weight.shape[1] == 1

    def test_pointwise_are_1x1(self):
        net = build_model("mobilenet")
        for i in range(1, 14):
            assert net[f"pw{i}"].kernel == 1


class TestAllModelsShared:
    @pytest.mark.parametrize(
        "name",
        ["alexnet", "nin", "vgg19", "squeezenet", "mobilenet"],
    )
    def test_valid_dag_and_global_head(self, name):
        net = build_model(name)
        validate_dag(net)
        assert isinstance(net[net.output_name], Dense)

    @pytest.mark.parametrize("name", ["alexnet", "nin", "mobilenet"])
    def test_analyzed_layers_in_topological_order(self, name):
        net = build_model(name)
        order = {l.name: i for i, l in enumerate(net.layers)}
        indices = [order[n] for n in net.analyzed_layer_names]
        assert indices == sorted(indices)
