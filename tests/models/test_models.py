"""Tests for the model zoo, calibration, pretraining, and evaluation."""

import numpy as np
import pytest

from repro.data import SyntheticImageNet
from repro.errors import ModelError
from repro.models import (
    MODEL_NAMES,
    PAPER_LAYER_COUNTS,
    build_model,
    fit_classifier_head,
    lsuv_calibrate,
    predict,
    pretrain,
    relative_drop,
    top1_accuracy,
)
from repro.nn.layers import Conv2D, Dense


class TestZooRegistry:
    def test_unknown_model_rejected(self):
        with pytest.raises(ModelError):
            build_model("resnet9000")

    def test_all_paper_models_listed(self):
        assert len(MODEL_NAMES) == 8

    @pytest.mark.parametrize("name", ["lenet", "alexnet", "nin"])
    def test_build_is_deterministic(self, name):
        a = build_model(name, seed=5)
        b = build_model(name, seed=5)
        first_conv = a.analyzed_layer_names[0]
        np.testing.assert_array_equal(a[first_conv].weight, b[first_conv].weight)

    @pytest.mark.parametrize(
        "name", ["alexnet", "nin", "vgg19", "squeezenet", "mobilenet"]
    )
    def test_analyzed_layer_count_matches_paper(self, name):
        net = build_model(name)
        assert len(net.analyzed_layer_names) == PAPER_LAYER_COUNTS[name]

    @pytest.mark.slow
    @pytest.mark.parametrize("name", ["googlenet", "resnet50", "resnet152"])
    def test_deep_model_layer_counts(self, name):
        net = build_model(name)
        assert len(net.analyzed_layer_names) == PAPER_LAYER_COUNTS[name]

    @pytest.mark.parametrize("name", ["alexnet", "nin", "mobilenet"])
    def test_forward_shape(self, name):
        net = build_model(name, num_classes=8)
        x = np.random.default_rng(0).normal(size=(2, 3, 32, 32)) * 50
        assert net.forward(x).shape == (2, 8)

    def test_output_layer_is_dense_everywhere(self):
        for name in MODEL_NAMES + ["lenet"]:
            net = build_model(name)
            assert isinstance(net[net.output_name], Dense), name


class TestCalibration:
    def test_output_std_near_target(self):
        net = build_model("lenet", seed=0)
        images = SyntheticImageNet(seed=0).sample(16).images
        lsuv_calibrate(net, images, target_std=40.0)
        cache = net.run_all(images)
        for name in ["conv1", "conv2", "conv3"]:
            assert cache[name].std() == pytest.approx(40.0, rel=0.05)

    def test_returns_scale_factors_for_weighted_layers(self):
        net = build_model("lenet", seed=0)
        images = SyntheticImageNet(seed=0).sample(8).images
        scales = lsuv_calibrate(net, images)
        weighted = [
            layer.name
            for layer in net.layers
            if isinstance(layer, (Conv2D, Dense))
        ]
        assert set(scales) == set(weighted)

    def test_rejects_bad_target(self):
        net = build_model("lenet")
        with pytest.raises(ModelError):
            lsuv_calibrate(net, np.zeros((2, 3, 32, 32)), target_std=-1)


class TestPretrain:
    def test_accuracy_above_chance(self, lenet, datasets):
        __, test = datasets
        acc = top1_accuracy(lenet, test)
        assert acc > 3.0 / test.num_classes

    def test_fit_head_beats_random_head(self, source, datasets):
        train, test = datasets
        net = build_model("lenet", num_classes=source.num_classes, seed=99)
        lsuv_calibrate(net, train.images[:32])
        random_acc = top1_accuracy(net, test)
        fit_classifier_head(net, train)
        fitted_acc = top1_accuracy(net, test)
        assert fitted_acc > random_acc

    def test_pretrain_reports_both_accuracies(self, source, datasets):
        train, test = datasets
        net = build_model("lenet", num_classes=source.num_classes, seed=7)
        info = pretrain(net, train, test)
        assert set(info) == {"train_accuracy", "test_accuracy"}
        assert info["train_accuracy"] >= info["test_accuracy"] - 0.15

    def test_head_class_count_must_match(self, source, datasets):
        train, __ = datasets
        net = build_model("lenet", num_classes=source.num_classes + 1, seed=1)
        with pytest.raises(ModelError):
            fit_classifier_head(net, train)


class TestEvaluate:
    def test_predict_shape(self, lenet, images):
        assert predict(lenet, images).shape == (images.shape[0],)

    def test_accuracy_bounds(self, lenet, datasets):
        __, test = datasets
        acc = top1_accuracy(lenet, test)
        assert 0.0 <= acc <= 1.0

    def test_batching_invariance(self, lenet, datasets):
        __, test = datasets
        a = top1_accuracy(lenet, test, batch_size=128)
        b = top1_accuracy(lenet, test, batch_size=17)
        assert a == b

    def test_relative_drop(self):
        assert relative_drop(0.8, 0.72) == pytest.approx(0.1)
        assert relative_drop(0.0, 0.0) == 0.0
