"""Tests for model checkpoint save/load."""

import numpy as np
import pytest

from repro.data import SyntheticImageNet
from repro.errors import ModelError
from repro.models import (
    build_model,
    cached_pretrained_model,
    load_checkpoint,
    save_checkpoint,
)


class TestSaveLoad:
    def test_roundtrip_restores_outputs(self, fresh_lenet, images, tmp_path):
        path = tmp_path / "lenet.npz"
        expected = fresh_lenet.forward(images)
        save_checkpoint(fresh_lenet, path)

        other = build_model("lenet", num_classes=8, seed=999)
        assert not np.allclose(other.forward(images), expected)
        manifest = load_checkpoint(other, path)
        np.testing.assert_allclose(other.forward(images), expected, rtol=1e-12)
        assert manifest["network"] == "lenet"

    def test_rejects_missing_file(self, fresh_lenet, tmp_path):
        with pytest.raises(ModelError):
            load_checkpoint(fresh_lenet, tmp_path / "nope.npz")

    def test_rejects_wrong_architecture(self, fresh_lenet, tmp_path):
        path = tmp_path / "lenet.npz"
        save_checkpoint(fresh_lenet, path)
        other = build_model("alexnet", num_classes=8)
        with pytest.raises(ModelError):
            load_checkpoint(other, path)

    def test_rejects_non_checkpoint_npz(self, fresh_lenet, tmp_path):
        path = tmp_path / "garbage.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ModelError):
            load_checkpoint(fresh_lenet, path)

    def test_manifest_contents(self, fresh_lenet, tmp_path):
        path = tmp_path / "lenet.npz"
        save_checkpoint(fresh_lenet, path)
        manifest = load_checkpoint(fresh_lenet, path)
        assert manifest["parameters"] == fresh_lenet.num_parameters()
        assert manifest["input_shape"] == [3, 32, 32]


class TestCachedPretrainedModel:
    def test_second_call_loads_from_cache(self, tmp_path):
        source = SyntheticImageNet(num_classes=8, seed=55)
        net1, __, test, info1 = cached_pretrained_model(
            "lenet", tmp_path, source=source, train_count=96, test_count=48,
            seed=55,
        )
        assert (tmp_path / "lenet-seed55.npz").exists()
        net2, __, __, info2 = cached_pretrained_model(
            "lenet", tmp_path, source=source, train_count=96, test_count=48,
            seed=55,
        )
        np.testing.assert_array_equal(
            net1["fc"].weight, net2["fc"].weight
        )
        assert info2["test_accuracy"] == pytest.approx(
            info1["test_accuracy"]
        )
