"""Benchmark regression ledger: extraction, history, detection, CLI."""

import json

import pytest

from repro.bench.ledger import (
    DEFAULT_THRESHOLDS,
    LEDGER_SCHEMA_VERSION,
    BenchLedger,
    detect_regressions,
    entry_from_payload,
    extract_metrics,
    metric_direction,
    metric_family,
    render_report,
)
from repro.cli import main


def _payload(benchmark="profiler", wall=1.0, bytes_moved=1000,
             speedup=2.0, config_hash="cfg-a", git_sha="abc123"):
    return {
        "benchmark": benchmark,
        "manifest": {
            "config_hash": config_hash,
            "git_sha": git_sha,
            "created_at": "2026-08-07T00:00:00+00:00",
        },
        "results": {
            "engine_seconds": wall,
            "traffic": {"quantized_bytes": bytes_moved},
            "speedup": speedup,
            "num_layers": 8,  # not a tracked metric family
        },
    }


class TestExtractMetrics:
    def test_flattens_tracked_leaves_only(self):
        metrics = extract_metrics(_payload())
        assert metrics == {
            "results.engine_seconds": 1.0,
            "results.traffic.quantized_bytes": 1000.0,
            "results.speedup": 2.0,
        }

    def test_lists_index_into_paths(self):
        metrics = extract_metrics(
            {"models": [{"seconds": 1.5}, {"seconds": 2.5}]}
        )
        assert metrics == {
            "models.0.seconds": 1.5,
            "models.1.seconds": 2.5,
        }

    def test_manifest_and_config_numbers_are_excluded(self):
        metrics = extract_metrics(
            {
                "manifest": {"elapsed_seconds": 9.0},
                "config": {"timeout_seconds": 30.0},
                "wall_threshold": 0.25,
                "run_seconds": 3.0,
            }
        )
        assert metrics == {"run_seconds": 3.0}

    def test_bools_and_non_finite_are_dropped(self):
        metrics = extract_metrics(
            {
                "identical_bytes": True,
                "nan_seconds": float("nan"),
                "inf_seconds": float("inf"),
            }
        )
        assert metrics == {}

    def test_families_and_directions(self):
        assert metric_family("a.engine_seconds") == "wall"
        assert metric_family("a.bytes_moved") == "traffic"
        assert metric_family("a.speedup") == "throughput"
        assert metric_family("a.num_layers") is None
        assert metric_direction("a.latency_p50") == "higher_is_worse"
        assert metric_direction("a.qps") == "lower_is_worse"


class TestLedgerPersistence:
    def test_record_and_reload_round_trip(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = BenchLedger(path)
        entry = ledger.record(_payload(), source="BENCH_profiler.json")
        ledger.save()
        assert entry.series_key == ("profiler", "cfg-a")
        assert entry.git_sha == "abc123"

        reloaded = BenchLedger(path)
        assert len(reloaded.entries) == 1
        again = reloaded.entries[0]
        assert again.as_dict() == entry.as_dict()
        assert json.loads(path.read_text())["schema_version"] == (
            LEDGER_SCHEMA_VERSION
        )

    def test_unknown_schema_refused(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text(json.dumps({"schema_version": 99, "entries": []}))
        with pytest.raises(ValueError, match="schema"):
            BenchLedger(path)

    def test_corrupt_ledger_refused(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="unreadable"):
            BenchLedger(path)

    def test_payload_without_manifest_still_records(self, tmp_path):
        entry = entry_from_payload(
            {"total_seconds": 2.0}, source="BENCH_legacy.json"
        )
        assert entry.benchmark == "BENCH_legacy"
        assert entry.config_hash == ""
        assert entry.metrics == {"total_seconds": 2.0}

    def test_series_split_by_config_hash(self, tmp_path):
        ledger = BenchLedger(tmp_path / "ledger.json")
        ledger.record(_payload(config_hash="cfg-a"))
        ledger.record(_payload(config_hash="cfg-b"))
        assert set(ledger.series()) == {
            ("profiler", "cfg-a"),
            ("profiler", "cfg-b"),
        }


class TestDetectRegressions:
    def test_flags_synthetic_wall_regression(self, tmp_path):
        ledger = BenchLedger(tmp_path / "ledger.json")
        ledger.record(_payload(wall=1.0), source="baseline")
        # synthetic injected regression: 60% slower than baseline
        ledger.record(_payload(wall=1.6, git_sha="def456"), source="new")
        findings = detect_regressions(ledger)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.metric == "results.engine_seconds"
        assert finding.family == "wall"
        assert finding.regression == pytest.approx(0.6)
        assert finding.baseline_sha == "abc123"
        assert finding.current_sha == "def456"
        assert "regressed" in finding.describe()

    def test_within_threshold_is_quiet(self, tmp_path):
        ledger = BenchLedger(tmp_path / "ledger.json")
        ledger.record(_payload(wall=1.0))
        ledger.record(_payload(wall=1.2))  # +20% < 25% default
        assert detect_regressions(ledger) == []

    def test_improvements_never_flag(self, tmp_path):
        ledger = BenchLedger(tmp_path / "ledger.json")
        ledger.record(_payload(wall=2.0, bytes_moved=2000, speedup=1.0))
        ledger.record(_payload(wall=1.0, bytes_moved=1000, speedup=4.0))
        assert detect_regressions(ledger) == []

    def test_lower_speedup_is_a_regression(self, tmp_path):
        ledger = BenchLedger(tmp_path / "ledger.json")
        ledger.record(_payload(speedup=4.0))
        ledger.record(_payload(speedup=2.0))
        findings = detect_regressions(ledger)
        assert [f.metric for f in findings] == ["results.speedup"]
        assert findings[0].family == "throughput"
        assert findings[0].regression == pytest.approx(0.5)

    def test_traffic_uses_its_own_threshold(self, tmp_path):
        ledger = BenchLedger(tmp_path / "ledger.json")
        ledger.record(_payload(bytes_moved=1000))
        ledger.record(_payload(bytes_moved=1150))  # +15% > 10% traffic
        findings = detect_regressions(ledger)
        assert [f.metric for f in findings] == [
            "results.traffic.quantized_bytes"
        ]
        # but a loosened threshold silences it
        assert detect_regressions(ledger, thresholds={"traffic": 0.5}) == []

    def test_micro_timings_are_ignored(self, tmp_path):
        ledger = BenchLedger(tmp_path / "ledger.json")
        ledger.record(_payload(wall=0.001))
        ledger.record(_payload(wall=0.004))  # 4x slower but micro
        assert detect_regressions(ledger, min_wall_seconds=0.05) == []
        assert detect_regressions(ledger, min_wall_seconds=0.0005)

    def test_different_configs_never_compare(self, tmp_path):
        ledger = BenchLedger(tmp_path / "ledger.json")
        ledger.record(_payload(wall=1.0, config_hash="cfg-a"))
        ledger.record(_payload(wall=9.0, config_hash="cfg-b"))
        assert detect_regressions(ledger) == []

    def test_worst_regression_sorts_first(self, tmp_path):
        ledger = BenchLedger(tmp_path / "ledger.json")
        ledger.record(_payload(wall=1.0, bytes_moved=1000))
        ledger.record(_payload(wall=1.5, bytes_moved=3000))
        findings = detect_regressions(ledger)
        assert [f.metric for f in findings] == [
            "results.traffic.quantized_bytes",  # +200%
            "results.engine_seconds",  # +50%
        ]

    def test_report_lists_series_and_findings(self, tmp_path):
        ledger = BenchLedger(tmp_path / "ledger.json")
        ledger.record(_payload(wall=1.0))
        ledger.record(_payload(wall=2.0))
        lines = render_report(ledger, detect_regressions(ledger))
        text = "\n".join(lines)
        assert "2 entries across 1 series" in text
        assert "1 regression(s) flagged" in text
        lines = render_report(BenchLedger(tmp_path / "x.json"), [])
        assert "no regressions flagged" in "\n".join(lines)


class TestBenchCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_record_then_report_flags_injected_regression(
        self, tmp_path, capsys
    ):
        ledger = str(tmp_path / "ledger.json")
        baseline = self._write(tmp_path, "BENCH_a.json", _payload(wall=1.0))
        slower = self._write(
            tmp_path, "BENCH_b.json", _payload(wall=1.9, git_sha="def456")
        )
        assert main(["bench", "record", baseline, "--ledger", ledger]) == 0
        assert main(["bench", "record", slower, "--ledger", ledger]) == 0
        capsys.readouterr()

        # default report is non-blocking: prints the finding, exits 0
        assert main(["bench", "report", "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "1 regression(s) flagged" in out
        assert "results.engine_seconds regressed +90.0%" in out

        # --strict turns the same finding into a failing exit
        assert (
            main(["bench", "report", "--ledger", ledger, "--strict"]) == 1
        )

    def test_report_respects_threshold_flags(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.json")
        for wall, name in ((1.0, "BENCH_a.json"), (1.9, "BENCH_b.json")):
            path = self._write(tmp_path, name, _payload(wall=wall))
            assert main(["bench", "record", path, "--ledger", ledger]) == 0
        code = main(
            [
                "bench", "report", "--ledger", ledger,
                "--wall-threshold", "2.0", "--strict",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "no regressions flagged" in out

    def test_record_without_payloads_errors(self, tmp_path, capsys):
        code = main(
            ["bench", "record", "--ledger", str(tmp_path / "l.json")]
        )
        assert code == 1
        assert "no payload files" in capsys.readouterr().out

    def test_record_unreadable_payload_errors(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{broken")
        code = main(
            ["bench", "record", str(bad), "--ledger",
             str(tmp_path / "l.json")]
        )
        assert code == 1
        assert "cannot read" in capsys.readouterr().out

    def test_default_thresholds_reach_the_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "report"])
        assert args.wall_threshold == DEFAULT_THRESHOLDS["wall"]
        assert args.traffic_threshold == DEFAULT_THRESHOLDS["traffic"]
        assert args.throughput_threshold == (
            DEFAULT_THRESHOLDS["throughput"]
        )
        assert args.strict is False
