"""Slow integration tests on the deep zoo models.

These verify the headline capability — layer-level analysis of very
deep networks — on the actual deep replicas.  Marked ``slow``; run with
``pytest -m slow``.  A fast smoke subset runs by default.
"""

import numpy as np
import pytest

from repro.analysis import ErrorProfiler
from repro.config import ProfileSettings
from repro.data import SyntheticImageNet
from repro.models import PAPER_LAYER_COUNTS, build_model, pretrained_model
from repro.nn import replay_cost_fraction, validate_dag


class TestDeepModelSmoke:
    """Fast checks on the deep architectures (no pretraining)."""

    @pytest.mark.parametrize("name", ["googlenet", "resnet50"])
    def test_forward_and_dag(self, name):
        net = build_model(name, num_classes=8)
        validate_dag(net)
        x = np.random.default_rng(0).normal(size=(2, 3, 32, 32)) * 50
        out = net.forward(x)
        assert out.shape == (2, 8)
        assert np.isfinite(out).all()

    def test_partial_replay_cheap_in_deep_nets(self):
        """The profiler's enabler: replaying from a deep layer costs a
        tiny fraction of a full pass in a 54-layer network."""
        net = build_model("resnet50")
        last_conv = net.analyzed_layer_names[-2]  # before the fc
        assert replay_cost_fraction(net, last_conv) < 0.05


@pytest.mark.slow
class TestResNet152EndToEnd:
    """The paper's flagship depth: 156 analyzed layers."""

    def test_full_pipeline_on_resnet152(self):
        source = SyntheticImageNet(num_classes=8, seed=9)
        net, train, test, info = pretrained_model(
            "resnet152", source=source, train_count=192, test_count=96, seed=9
        )
        assert len(net.analyzed_layer_names) == PAPER_LAYER_COUNTS["resnet152"]
        assert info["test_accuracy"] > 0.4

        # Profile a subset of layers spanning the depth.
        layers = net.analyzed_layer_names
        sample = [layers[0], layers[40], layers[90], layers[150], layers[-1]]
        profiler = ErrorProfiler(
            net,
            test.images,
            ProfileSettings(num_images=8, num_delta_points=6, num_repeats=1),
        )
        report = profiler.profile(sample)
        for profile in report:
            assert profile.lam > 0
            assert profile.r_squared > 0.7
