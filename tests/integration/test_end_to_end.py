"""Integration tests: the complete paper pipeline on small models.

These exercise the full chain — pretrain, statistics, profiling, sigma
search, xi optimization, bitwidth translation, true-quantization
validation, baseline comparison — and assert the paper's headline
properties hold on this substrate.
"""

import numpy as np
import pytest

from repro import PrecisionOptimizer
from repro.baselines import smallest_uniform_bitwidth, stripes_search
from repro.config import ProfileSettings, SearchSettings
from repro.data import SyntheticImageNet
from repro.models import pretrained_model, top1_accuracy
from repro.nn import ordered_stats
from repro.optimize import input_bandwidth_objective, mac_energy_objective
from repro.hardware import MacEnergyModel, uniform_weight_bits


@pytest.fixture(scope="module")
def flow(lenet, datasets):
    """A fully-run optimizer with both objectives, shared by the tests."""
    __, test = datasets
    optimizer = PrecisionOptimizer(
        lenet,
        test,
        profile_settings=ProfileSettings(num_images=20, num_delta_points=8),
        search_settings=SearchSettings(tolerance=0.02),
    )
    out_input = optimizer.optimize("input", accuracy_drop=0.05)
    out_mac = optimizer.optimize("mac", accuracy_drop=0.05)
    return optimizer, out_input, out_mac


class TestAccuracyGuarantee:
    def test_no_accuracy_criterion_violated(self, flow):
        """Paper Sec. VI: 'No accuracy criterion was violated.'"""
        __, out_input, out_mac = flow
        for outcome in (out_input, out_mac):
            assert outcome.validated_accuracy >= (
                outcome.sigma_result.target_accuracy
            )

    def test_validated_on_true_quantization(self, flow, lenet, datasets):
        """The validation really runs fixed-point rounding taps."""
        optimizer, out_input, __ = flow
        __, test = datasets
        acc = top1_accuracy(
            lenet, test, taps=out_input.result.allocation.taps(lenet)
        )
        assert acc == pytest.approx(out_input.validated_accuracy)


class TestObjectivesDiffer:
    def test_each_objective_wins_its_own_metric(self, flow):
        """Optimized-for-X must be at least as good on X as the other,
        in *continuous* Delta terms at a common sigma budget.  (The
        pipeline's validation back-off can give the two outcomes
        different budgets, and ceil() discretization can flip discrete
        costs by a bit, so the comparison is made on fresh allocations
        at one sigma.)"""
        from repro.optimize import allocate_optimized

        optimizer, out_input, __ = flow
        stats = optimizer.stats()
        rho_in = input_bandwidth_objective(stats).rho
        rho_mac = mac_energy_objective(stats).rho
        sigma = out_input.sigma_result.sigma
        profiles = optimizer.profiles_for_drop(0.05)
        names = optimizer.layer_names
        res_in = allocate_optimized(
            "input", profiles, stats, sigma, ordered_names=names
        )
        res_mac = allocate_optimized(
            "mac", profiles, stats, sigma, ordered_names=names
        )

        def continuous(result, rho):
            return sum(
                rho[name] * -np.log2(result.deltas[name]) for name in rho
            )

        assert continuous(res_in, rho_in) <= continuous(res_mac, rho_in) + 1e-9
        assert continuous(res_mac, rho_mac) <= (
            continuous(res_in, rho_mac) + 1e-9
        )


class TestAgainstBaselines:
    def test_analytic_is_competitive_with_uniform(self, flow, lenet, datasets):
        """The optimized allocation should not need more weighted bits
        than the smallest accuracy-preserving uniform width."""
        optimizer, out_input, __ = flow
        __, test = datasets
        stats_list = optimizer.ordered_stats()
        uniform = smallest_uniform_bitwidth(
            lenet, test, stats_list, optimizer.baseline_accuracy(), 0.05
        )
        rho = input_bandwidth_objective(optimizer.stats()).rho
        optimized_cost = out_input.result.allocation.weighted_bits(rho)
        uniform_cost = uniform.allocation.weighted_bits(rho)
        assert optimized_cost <= uniform_cost * 1.35

    def test_analytic_cheaper_than_search(self, flow, lenet, datasets):
        """Far fewer accuracy evaluations than the dynamic search."""
        optimizer, out_input, __ = flow
        __, test = datasets
        stats_list = optimizer.ordered_stats()
        search = stripes_search(
            lenet, test, stats_list, optimizer.baseline_accuracy(), 0.05
        )
        assert (
            out_input.sigma_result.num_evaluations < search.evaluations
        )


class TestEnergyAccounting:
    def test_energy_saving_sign_matches_bit_saving(self, flow):
        optimizer, __, out_mac = flow
        stats = optimizer.stats()
        rho_mac = mac_energy_objective(stats).rho
        model = MacEnergyModel()
        wbits = uniform_weight_bits(out_mac.result.allocation, 8)
        opt_energy = model.network_energy_pj(
            stats, out_mac.result.allocation, wbits
        )
        assert opt_energy > 0


class TestDeterminism:
    def test_pipeline_is_reproducible(self):
        """Same seeds -> identical bitwidths end to end."""
        results = []
        for _ in range(2):
            source = SyntheticImageNet(num_classes=8, seed=42)
            net, train, test, __ = pretrained_model(
                "lenet", source=source, train_count=128, test_count=64, seed=42
            )
            optimizer = PrecisionOptimizer(
                net,
                test,
                profile_settings=ProfileSettings(
                    num_images=8, num_delta_points=6, seed=42
                ),
                search_settings=SearchSettings(tolerance=0.05, seed=42),
            )
            outcome = optimizer.optimize(
                "input", accuracy_drop=0.05, validate=False
            )
            results.append(outcome.bitwidths)
        assert results[0] == results[1]


class TestChangingConstraints:
    def test_looser_drop_allows_fewer_bits(self, flow):
        optimizer, out_input, __ = flow
        loose = optimizer.optimize("input", accuracy_drop=0.20, validate=False)
        stats = optimizer.stats()
        rho = input_bandwidth_objective(stats).rho
        assert loose.result.allocation.weighted_bits(rho) <= (
            out_input.result.allocation.weighted_bits(rho)
        )
