"""Tests for uniform, Stripes-style, and greedy search baselines."""

import pytest

from repro.baselines import (
    greedy_coordinate_search,
    smallest_uniform_bitwidth,
    stripes_search,
)
from repro.errors import SearchError
from repro.models import top1_accuracy
from repro.nn import ordered_stats


@pytest.fixture()
def setup(lenet, lenet_stats, datasets):
    __, test = datasets
    stats = ordered_stats(lenet, lenet_stats)
    base_acc = top1_accuracy(lenet, test)
    return lenet, test, stats, base_acc


class TestUniformBaseline:
    def test_meets_constraint(self, setup):
        net, test, stats, base_acc = setup
        result = smallest_uniform_bitwidth(net, test, stats, base_acc, 0.05)
        assert result.accuracy >= base_acc * 0.95

    def test_one_less_bit_fails(self, setup):
        """Minimality: reducing the uniform width violates the target."""
        net, test, stats, base_acc = setup
        result = smallest_uniform_bitwidth(net, test, stats, base_acc, 0.05)
        from repro.quant import BitwidthAllocation

        smaller = BitwidthAllocation.uniform(stats, result.bitwidth - 1)
        acc = top1_accuracy(net, test, taps=smaller.taps(net))
        assert acc < base_acc * 0.95

    def test_all_layers_same_width(self, setup):
        net, test, stats, base_acc = setup
        result = smallest_uniform_bitwidth(net, test, stats, base_acc, 0.05)
        widths = set(result.allocation.bitwidths().values())
        assert widths == {result.bitwidth}

    def test_looser_constraint_allows_fewer_bits(self, setup):
        net, test, stats, base_acc = setup
        tight = smallest_uniform_bitwidth(net, test, stats, base_acc, 0.01)
        loose = smallest_uniform_bitwidth(net, test, stats, base_acc, 0.20)
        assert loose.bitwidth <= tight.bitwidth

    def test_impossible_start_raises(self, setup):
        net, test, stats, base_acc = setup
        with pytest.raises(SearchError):
            smallest_uniform_bitwidth(
                net, test, stats, base_acc, 0.0, start_bits=2, min_bits=2
            )


class TestStripesSearch:
    def test_meets_constraint_on_full_set(self, setup):
        net, test, stats, base_acc = setup
        result = stripes_search(net, test, stats, base_acc, 0.05)
        assert result.accuracy >= base_acc * 0.95 - 0.02

    def test_phase1_minima_recorded(self, setup):
        net, test, stats, base_acc = setup
        result = stripes_search(net, test, stats, base_acc, 0.05)
        assert set(result.per_layer_minima) == {s.name for s in stats}

    def test_final_widths_at_least_minima(self, setup):
        net, test, stats, base_acc = setup
        result = stripes_search(net, test, stats, base_acc, 0.05)
        widths = result.allocation.bitwidths()
        for name, minimum in result.per_layer_minima.items():
            assert widths[name] >= minimum

    def test_search_subset_reduces_work(self, setup):
        net, test, stats, base_acc = setup
        result = stripes_search(
            net, test, stats, base_acc, 0.05, search_count=48
        )
        assert result.evaluations > 0

    def test_counts_evaluations(self, setup):
        net, test, stats, base_acc = setup
        result = stripes_search(net, test, stats, base_acc, 0.05)
        # at least one descent evaluation per layer + the joint check
        assert result.evaluations >= len(stats) + 1


class TestGreedySearch:
    def test_never_worse_than_uniform_on_cost(self, setup):
        net, test, stats, base_acc = setup
        uniform = smallest_uniform_bitwidth(net, test, stats, base_acc, 0.05)
        rho = {s.name: float(s.num_inputs) for s in stats}
        greedy = greedy_coordinate_search(
            net, test, stats, base_acc, 0.05, cost_weights=rho
        )
        assert greedy.allocation.weighted_bits(rho) <= (
            uniform.allocation.weighted_bits(rho)
        )

    def test_history_starts_at_uniform(self, setup):
        net, test, stats, base_acc = setup
        greedy = greedy_coordinate_search(net, test, stats, base_acc, 0.05)
        first = set(greedy.history[0].values())
        assert len(first) == 1  # uniform start

    def test_history_cost_monotone(self, setup):
        net, test, stats, base_acc = setup
        rho = {s.name: float(s.num_inputs) for s in stats}
        greedy = greedy_coordinate_search(
            net, test, stats, base_acc, 0.05, cost_weights=rho
        )
        costs = [
            sum(rho[n] * b for n, b in snapshot.items())
            for snapshot in greedy.history
        ]
        assert all(c1 > c2 for c1, c2 in zip(costs, costs[1:]))

    def test_holdout_accuracy_reported(self, setup, datasets):
        net, test, stats, base_acc = setup
        train, __ = datasets
        greedy = greedy_coordinate_search(
            net,
            test.subset(64),
            stats,
            base_acc,
            0.05,
            holdout=train.subset(64),
        )
        assert greedy.holdout_accuracy is not None
