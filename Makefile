# Convenience targets for the repro repository.

PYTHON ?= python

.PHONY: install test test-all bench bench-full bench-profiler bench-cache bench-ablate bench-quant bench-sweep-scale ablate-smoke quant-smoke monitor-smoke sweep-scale-smoke suite examples check check-concurrency clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:            ## fast test suite (excludes slow-marked tests)
	$(PYTHON) -m pytest tests/ -q -m "not slow"

test-all:        ## everything, including slow deep-model tests
	$(PYTHON) -m pytest tests/ -q

bench:           ## default benchmark subset (one network per family)
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

bench-full:      ## all eight paper networks (long)
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

bench-profiler:  ## profiler scaling: legacy vs engine vs --jobs (writes BENCH_profiler.json)
	PYTHONPATH=src $(PYTHON) benchmarks/bench_profiler_scaling.py

bench-cache:     ## persistent cache: cold vs warm vs sweep (writes BENCH_cache.json)
	PYTHONPATH=src $(PYTHON) benchmarks/bench_cache_sweep.py

bench-ablate:    ## ablation campaign: cells, cache sharing, importance (writes BENCH_ablate.json)
	PYTHONPATH=src $(PYTHON) benchmarks/bench_ablate.py

bench-quant:     ## integer runtime vs fp64 engine: wall-clock, traffic, bit-identity (writes BENCH_quant.json)
	PYTHONPATH=src $(PYTHON) benchmarks/bench_quant.py

bench-sweep-scale:  ## distributed sweep scaling: 1/2/4 workers, cold+warm store (writes BENCH_sweep_scale.json)
	PYTHONPATH=src $(PYTHON) benchmarks/bench_sweep_scale.py

quant-smoke:     ## tiny lenet run on the integer runtime; fails if measured drop exceeds budget (CI gate)
	PYTHONPATH=src $(PYTHON) -m repro run-quantized --model lenet \
		--train-count 96 --test-count 48 --profile-images 8 \
		--profile-points 4 --drop 0.02
	PYTHONPATH=src $(PYTHON) benchmarks/bench_quant.py --smoke \
		--output bench-quant-smoke.json

ablate-smoke:    ## tiny lenet campaign with one injected chaos fault (CI gate)
	PYTHONPATH=src $(PYTHON) -m repro ablate --model lenet --smoke \
		--components fallback,xi,cache \
		--chaos-cell component/cache:off/lenet \
		--output ablate-smoke.json
	@PYTHONPATH=src $(PYTHON) -c "import json; r = json.load(open('ablate-smoke.json')); \
	assert r['schema_version'] == 1, r.get('schema_version'); \
	rows = r['rows']; assert len(rows) == 5, len(rows); \
	failed = [x for x in rows if x['status'] == 'failed']; \
	assert [x['cell_id'] for x in failed] == ['component/cache:off/lenet'], failed; \
	assert failed[0]['failure']['error_class'] == 'SimulatedCrash', failed[0]; \
	assert r['importance'], 'importance ranking missing'; \
	assert r['manifest'].get('config_hash'), 'manifest missing'; \
	print('ablate smoke OK: %d cells, 1 injected failure isolated' % len(rows))"

monitor-smoke:   ## tiny sweep with --events-dir, then parse + self-scrape the bus (CI gate)
	rm -rf monitor-smoke-events
	PYTHONPATH=src $(PYTHON) -m repro sweep --model lenet \
		--train-count 96 --test-count 48 --profile-images 8 \
		--profile-points 4 --drops 0.05 --objectives input \
		--events-dir monitor-smoke-events
	PYTHONPATH=src $(PYTHON) -m repro monitor monitor-smoke-events --once \
		| tee monitor-smoke.txt
	@grep -q "finished" monitor-smoke.txt
	PYTHONPATH=src $(PYTHON) -m repro monitor monitor-smoke-events \
		--metrics-port 0 --self-scrape | tee monitor-scrape.txt
	@grep -q "repro_monitor_run_finished 1" monitor-scrape.txt
	@echo "monitor smoke OK: status parsed + /metrics scraped"

sweep-scale-smoke:  ## 2-worker distributed sweep; rows asserted bit-identical to serial (CI gate)
	rm -rf sweep-scale-smoke-run
	PYTHONPATH=src $(PYTHON) -m repro sweep --model lenet \
		--train-count 96 --test-count 48 --profile-images 8 \
		--profile-points 4 --drops 0.05 --objectives input \
		--workers 2 --run-dir sweep-scale-smoke-run
	@test -f sweep-scale-smoke-run/manifest.json || \
		{ echo "run manifest missing"; exit 1; }
	@test -f sweep-scale-smoke-run/cells/lenet__drop0.05__input.json || \
		{ echo "published cell missing"; exit 1; }
	PYTHONPATH=src $(PYTHON) benchmarks/bench_sweep_scale.py --smoke \
		--output sweep-scale-smoke.json
	@echo "sweep-scale smoke OK: 2-worker rows identical to serial"

suite:           ## regenerate every table/figure as JSON artifacts
	$(PYTHON) -m repro suite --output results/

examples:        ## run every example script
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

check:           ## static analysis: self-lint (always) + ruff/mypy (if installed)
	PYTHONPATH=src $(PYTHON) -m repro.check --self
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping (CI runs it)"; \
	fi
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy src/repro/bench src/repro/cache src/repro/check src/repro/engine src/repro/experiments src/repro/nn src/repro/quant/runtime src/repro/robustness src/repro/telemetry; \
	else \
		echo "mypy not installed; skipping (CI runs it)"; \
	fi

check-concurrency:  ## concurrency + determinism analyzers against the committed baseline
	PYTHONPATH=src $(PYTHON) -m repro.check --self --concurrency --determinism \
		--baseline check-baseline.json

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results results
	rm -rf monitor-smoke-events monitor-smoke.txt monitor-scrape.txt
	rm -rf sweep-scale-smoke-run sweep-scale-smoke.json
	find . -name __pycache__ -type d -exec rm -rf {} +
