"""Baselines the paper compares against: uniform and dynamic search.

The equal-scheme analytical baseline lives in
:func:`repro.optimize.allocate_equal_scheme`.
"""

from .greedy import GreedySearchResult, greedy_coordinate_search
from .stripes import SearchBaselineResult, stripes_search
from .uniform import UniformBaselineResult, smallest_uniform_bitwidth

__all__ = [
    "GreedySearchResult",
    "SearchBaselineResult",
    "UniformBaselineResult",
    "greedy_coordinate_search",
    "smallest_uniform_bitwidth",
    "stripes_search",
]
