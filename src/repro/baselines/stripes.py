"""Stripes-style search-based per-layer precision assignment.

The paper's comparison point [1, 3] is the *dynamic search* family:
"repeatedly assigns a combination of bitwidths to different layers
followed by testing to try to ensure a certain quality ... failing
which the assignment is tweaked and retried" (Sec. I).

Judd et al.'s published procedure (Stripes / "Reduced-precision
strategies for bounded memory") has two phases, reimplemented here
faithfully:

1. **Per-layer profiling** — for each layer K independently, find the
   smallest bitwidth that keeps accuracy within tolerance while *all
   other layers stay exact*.
2. **Joint repair** — the combination of per-layer minima usually
   violates the target (errors accumulate across layers, which is
   precisely the interaction the paper's Eq. 6 models analytically), so
   every layer's width is incremented uniformly until the joint
   assignment passes.

Every step runs the real quantized network — which is why the paper
calls this approach "very time-consuming"; the evaluation counter makes
the cost comparison measurable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import MAX_BITWIDTH
from ..data import Dataset
from ..errors import SearchError
from ..models.evaluate import top1_accuracy
from ..nn.graph import Network
from ..nn.statistics import LayerStats
from ..quant.allocation import BitwidthAllocation, LayerAllocation


@dataclass
class SearchBaselineResult:
    """Outcome of the search-based assignment."""

    allocation: BitwidthAllocation
    accuracy: float
    evaluations: int
    elapsed_seconds: float
    per_layer_minima: Dict[str, int] = field(default_factory=dict)
    joint_increments: int = 0


def _single_layer_allocation(
    stats: List[LayerStats], name: str, bits: int
) -> BitwidthAllocation:
    """All layers exact (MAX_BITWIDTH) except one at ``bits``."""
    layers = []
    for stat in stats:
        total = bits if stat.name == name else MAX_BITWIDTH
        layers.append(
            LayerAllocation(
                name=stat.name,
                integer_bits=stat.integer_bits,
                fraction_bits=total - stat.integer_bits,
            )
        )
    return BitwidthAllocation(layers)


def stripes_search(
    network: Network,
    dataset: Dataset,
    stats: List[LayerStats],
    baseline_accuracy: float,
    max_relative_drop: float,
    per_layer_tolerance: Optional[float] = 0.0,
    start_bits: int = 16,
    min_bits: int = 2,
    batch_size: int = 64,
    search_count: Optional[int] = None,
) -> SearchBaselineResult:
    """Judd-style per-layer profiling + uniform joint repair.

    ``per_layer_tolerance`` is the relative drop each layer may cause
    *individually* in phase 1.  Judd et al. profile for the minimum
    precision that *maintains* accuracy, so the default is 0 (no
    measurable degradation); pass ``None`` to reuse
    ``max_relative_drop``.  ``search_count`` restricts the accuracy
    tests to the first N images (the published searches also used
    evaluation subsets); the reported final accuracy is still measured
    on the full ``dataset``.
    """
    start_time = time.perf_counter()
    if per_layer_tolerance is None:
        per_layer_tolerance = max_relative_drop
    target = baseline_accuracy * (1.0 - max_relative_drop)
    layer_target = baseline_accuracy * (1.0 - per_layer_tolerance)
    search_set = dataset if search_count is None else dataset.subset(search_count)
    evaluations = 0

    def passes(allocation: BitwidthAllocation, threshold: float) -> bool:
        nonlocal evaluations
        accuracy = top1_accuracy(
            network,
            search_set,
            taps=allocation.taps(network),
            batch_size=batch_size,
        )
        evaluations += 1
        return accuracy >= threshold

    # Phase 1: per-layer minima with every other layer exact.  The
    # widest format is accepted by construction: its rounding error is
    # negligible, so a sub-target measurement there is evaluation noise
    # (razor-margin samples), not a real violation.
    minima: Dict[str, int] = {}
    for stat in stats:
        best = start_bits
        for bits in range(start_bits - 1, min_bits - 1, -1):
            allocation = _single_layer_allocation(stats, stat.name, bits)
            if passes(allocation, layer_target):
                best = bits
            else:
                break
        minima[stat.name] = best

    # Phase 2: joint repair — inflate uniformly until the combination
    # satisfies the constraint.
    increments = 0
    while True:
        bitwidths = {
            name: min(bits + increments, MAX_BITWIDTH)
            for name, bits in minima.items()
        }
        allocation = BitwidthAllocation.from_bitwidths(stats, bitwidths)
        if passes(allocation, target):
            break
        if all(b >= MAX_BITWIDTH for b in bitwidths.values()):
            raise SearchError("joint repair hit MAX_BITWIDTH without passing")
        increments += 1

    final_accuracy = top1_accuracy(
        network, dataset, taps=allocation.taps(network), batch_size=batch_size
    )
    return SearchBaselineResult(
        allocation=allocation,
        accuracy=final_accuracy,
        evaluations=evaluations,
        elapsed_seconds=time.perf_counter() - start_time,
        per_layer_minima=minima,
        joint_increments=increments,
    )
