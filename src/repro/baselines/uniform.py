"""Uniform-bitwidth baseline.

Table III: "Otherwise, we used the smallest possible uniform bitwidth
for all layers as the baseline."  This module finds that baseline by
descending from a wide word and testing true quantized accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..config import MAX_BITWIDTH
from ..data import Dataset
from ..errors import SearchError
from ..models.evaluate import top1_accuracy
from ..nn.graph import Network
from ..nn.statistics import LayerStats
from ..quant.allocation import BitwidthAllocation


@dataclass
class UniformBaselineResult:
    """The smallest accuracy-preserving uniform allocation."""

    allocation: BitwidthAllocation
    bitwidth: int
    accuracy: float
    evaluations: int


def smallest_uniform_bitwidth(
    network: Network,
    dataset: Dataset,
    stats: List[LayerStats],
    baseline_accuracy: float,
    max_relative_drop: float,
    start_bits: int = 16,
    min_bits: int = 2,
    batch_size: int = 64,
) -> UniformBaselineResult:
    """Descend the uniform width until the accuracy constraint breaks.

    Evaluates the *actual quantized network* (fixed-point taps on every
    analyzed layer), so the result is a true dynamic-search baseline.
    """
    if start_bits > MAX_BITWIDTH:
        raise SearchError(f"start_bits must be <= {MAX_BITWIDTH}")
    target = baseline_accuracy * (1.0 - max_relative_drop)
    best: Optional[UniformBaselineResult] = None
    evaluations = 0
    for bits in range(start_bits, min_bits - 1, -1):
        allocation = BitwidthAllocation.uniform(stats, bits)
        accuracy = top1_accuracy(
            network, dataset, taps=allocation.taps(network), batch_size=batch_size
        )
        evaluations += 1
        if accuracy >= target:
            best = UniformBaselineResult(
                allocation=allocation,
                bitwidth=bits,
                accuracy=accuracy,
                evaluations=evaluations,
            )
        else:
            break
    if best is None:
        raise SearchError(
            f"even {start_bits} uniform bits violate the accuracy target "
            f"{target:.3f}; raise start_bits"
        )
    return best
