"""Greedy joint coordinate-descent search (a stronger, costlier baseline).

Not one of the paper's comparison points, but included to quantify two
of its claims: dynamic search (a) is far more expensive than the
analytic method and (b) "will likely over-fit the precision result to
the testing data set" — this search accepts any reduction that keeps
the *search set* accuracy above target, so its result can violate the
constraint on held-out data (see the overfitting ablation benchmark).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..data import Dataset
from ..errors import SearchError
from ..models.evaluate import top1_accuracy
from ..nn.graph import Network
from ..nn.statistics import LayerStats
from ..quant.allocation import BitwidthAllocation, LayerAllocation
from .uniform import smallest_uniform_bitwidth


@dataclass
class GreedySearchResult:
    """Outcome of the greedy joint descent."""

    allocation: BitwidthAllocation
    search_accuracy: float
    holdout_accuracy: Optional[float]
    evaluations: int
    elapsed_seconds: float
    history: List[Dict[str, int]] = field(default_factory=list)


def greedy_coordinate_search(
    network: Network,
    dataset: Dataset,
    stats: List[LayerStats],
    baseline_accuracy: float,
    max_relative_drop: float,
    cost_weights: Optional[Mapping[str, float]] = None,
    holdout: Optional[Dataset] = None,
    start_bits: int = 16,
    batch_size: int = 64,
    max_steps: int = 10_000,
) -> GreedySearchResult:
    """Reduce one layer at a time, always re-testing joint accuracy.

    Starts from the smallest passing uniform width, then repeatedly
    drops one bit from the not-yet-frozen layer with the largest
    ``cost_weights`` entry; a layer freezes once its reduction fails.
    """
    start_time = time.perf_counter()
    target = baseline_accuracy * (1.0 - max_relative_drop)
    uniform = smallest_uniform_bitwidth(
        network,
        dataset,
        stats,
        baseline_accuracy,
        max_relative_drop,
        start_bits=start_bits,
        batch_size=batch_size,
    )
    allocation = uniform.allocation
    accuracy = uniform.accuracy
    evaluations = uniform.evaluations
    if cost_weights is None:
        cost_weights = {stat.name: float(stat.num_inputs) for stat in stats}
    frozen: set = set()
    history: List[Dict[str, int]] = [allocation.bitwidths()]
    for __ in range(max_steps):
        candidates = [
            name
            for name in allocation.names
            if name not in frozen and allocation[name].total_bits > 1
        ]
        if not candidates:
            break
        candidates.sort(key=lambda n: cost_weights.get(n, 0.0), reverse=True)
        progressed = False
        for name in candidates:
            current = allocation[name]
            reduced = allocation.with_layer(
                LayerAllocation(
                    name=name,
                    integer_bits=current.integer_bits,
                    fraction_bits=current.fraction_bits - 1,
                )
            )
            trial = top1_accuracy(
                network,
                dataset,
                taps=reduced.taps(network),
                batch_size=batch_size,
            )
            evaluations += 1
            if trial >= target:
                allocation = reduced
                accuracy = trial
                history.append(allocation.bitwidths())
                progressed = True
                break
            frozen.add(name)
        if not progressed:
            break
    else:
        raise SearchError("greedy_coordinate_search exceeded max_steps")
    holdout_accuracy = None
    if holdout is not None:
        holdout_accuracy = top1_accuracy(
            network, holdout, taps=allocation.taps(network), batch_size=batch_size
        )
    return GreedySearchResult(
        allocation=allocation,
        search_accuracy=accuracy,
        holdout_accuracy=holdout_accuracy,
        evaluations=evaluations,
        elapsed_seconds=time.perf_counter() - start_time,
        history=history,
    )
