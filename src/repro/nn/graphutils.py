"""Graph analysis utilities built on networkx.

The :class:`~repro.nn.graph.Network` container stays dependency-light;
these helpers project it into a :mod:`networkx` DiGraph for structural
queries used in reporting and diagnostics: layer depth (how many
analyzed layers an error crosses before reaching the output — the
quantity Fig. 2 organizes its lines by), downstream cost (what a
partial replay from a layer costs), and DAG sanity checks.
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx

from ..errors import GraphError
from .graph import INPUT, Network


def to_networkx(network: Network) -> "nx.DiGraph":
    """Project the network into a networkx DiGraph.

    Nodes are layer names (plus the ``input`` source); node attributes
    carry the layer kind, output shape, and whether it is analyzed.
    """
    graph = nx.DiGraph()
    graph.add_node(INPUT, kind="input", shape=network.input_shape)
    analyzed = set(network.analyzed_layer_names)
    for layer in network.layers:
        graph.add_node(
            layer.name,
            kind=type(layer).__name__,
            shape=layer.output_shape,
            analyzed=layer.name in analyzed,
        )
        for producer in layer.inputs:
            graph.add_edge(producer, layer.name)
    return graph


def validate_dag(network: Network) -> None:
    """Raise if the network graph is not a DAG reaching its output."""
    graph = to_networkx(network)
    if not nx.is_directed_acyclic_graph(graph):
        raise GraphError(f"network {network.name!r} contains a cycle")
    output = network.output_name
    reachable = nx.ancestors(graph, output) | {output}
    if INPUT not in reachable:
        raise GraphError(
            f"network {network.name!r}: output {output!r} is not reachable "
            "from the input"
        )


def layer_depths(network: Network) -> Dict[str, int]:
    """Longest path (in layers) from the input to each layer."""
    graph = to_networkx(network)
    depths: Dict[str, int] = {INPUT: 0}
    for name in nx.topological_sort(graph):
        if name == INPUT:
            continue
        depths[name] = 1 + max(
            depths[p] for p in graph.predecessors(name)
        )
    return depths


def downstream_layers(network: Network, start: str) -> List[str]:
    """Layers recomputed by a partial replay from ``start`` (inclusive)."""
    if start not in network:
        raise GraphError(f"unknown layer {start!r}")
    graph = to_networkx(network)
    descendants = nx.descendants(graph, start)
    order = [layer.name for layer in network.layers]
    members = {start} | descendants
    return [name for name in order if name in members]


def replay_cost_fraction(network: Network, start: str) -> float:
    """Fraction of the network's MACs a replay from ``start`` recomputes.

    Quantifies the speedup partial re-execution gives the profiler:
    late layers replay almost for free, early layers cost a full pass.
    """
    total = sum(layer.num_macs() for layer in network.layers)
    if total == 0:
        raise GraphError("network has no MAC work")
    names = set(downstream_layers(network, start))
    replayed = sum(
        layer.num_macs() for layer in network.layers if layer.name in names
    )
    return replayed / total
