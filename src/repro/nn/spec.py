"""Declarative network specifications (the prototxt of this repo).

The paper's tool was integrated into Caffe, where architectures are
data, not code.  :class:`NetworkSpec` provides the same workflow here:
a network is a JSON-able list of layer specs, buildable into a live
:class:`~repro.nn.graph.Network` with seeded weights — so users can
define custom architectures, store them, and ship them to the
optimizer without writing Python.

Supported layer types and their parameters mirror
:class:`~repro.nn.builder.NetworkBuilder`:

``conv``      out_channels, kernel, stride=1, padding=None (same),
              groups=1, relu=True
``dense``     out_features, relu=False
``max_pool``  kernel, stride=0 (=kernel), padding=0
``avg_pool``  kernel, stride=0, padding=0
``global_pool``
``relu`` / ``softmax`` / ``flatten``
``lrn``       local_size=5, alpha=1e-4, beta=0.75
``batch_norm``
``concat``    sources=[...]
``add``       sources=[...]

Every layer takes ``name`` and optional ``source`` (default: previous
layer's output).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import GraphError
from .builder import NetworkBuilder
from .graph import Network

PathLike = Union[str, Path]

#: Bumped when the spec schema changes incompatibly.
SPEC_VERSION = 1

_SINGLE_SOURCE_TYPES = {
    "conv",
    "dense",
    "max_pool",
    "avg_pool",
    "global_pool",
    "relu",
    "softmax",
    "flatten",
    "lrn",
    "batch_norm",
}
_MULTI_SOURCE_TYPES = {"concat", "add"}
LAYER_TYPES = _SINGLE_SOURCE_TYPES | _MULTI_SOURCE_TYPES


@dataclass
class LayerSpec:
    """One declarative layer."""

    type: str
    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    source: Optional[str] = None
    sources: Optional[List[str]] = None

    def __post_init__(self) -> None:
        if self.type not in LAYER_TYPES:
            known = ", ".join(sorted(LAYER_TYPES))
            raise GraphError(
                f"unknown layer type {self.type!r}; known types: {known}"
            )
        if not self.name:
            raise GraphError("layer spec needs a name")
        if self.type in _MULTI_SOURCE_TYPES and not self.sources:
            raise GraphError(f"{self.type} layer {self.name!r} needs sources")

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"type": self.type, "name": self.name}
        if self.params:
            data["params"] = dict(self.params)
        if self.source is not None:
            data["source"] = self.source
        if self.sources is not None:
            data["sources"] = list(self.sources)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LayerSpec":
        try:
            return cls(
                type=data["type"],
                name=data["name"],
                params=dict(data.get("params", {})),
                source=data.get("source"),
                sources=(
                    list(data["sources"]) if "sources" in data else None
                ),
            )
        except KeyError as missing:
            raise GraphError(f"layer spec missing field {missing}") from None


@dataclass
class NetworkSpec:
    """A complete declarative network."""

    name: str
    input_shape: Tuple[int, ...]
    layers: List[LayerSpec]
    output: Optional[str] = None
    analyzed_layers: Optional[List[str]] = None

    # ------------------------------------------------------------------
    def build(self, seed: int = 0) -> Network:
        """Materialize the spec with seeded random weights."""
        builder = NetworkBuilder(self.name, tuple(self.input_shape), seed=seed)
        for layer in self.layers:
            self._add(builder, layer)
        return builder.build(
            output=self.output, analyzed_layers=self.analyzed_layers
        )

    @staticmethod
    def _add(builder: NetworkBuilder, layer: LayerSpec) -> None:
        p = dict(layer.params)
        kind = layer.type
        if kind == "conv":
            builder.conv(
                layer.name,
                p.pop("out_channels"),
                p.pop("kernel"),
                stride=p.pop("stride", 1),
                padding=p.pop("padding", None),
                groups=p.pop("groups", 1),
                relu=p.pop("relu", True),
                source=layer.source,
            )
        elif kind == "dense":
            builder.dense(
                layer.name,
                p.pop("out_features"),
                relu=p.pop("relu", False),
                source=layer.source,
            )
        elif kind == "max_pool":
            builder.max_pool(
                layer.name,
                p.pop("kernel"),
                stride=p.pop("stride", 0),
                padding=p.pop("padding", 0),
                source=layer.source,
            )
        elif kind == "avg_pool":
            builder.avg_pool(
                layer.name,
                p.pop("kernel"),
                stride=p.pop("stride", 0),
                padding=p.pop("padding", 0),
                source=layer.source,
            )
        elif kind == "global_pool":
            builder.global_pool(layer.name, source=layer.source)
        elif kind == "relu":
            builder.relu(layer.name, source=layer.source)
        elif kind == "softmax":
            builder.softmax(layer.name, source=layer.source)
        elif kind == "flatten":
            builder.flatten(layer.name, source=layer.source)
        elif kind == "lrn":
            builder.lrn(
                layer.name,
                local_size=p.pop("local_size", 5),
                alpha=p.pop("alpha", 1e-4),
                beta=p.pop("beta", 0.75),
                source=layer.source,
            )
        elif kind == "batch_norm":
            builder.batch_norm(layer.name, source=layer.source)
        elif kind == "concat":
            builder.concat(layer.name, layer.sources)
        elif kind == "add":
            builder.add_residual(layer.name, layer.sources)
        if p:
            raise GraphError(
                f"layer {layer.name!r} ({kind}): unknown parameters "
                f"{sorted(p)}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "spec_version": SPEC_VERSION,
            "name": self.name,
            "input_shape": list(self.input_shape),
            "layers": [layer.to_dict() for layer in self.layers],
        }
        if self.output is not None:
            data["output"] = self.output
        if self.analyzed_layers is not None:
            data["analyzed_layers"] = list(self.analyzed_layers)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NetworkSpec":
        if data.get("spec_version") != SPEC_VERSION:
            raise GraphError(
                f"unsupported spec version {data.get('spec_version')!r}"
            )
        try:
            return cls(
                name=data["name"],
                input_shape=tuple(data["input_shape"]),
                layers=[LayerSpec.from_dict(d) for d in data["layers"]],
                output=data.get("output"),
                analyzed_layers=(
                    list(data["analyzed_layers"])
                    if "analyzed_layers" in data
                    else None
                ),
            )
        except KeyError as missing:
            raise GraphError(f"spec missing field {missing}") from None

    def save(self, path: PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
        return path

    @classmethod
    def load(cls, path: PathLike) -> "NetworkSpec":
        path = Path(path)
        if not path.exists():
            raise GraphError(f"no network spec at {path}")
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


def build_from_spec(
    spec: Union[NetworkSpec, Dict[str, Any], PathLike], seed: int = 0
) -> Network:
    """Build a network from a spec object, dict, or JSON file path."""
    if isinstance(spec, NetworkSpec):
        return spec.build(seed=seed)
    if isinstance(spec, dict):
        return NetworkSpec.from_dict(spec).build(seed=seed)
    return NetworkSpec.load(spec).build(seed=seed)
