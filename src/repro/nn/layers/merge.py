"""Multi-input merge layers: residual Add and channel Concat.

These are what make ResNet/GoogleNet graphs DAGs rather than chains.
Neither performs a learned dot product, so neither is an analyzed
layer; both pass rounding error through linearly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...errors import ShapeError
from ..layer import Layer, Shape


class Add(Layer):
    """Elementwise sum of two or more same-shaped inputs (ResNet shortcut)."""

    def __init__(self, name: str, inputs: Sequence[str]):
        super().__init__(name, inputs)
        if len(self.inputs) < 2:
            raise ShapeError(f"add {name!r} needs at least two inputs")

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        first = input_shapes[0]
        for shape in input_shapes[1:]:
            if shape != first:
                raise ShapeError(
                    f"add {self.name!r}: mismatched input shapes "
                    f"{first} vs {shape}"
                )
        return first

    def forward(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        out = arrays[0].copy()
        for arr in arrays[1:]:
            out += arr
        return out


class Concat(Layer):
    """Concatenation along the channel axis (inception / fire modules)."""

    def __init__(self, name: str, inputs: Sequence[str]):
        super().__init__(name, inputs)
        if len(self.inputs) < 2:
            raise ShapeError(f"concat {name!r} needs at least two inputs")

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        first = input_shapes[0]
        if len(first) != 3:
            raise ShapeError(f"concat {self.name!r} needs CHW inputs, got {first}")
        total_channels = first[0]
        for shape in input_shapes[1:]:
            if len(shape) != 3 or shape[1:] != first[1:]:
                raise ShapeError(
                    f"concat {self.name!r}: spatial dims differ: {first} vs {shape}"
                )
            total_channels += shape[0]
        return (total_channels,) + first[1:]

    def forward(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        return np.concatenate(list(arrays), axis=1)
