"""Activation layers.

ReLU is the only nonlinearity the paper's networks use between dot
products.  Its effect on the rounding-error standard deviation is a
simple scaling ``sigma_y = alpha * sigma_x`` (Sec. III-C), because
zeroed outputs contribute exact zeros to the error distribution.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..layer import Layer, Shape


class ReLU(Layer):
    """Rectified linear unit ``y = max(0, x)``."""

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        return shape

    def forward(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        return np.maximum(arrays[0], 0.0)


class Softmax(Layer):
    """Numerically stable softmax over the feature axis.

    Models in this repo classify via argmax of the logits, so Softmax is
    provided for API completeness (the paper's layer ``L`` is the last
    layer *before* softmax) and is never an analyzed layer.
    """

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        return shape

    def forward(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        x = arrays[0]
        flat = x.reshape(x.shape[0], -1)
        shifted = flat - flat.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return (exp / exp.sum(axis=1, keepdims=True)).reshape(x.shape)
