"""Fully connected (inner product) layer.

The paper treats convolutional and fully connected layers identically:
"Convolution and fully connected layers use the same dot product
operation, the only difference is the way inputs or weights are shared"
(Sec. III).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ...errors import ShapeError
from ..layer import Layer, Shape
from ..tensor import flatten_spatial


class Dense(Layer):
    """Fully connected layer ``y = W x + b``.

    Accepts either a flat ``(N, F)`` input or an ``(N, C, H, W)`` input,
    which is flattened first (Caffe's InnerProduct semantics).
    """

    analyzed = True

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
    ):
        super().__init__(name, inputs)
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 2:
            raise ShapeError(f"dense weight must be 2-D (out, in); got {weight.shape}")
        self.weight = weight
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        if self.bias is not None and self.bias.shape != (weight.shape[0],):
            raise ShapeError(
                f"bias shape {self.bias.shape} does not match out features "
                f"{weight.shape[0]}"
            )

    @property
    def in_features(self) -> int:
        return self.weight.shape[1]

    @property
    def out_features(self) -> int:
        return self.weight.shape[0]

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        flat = int(np.prod(shape))
        if flat != self.in_features:
            raise ShapeError(
                f"dense {self.name!r}: input has {flat} features but weight "
                f"expects {self.in_features}"
            )
        return (self.out_features,)

    def forward(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        x = flatten_spatial(arrays[0])
        out = x @ self.weight.T
        if self.bias is not None:
            out += self.bias
        return out

    def num_macs(self) -> int:
        self._require_bound()
        return self.in_features * self.out_features

    def num_parameters(self) -> int:
        params = self.weight.size
        if self.bias is not None:
            params += self.bias.size
        return int(params)
