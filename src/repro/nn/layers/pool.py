"""Pooling layers.

The paper's error model for pooling (Sec. III-C): max pooling passes
rounding error through unchanged (the output error is a sub-sample of
the input error, so ``sigma_y = sigma_x``), while average pooling with
filter size ``F`` behaves as a dot product with constant weights
``1/F``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...errors import ShapeError
from ..layer import Layer, Shape
from ..tensor import conv_output_hw, extract_windows, pad_nchw


class _SpatialPool(Layer):
    """Shared plumbing for max/avg pooling with square windows."""

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        kernel: int,
        stride: int = 0,
        padding: int = 0,
    ):
        super().__init__(name, inputs)
        if kernel < 1:
            raise ShapeError("pool kernel must be >= 1")
        self.kernel = kernel
        self.stride = stride if stride > 0 else kernel
        self.padding = padding

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        if len(shape) != 3:
            raise ShapeError(f"pool {self.name!r} needs a CHW input, got {shape}")
        c, h, w = shape
        out_h, out_w = conv_output_hw(h, w, self.kernel, self.stride, self.padding)
        return (c, out_h, out_w)

    def _windows(self, x: np.ndarray) -> np.ndarray:
        return extract_windows(x, self.kernel, self.stride, self.padding)


class MaxPool2D(_SpatialPool):
    """Max pooling; zero padding uses -inf so padding never wins."""

    def forward(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        (x,) = arrays
        if self.padding > 0:
            padded = pad_nchw(x, self.padding)
            mask = pad_nchw(np.ones_like(x), self.padding)
            padded = np.where(mask > 0, padded, -np.inf)
            windows = extract_windows(padded, self.kernel, self.stride, 0)
        else:
            windows = self._windows(x)
        return windows.max(axis=(4, 5))


class AvgPool2D(_SpatialPool):
    """Average pooling (a dot product with constant weights 1/F)."""

    def forward(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        (x,) = arrays
        windows = self._windows(x)
        return windows.mean(axis=(4, 5))


class GlobalAvgPool(Layer):
    """Average over all spatial positions, producing a flat feature vector."""

    def __init__(self, name: str, inputs: Sequence[str]):
        super().__init__(name, inputs)

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        if len(shape) != 3:
            raise ShapeError(
                f"global pool {self.name!r} needs a CHW input, got {shape}"
            )
        return (shape[0],)

    def forward(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        (x,) = arrays
        return x.mean(axis=(2, 3))
