"""Layer implementations for the numpy inference engine."""

from .activation import ReLU, Softmax
from .conv import Conv2D
from .dense import Dense
from .merge import Add, Concat
from .norm import ChannelAffine, LRN
from .pool import AvgPool2D, GlobalAvgPool, MaxPool2D
from .reshape import Flatten

__all__ = [
    "Add",
    "AvgPool2D",
    "ChannelAffine",
    "Concat",
    "Conv2D",
    "Dense",
    "Flatten",
    "GlobalAvgPool",
    "LRN",
    "MaxPool2D",
    "ReLU",
    "Softmax",
]
