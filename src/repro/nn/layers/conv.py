"""Convolution layers (standard, grouped, and depthwise).

Convolution is the dot-product workhorse the paper's error model is
built around: for a fixed trained kernel ``w`` and an input ``x`` with
per-element rounding error ``delta_x``, the output error is
``sum_i w_i * delta_x_i`` (paper Eq. 3).  The implementation below uses
``im2col`` so each output element really is computed as one large dot
product, matching that model exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ...errors import ShapeError
from ..layer import Layer, Shape
from ..tensor import conv_output_hw, extract_windows, im2col


class Conv2D(Layer):
    """2-D convolution with square kernels and optional channel groups.

    Parameters
    ----------
    name, inputs:
        Graph wiring (see :class:`~repro.nn.layer.Layer`).
    weight:
        Array of shape ``(out_channels, in_channels // groups, k, k)``.
    bias:
        Optional array of shape ``(out_channels,)``.
    stride, padding:
        Spatial stride and symmetric zero padding.
    groups:
        Channel groups; ``groups == in_channels`` gives a depthwise
        convolution (MobileNet's building block).
    """

    analyzed = True

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
    ):
        super().__init__(name, inputs)
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 4 or weight.shape[2] != weight.shape[3]:
            raise ShapeError(
                f"conv weight must be (out, in/groups, k, k); got {weight.shape}"
            )
        if stride < 1 or padding < 0 or groups < 1:
            raise ShapeError("stride >= 1, padding >= 0, groups >= 1 required")
        if weight.shape[0] % groups != 0:
            raise ShapeError("out_channels must be divisible by groups")
        self.weight = weight
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        if self.bias is not None and self.bias.shape != (weight.shape[0],):
            raise ShapeError(
                f"bias shape {self.bias.shape} does not match out_channels "
                f"{weight.shape[0]}"
            )
        self.stride = stride
        self.padding = padding
        self.groups = groups

    # ------------------------------------------------------------------
    @property
    def out_channels(self) -> int:
        return self.weight.shape[0]

    @property
    def kernel(self) -> int:
        return self.weight.shape[2]

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        if len(shape) != 3:
            raise ShapeError(f"conv {self.name!r} needs a CHW input, got {shape}")
        c, h, w = shape
        if c != self.weight.shape[1] * self.groups:
            raise ShapeError(
                f"conv {self.name!r}: input has {c} channels but weight expects "
                f"{self.weight.shape[1] * self.groups}"
            )
        out_h, out_w = conv_output_hw(h, w, self.kernel, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    def forward(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        (x,) = arrays
        if self.groups == 1:
            out = self._forward_dense(x)
        elif self.groups == x.shape[1] and self.weight.shape[1] == 1:
            out = self._forward_depthwise(x)
        else:
            out = self._forward_grouped(x)
        if self.bias is not None:
            out += self.bias[None, :, None, None]
        return out

    def _forward_dense(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        out_c, out_h, out_w = self.output_shape
        cols = im2col(x, self.kernel, self.stride, self.padding)
        w2d = self.weight.reshape(out_c, -1)
        out = np.matmul(w2d[None, :, :], cols)
        return out.reshape(n, out_c, out_h, out_w)

    def _forward_depthwise(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        out_c, out_h, out_w = self.output_shape
        windows = extract_windows(x, self.kernel, self.stride, self.padding)
        # windows: (N, C, out_h, out_w, k, k); weight: (C, 1, k, k)
        kernels = self.weight[:, 0, :, :]
        out = np.einsum("nchwij,cij->nchw", windows, kernels, optimize=True)
        return out.reshape(n, out_c, out_h, out_w)

    def _forward_grouped(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        out_c, out_h, out_w = self.output_shape
        in_per_group = self.weight.shape[1]
        out_per_group = out_c // self.groups
        out = np.empty((n, out_c, out_h, out_w), dtype=np.float64)
        for g in range(self.groups):
            x_g = x[:, g * in_per_group : (g + 1) * in_per_group]
            w_g = self.weight[g * out_per_group : (g + 1) * out_per_group]
            cols = im2col(x_g, self.kernel, self.stride, self.padding)
            w2d = w_g.reshape(out_per_group, -1)
            res = np.matmul(w2d[None, :, :], cols)
            out[:, g * out_per_group : (g + 1) * out_per_group] = res.reshape(
                n, out_per_group, out_h, out_w
            )
        return out

    # ------------------------------------------------------------------
    def num_macs(self) -> int:
        self._require_bound()
        out_elems = int(np.prod(self.output_shape))
        per_output = self.weight.shape[1] * self.kernel * self.kernel
        return out_elems * per_output

    def num_parameters(self) -> int:
        params = self.weight.size
        if self.bias is not None:
            params += self.bias.size
        return int(params)
