"""Shape-changing layers."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..layer import Layer, Shape
from ..tensor import flatten_spatial


class Flatten(Layer):
    """Flatten a CHW tensor to a feature vector."""

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        return (int(np.prod(shape)),)

    def forward(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        return flatten_spatial(arrays[0])
