"""Normalization layers.

Batch normalization at inference time folds into a per-channel affine
transform, which is how Caffe deploys it; :class:`ChannelAffine`
implements that folded form directly.  :class:`LRN` implements the
local response normalization used by AlexNet and GoogleNet.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...errors import ShapeError
from ..layer import Layer, Shape


class ChannelAffine(Layer):
    """Per-channel ``y = scale * x + shift`` (folded batch norm)."""

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        scale: np.ndarray,
        shift: np.ndarray,
    ):
        super().__init__(name, inputs)
        self.scale = np.asarray(scale, dtype=np.float64)
        self.shift = np.asarray(shift, dtype=np.float64)
        if self.scale.ndim != 1 or self.scale.shape != self.shift.shape:
            raise ShapeError(
                f"affine {name!r}: scale/shift must be matching 1-D arrays"
            )

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        if len(shape) != 3 or shape[0] != self.scale.shape[0]:
            raise ShapeError(
                f"affine {self.name!r}: input {shape} does not match "
                f"{self.scale.shape[0]} channels"
            )
        return shape

    def forward(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        (x,) = arrays
        return x * self.scale[None, :, None, None] + self.shift[None, :, None, None]

    def num_parameters(self) -> int:
        return int(self.scale.size + self.shift.size)


class LRN(Layer):
    """Local response normalization across channels (AlexNet-style).

    ``y_c = x_c / (k + alpha/n * sum_{c' in window} x_{c'}^2) ** beta``
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        local_size: int = 5,
        alpha: float = 1e-4,
        beta: float = 0.75,
        k: float = 1.0,
    ):
        super().__init__(name, inputs)
        if local_size < 1 or local_size % 2 == 0:
            raise ShapeError("LRN local_size must be a positive odd integer")
        self.local_size = local_size
        self.alpha = alpha
        self.beta = beta
        self.k = k

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        if len(shape) != 3:
            raise ShapeError(f"LRN {self.name!r} needs a CHW input, got {shape}")
        return shape

    def forward(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        (x,) = arrays
        squared = x * x
        half = self.local_size // 2
        channels = x.shape[1]
        padded = np.zeros(
            (x.shape[0], channels + 2 * half) + x.shape[2:], dtype=np.float64
        )
        padded[:, half : half + channels] = squared
        cumulative = np.cumsum(padded, axis=1)
        window = np.empty_like(squared)
        # sum over channel window [c - half, c + half] via cumulative sums
        upper = cumulative[:, self.local_size - 1 :]
        lower = np.concatenate(
            [np.zeros_like(cumulative[:, :1]), cumulative[:, : -self.local_size]],
            axis=1,
        )
        window[:] = upper - lower
        denom = (self.k + (self.alpha / self.local_size) * window) ** self.beta
        return x / denom
