"""Pure-numpy CNN inference engine (the paper's Caffe substrate).

Exposes the layer library, the :class:`Network` DAG container with
injection taps and partial re-execution, the :class:`NetworkBuilder`
used by the model zoo, and per-layer statistics collection.
"""

from .builder import NetworkBuilder
from .graph import INPUT, ActivationCache, ForwardFn, Network, ReplayPlan
from .graphutils import (
    downstream_layers,
    layer_depths,
    replay_cost_fraction,
    to_networkx,
    validate_dag,
)
from .layer import Layer
from .spec import LayerSpec, NetworkSpec, build_from_spec
from .layers import (
    Add,
    AvgPool2D,
    ChannelAffine,
    Concat,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    LRN,
    MaxPool2D,
    ReLU,
    Softmax,
)
from .statistics import (
    LayerStats,
    measure_ranges,
    ordered_stats,
    static_stats,
    total_inputs,
    total_macs,
)

__all__ = [
    "ActivationCache",
    "Add",
    "AvgPool2D",
    "ChannelAffine",
    "Concat",
    "Conv2D",
    "Dense",
    "Flatten",
    "ForwardFn",
    "GlobalAvgPool",
    "INPUT",
    "LRN",
    "Layer",
    "LayerSpec",
    "LayerStats",
    "MaxPool2D",
    "Network",
    "NetworkBuilder",
    "NetworkSpec",
    "ReLU",
    "ReplayPlan",
    "Softmax",
    "build_from_spec",
    "downstream_layers",
    "layer_depths",
    "measure_ranges",
    "ordered_stats",
    "replay_cost_fraction",
    "static_stats",
    "to_networkx",
    "total_inputs",
    "total_macs",
    "validate_dag",
]
