"""Network container: a DAG of layers with injection taps.

Two capabilities here carry the whole reproduction:

* **Taps** — a tap is a function applied to a layer's primary input
  just before the layer computes.  The paper's profiling procedure
  (Sec. V-A) "injects an error from the uniform distribution
  [-Delta, Delta] into the input of layer K"; a tap is exactly that
  hook.  Taps also implement quantization (replace the input with its
  fixed-point rounding) and statistics recording.

* **Partial re-execution** — injecting at layer K only changes layers
  downstream of K.  :meth:`Network.run_all` caches every clean
  activation once, and :meth:`Network.forward_from` replays only the
  downstream closure of K against that cache.  This turns the paper's
  "k forward passes over the dataset, ~20 delta points each" into an
  affordable computation on a pure-numpy substrate.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphError, ShapeError
from .layer import Layer, Shape
from .tensor import assert_batched

Tap = Callable[[np.ndarray], np.ndarray]

#: Reserved producer name for the network input tensor.
INPUT = "input"


class ActivationCache:
    """Clean (exact) activations of every layer for one input batch."""

    def __init__(self, values: Dict[str, np.ndarray]):
        self._values = values

    def __getitem__(self, name: str) -> np.ndarray:
        return self._values[name]

    def __contains__(self, name: str) -> bool:
        return name in self._values

    @property
    def batch_size(self) -> int:
        return self._values[INPUT].shape[0]

    def names(self) -> Iterable[str]:
        return self._values.keys()

    def nbytes(self) -> int:
        return sum(v.nbytes for v in self._values.values())


class Network:
    """A feed-forward DAG of named layers.

    Layers must be added in a valid topological order: every name in a
    layer's ``inputs`` must already exist (or be :data:`INPUT`).  The
    network output (the paper's layer ``L``, the logits before softmax)
    defaults to the last layer added and can be overridden with
    :meth:`set_output`.
    """

    def __init__(self, name: str, input_shape: Shape):
        if len(input_shape) not in (1, 3):
            raise GraphError(
                f"input shape must be (C, H, W) or (F,); got {input_shape}"
            )
        self.name = name
        self.input_shape: Shape = tuple(input_shape)
        self._layers: List[Layer] = []
        self._by_name: Dict[str, Layer] = {}
        self._output: Optional[str] = None
        self._analyzed: Optional[List[str]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, layer: Layer) -> Layer:
        """Add a layer; its inputs must already be present."""
        if layer.name == INPUT or layer.name in self._by_name:
            raise GraphError(f"duplicate or reserved layer name {layer.name!r}")
        shapes = []
        for producer in layer.inputs:
            if producer == INPUT:
                shapes.append(self.input_shape)
            elif producer in self._by_name:
                shapes.append(self._by_name[producer].output_shape)
            else:
                raise GraphError(
                    f"layer {layer.name!r} consumes unknown producer {producer!r}"
                )
        layer.bind(shapes)
        self._layers.append(layer)
        self._by_name[layer.name] = layer
        self._output = layer.name
        return layer

    def set_output(self, name: str) -> None:
        """Choose which layer's output is the network output (layer L)."""
        if name not in self._by_name:
            raise GraphError(f"unknown output layer {name!r}")
        self._output = name

    def set_analyzed_layers(self, names: Sequence[str]) -> None:
        """Restrict which dot-product layers the paper's method analyzes.

        Mirrors the paper's evaluation choices, e.g. "Stripes ignored the
        fully connected layers, so we did the same for AlexNet, NiN,
        GoogleNet and VGG-19" (Sec. VI).
        """
        for name in names:
            layer = self[name]
            if not layer.analyzed:
                raise GraphError(
                    f"layer {name!r} is not a dot-product layer; it cannot be "
                    "an analyzed layer"
                )
        self._analyzed = list(names)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def layers(self) -> Tuple[Layer, ...]:
        return tuple(self._layers)

    @property
    def output_name(self) -> str:
        if self._output is None:
            raise GraphError(f"network {self.name!r} has no layers")
        return self._output

    @property
    def num_classes(self) -> int:
        shape = self[self.output_name].output_shape
        return int(np.prod(shape))

    def __getitem__(self, name: str) -> Layer:
        try:
            return self._by_name[name]
        except KeyError:
            raise GraphError(f"unknown layer {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._layers)

    @property
    def analyzed_layer_names(self) -> List[str]:
        """Names of layers that receive bitwidth assignments, in order."""
        if self._analyzed is not None:
            return list(self._analyzed)
        return [layer.name for layer in self._layers if layer.analyzed]

    def num_parameters(self) -> int:
        return sum(layer.num_parameters() for layer in self._layers)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def forward(
        self, x: np.ndarray, taps: Optional[Mapping[str, Tap]] = None
    ) -> np.ndarray:
        """Run the full network, applying ``taps`` to tapped layers' inputs.

        Intermediate activations are freed as soon as no remaining layer
        consumes them, so deep networks run in bounded memory.
        """
        self._check_input(x)
        if taps:
            self._check_taps(taps)
        last_use = self._last_use_index()
        values: Dict[str, np.ndarray] = {INPUT: np.asarray(x, dtype=np.float64)}
        output = self.output_name
        result: Optional[np.ndarray] = None
        for index, layer in enumerate(self._layers):
            arrays = [values[n] for n in layer.inputs]
            if taps and layer.name in taps:
                arrays[0] = taps[layer.name](arrays[0])
            out = layer.forward(arrays)
            if layer.name == output:
                result = out
            values[layer.name] = out
            for name in list(values):
                if last_use.get(name, -1) <= index and name != output:
                    del values[name]
        assert result is not None
        return result

    def run_all(self, x: np.ndarray) -> ActivationCache:
        """Run the network and keep every activation (for partial replay)."""
        self._check_input(x)
        values: Dict[str, np.ndarray] = {INPUT: np.asarray(x, dtype=np.float64)}
        for layer in self._layers:
            arrays = [values[n] for n in layer.inputs]
            values[layer.name] = layer.forward(arrays)
        return ActivationCache(values)

    def forward_from(
        self,
        cache: ActivationCache,
        start: str,
        tap: Tap,
    ) -> np.ndarray:
        """Replay from layer ``start`` with ``tap`` applied to its input.

        Only layers in the downstream closure of ``start`` are
        recomputed; every other consumed value comes from ``cache``.
        Returns the (perturbed) network output.
        """
        start_layer = self[start]
        dirty: Dict[str, np.ndarray] = {}
        last_use = self._dirty_last_use(start)
        output = self.output_name
        result: Optional[np.ndarray] = None
        started = False
        for index, layer in enumerate(self._layers):
            if layer.name == start:
                started = True
            if not started:
                continue
            touches_dirty = layer.name == start or any(
                n in dirty for n in layer.inputs
            )
            if not touches_dirty:
                continue
            arrays = [
                dirty[n] if n in dirty else cache[n] for n in layer.inputs
            ]
            if layer.name == start:
                arrays[0] = tap(arrays[0])
            out = layer.forward(arrays)
            dirty[layer.name] = out
            if layer.name == output:
                result = out
            for name in list(dirty):
                if last_use.get(name, -1) <= index and name != output:
                    del dirty[name]
        if result is None:
            # start is not upstream of the output layer; output unchanged.
            result = cache[output]
        del start_layer
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_input(self, x: np.ndarray) -> None:
        x = np.asarray(x)
        assert_batched(x)
        if tuple(x.shape[1:]) != self.input_shape:
            raise ShapeError(
                f"network {self.name!r} expects input {self.input_shape}; "
                f"got {tuple(x.shape[1:])}"
            )

    def _check_taps(self, taps: Mapping[str, Tap]) -> None:
        for name in taps:
            if name not in self._by_name:
                raise GraphError(f"tap targets unknown layer {name!r}")

    def _last_use_index(self) -> Dict[str, int]:
        """Index of the last layer consuming each producer's output."""
        last: Dict[str, int] = {}
        for index, layer in enumerate(self._layers):
            for producer in layer.inputs:
                last[producer] = index
        return last

    def _dirty_last_use(self, start: str) -> Dict[str, int]:
        """Last-use indices restricted to the downstream closure of start."""
        dirty = {start}
        last: Dict[str, int] = {}
        for index, layer in enumerate(self._layers):
            if layer.name == start or any(n in dirty for n in layer.inputs):
                dirty.add(layer.name)
                for producer in layer.inputs:
                    if producer in dirty:
                        last[producer] = index
        return last

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(name={self.name!r}, layers={len(self._layers)}, "
            f"input={self.input_shape}, output={self._output!r})"
        )
