"""Network container: a DAG of layers with injection taps.

Two capabilities here carry the whole reproduction:

* **Taps** — a tap is a function applied to a layer's primary input
  just before the layer computes.  The paper's profiling procedure
  (Sec. V-A) "injects an error from the uniform distribution
  [-Delta, Delta] into the input of layer K"; a tap is exactly that
  hook.  Taps also implement quantization (replace the input with its
  fixed-point rounding) and statistics recording.

* **Partial re-execution** — injecting at layer K only changes layers
  downstream of K.  :meth:`Network.run_all` caches every clean
  activation once, and :meth:`Network.forward_from` replays only the
  downstream closure of K against that cache.  This turns the paper's
  "k forward passes over the dataset, ~20 delta points each" into an
  affordable computation on a pure-numpy substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphError, ShapeError
from .layer import Layer, Shape
from .tensor import assert_batched

Tap = Callable[[np.ndarray], np.ndarray]

#: Forward override hook: ``(layer, arrays) -> output``.  Used by the
#: injection engine to substitute bitwise-faithful fast kernels for
#: ``layer.forward`` during replay (see :mod:`repro.engine.kernels`).
ForwardFn = Callable[[Layer, Sequence[np.ndarray]], np.ndarray]

#: Reserved producer name for the network input tensor.
INPUT = "input"


@dataclass(frozen=True)
class ReplayPlan:
    """Precomputed downstream closure of one start layer.

    ``forward_from`` used to re-derive this per call (an O(L) scan plus
    set bookkeeping per trial); the profiler replays from the same
    handful of start layers tens of thousands of times, so the plan is
    computed once per start layer and memoized on the network
    (invalidated whenever the graph mutates).
    """

    #: Layer the replay starts from (the injection point).
    start: str
    #: Indices (into ``Network.layers``) of the closure members, in
    #: topological order.  Every one of these layers consumes at least
    #: one dirty value and must be recomputed; no other layer does.
    layer_indices: Tuple[int, ...] = field(repr=False)
    #: Last layer index consuming each dirty value (for memory reuse).
    last_use: Mapping[str, int] = field(repr=False)
    #: Whether the closure contains the network output: a replay from
    #: ``start`` can change the output at all.
    reaches_output: bool = True

    def __len__(self) -> int:
        return len(self.layer_indices)


class ActivationCache:
    """Clean (exact) activations of every layer for one input batch."""

    def __init__(self, values: Dict[str, np.ndarray]):
        self._values = values

    def __getitem__(self, name: str) -> np.ndarray:
        return self._values[name]

    def __contains__(self, name: str) -> bool:
        return name in self._values

    @property
    def batch_size(self) -> int:
        return self._values[INPUT].shape[0]

    def names(self) -> Iterable[str]:
        return self._values.keys()

    def nbytes(self) -> int:
        return sum(v.nbytes for v in self._values.values())


class Network:
    """A feed-forward DAG of named layers.

    Layers must be added in a valid topological order: every name in a
    layer's ``inputs`` must already exist (or be :data:`INPUT`).  The
    network output (the paper's layer ``L``, the logits before softmax)
    defaults to the last layer added and can be overridden with
    :meth:`set_output`.
    """

    def __init__(self, name: str, input_shape: Shape):
        if len(input_shape) not in (1, 3):
            raise GraphError(
                f"input shape must be (C, H, W) or (F,); got {input_shape}"
            )
        self.name = name
        self.input_shape: Shape = tuple(input_shape)
        self._layers: List[Layer] = []
        self._by_name: Dict[str, Layer] = {}
        self._output: Optional[str] = None
        self._analyzed: Optional[List[str]] = None
        #: Memoized replay plans keyed by start layer; any structural
        #: mutation (``add``, ``set_output``) clears the cache.
        self._plan_cache: Dict[str, ReplayPlan] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, layer: Layer) -> Layer:
        """Add a layer; its inputs must already be present."""
        if layer.name == INPUT or layer.name in self._by_name:
            raise GraphError(f"duplicate or reserved layer name {layer.name!r}")
        shapes = []
        for producer in layer.inputs:
            if producer == INPUT:
                shapes.append(self.input_shape)
            elif producer in self._by_name:
                shapes.append(self._by_name[producer].output_shape)
            else:
                raise GraphError(
                    f"layer {layer.name!r} consumes unknown producer {producer!r}"
                )
        layer.bind(shapes)
        self._layers.append(layer)
        self._by_name[layer.name] = layer
        self._output = layer.name
        self._plan_cache.clear()
        return layer

    def set_output(self, name: str) -> None:
        """Choose which layer's output is the network output (layer L)."""
        if name not in self._by_name:
            raise GraphError(f"unknown output layer {name!r}")
        self._output = name
        self._plan_cache.clear()

    def set_analyzed_layers(self, names: Sequence[str]) -> None:
        """Restrict which dot-product layers the paper's method analyzes.

        Mirrors the paper's evaluation choices, e.g. "Stripes ignored the
        fully connected layers, so we did the same for AlexNet, NiN,
        GoogleNet and VGG-19" (Sec. VI).
        """
        for name in names:
            layer = self[name]
            if not layer.analyzed:
                raise GraphError(
                    f"layer {name!r} is not a dot-product layer; it cannot be "
                    "an analyzed layer"
                )
        self._analyzed = list(names)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def layers(self) -> Tuple[Layer, ...]:
        return tuple(self._layers)

    @property
    def output_name(self) -> str:
        if self._output is None:
            raise GraphError(f"network {self.name!r} has no layers")
        return self._output

    @property
    def num_classes(self) -> int:
        shape = self[self.output_name].output_shape
        return int(np.prod(shape))

    def __getitem__(self, name: str) -> Layer:
        try:
            return self._by_name[name]
        except KeyError:
            raise GraphError(f"unknown layer {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._layers)

    @property
    def analyzed_layer_names(self) -> List[str]:
        """Names of layers that receive bitwidth assignments, in order."""
        if self._analyzed is not None:
            return list(self._analyzed)
        return [layer.name for layer in self._layers if layer.analyzed]

    def num_parameters(self) -> int:
        return sum(layer.num_parameters() for layer in self._layers)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def forward(
        self,
        x: np.ndarray,
        taps: Optional[Mapping[str, Tap]] = None,
        forward_fn: Optional[ForwardFn] = None,
    ) -> np.ndarray:
        """Run the full network, applying ``taps`` to tapped layers' inputs.

        Intermediate activations are freed as soon as no remaining layer
        consumes them, so deep networks run in bounded memory.  When
        ``forward_fn`` is given, it replaces ``layer.forward`` for every
        layer (the substitution hook the fast kernels and the quantized
        runtime use; see :data:`ForwardFn`).
        """
        self._check_input(x)
        if taps:
            self._check_taps(taps)
        last_use = self._last_use_index()
        values: Dict[str, np.ndarray] = {INPUT: np.asarray(x, dtype=np.float64)}
        output = self.output_name
        result: Optional[np.ndarray] = None
        for index, layer in enumerate(self._layers):
            arrays = [values[n] for n in layer.inputs]
            if taps and layer.name in taps:
                arrays[0] = taps[layer.name](arrays[0])
            if forward_fn is None:
                out = layer.forward(arrays)
            else:
                out = forward_fn(layer, arrays)
            if layer.name == output:
                result = out
            values[layer.name] = out
            for name in list(values):
                if last_use.get(name, -1) <= index and name != output:
                    del values[name]
        assert result is not None
        return result

    def run_all(
        self, x: np.ndarray, forward_fn: Optional[ForwardFn] = None
    ) -> ActivationCache:
        """Run the network and keep every activation (for partial replay)."""
        self._check_input(x)
        values: Dict[str, np.ndarray] = {INPUT: np.asarray(x, dtype=np.float64)}
        for layer in self._layers:
            arrays = [values[n] for n in layer.inputs]
            if forward_fn is None:
                values[layer.name] = layer.forward(arrays)
            else:
                values[layer.name] = forward_fn(layer, arrays)
        return ActivationCache(values)

    def replay_plan(self, start: str) -> ReplayPlan:
        """Memoized downstream-closure plan for replays from ``start``.

        The plan (closure member indices, last-use map, whether the
        output is reachable) is computed once and cached; ``add`` and
        ``set_output`` invalidate the cache.
        """
        plan = self._plan_cache.get(start)
        if plan is None:
            self[start]  # raises GraphError for unknown layers
            output = self.output_name
            dirty = {start}
            indices: List[int] = []
            last: Dict[str, int] = {}
            for index, layer in enumerate(self._layers):
                if layer.name == start or any(n in dirty for n in layer.inputs):
                    dirty.add(layer.name)
                    indices.append(index)
                    for producer in layer.inputs:
                        if producer in dirty:
                            last[producer] = index
            plan = ReplayPlan(
                start=start,
                layer_indices=tuple(indices),
                last_use=last,
                reaches_output=output in dirty,
            )
            self._plan_cache[start] = plan
        return plan

    def forward_from(
        self,
        cache: ActivationCache,
        start: str,
        tap: Tap,
        forward_fn: Optional[ForwardFn] = None,
    ) -> np.ndarray:
        """Replay from layer ``start`` with ``tap`` applied to its input.

        Only layers in the downstream closure of ``start`` are
        recomputed (following the memoized :meth:`replay_plan`); every
        other consumed value comes from ``cache``.  Returns the
        (perturbed) network output.
        """
        plan = self.replay_plan(start)
        output = self.output_name
        if not plan.reaches_output:
            # start is not upstream of the output layer; output unchanged.
            return cache[output]
        dirty: Dict[str, np.ndarray] = {}
        last_use = plan.last_use
        result: Optional[np.ndarray] = None
        for index in plan.layer_indices:
            layer = self._layers[index]
            arrays = [
                dirty[n] if n in dirty else cache[n] for n in layer.inputs
            ]
            if layer.name == start:
                arrays[0] = tap(arrays[0])
            if forward_fn is None:
                out = layer.forward(arrays)
            else:
                out = forward_fn(layer, arrays)
            dirty[layer.name] = out
            if layer.name == output:
                result = out
            for name in list(dirty):
                if last_use.get(name, -1) <= index and name != output:
                    del dirty[name]
        assert result is not None
        return result

    def forward_from_many(
        self,
        cache: ActivationCache,
        start: str,
        taps: Sequence[Tap],
        forward_fn: Optional[ForwardFn] = None,
    ) -> np.ndarray:
        """Vectorized replay: R tapped draws in one batched pass.

        Stacks ``len(taps)`` perturbed copies of ``start``'s input along
        the batch axis and replays the downstream closure once, tiling
        only the clean values the closure consumes.  Because every layer
        operates per-sample, the result is bitwise identical to calling
        :meth:`forward_from` once per tap — but R replays share each
        layer's im2col/GEMM setup, which is what makes dense injection
        campaigns affordable (see ``docs/performance.md``).

        Returns an array of shape ``(R, B, *output_shape)`` where ``B``
        is the cache's batch size: ``result[i]`` is the output for
        ``taps[i]``.
        """
        if not taps:
            raise GraphError("forward_from_many needs at least one tap")
        plan = self.replay_plan(start)
        output = self.output_name
        repeats = len(taps)
        batch = cache.batch_size
        if not plan.reaches_output:
            clean = cache[output]
            tiled = np.broadcast_to(
                clean, (repeats,) + clean.shape
            )
            return np.ascontiguousarray(tiled)
        dirty: Dict[str, np.ndarray] = {}
        last_use = plan.last_use
        tiled_clean: Dict[str, np.ndarray] = {}

        def tile(name: str) -> np.ndarray:
            value = tiled_clean.get(name)
            if value is None:
                value = np.concatenate([cache[name]] * repeats, axis=0)
                tiled_clean[name] = value
            return value

        result: Optional[np.ndarray] = None
        for index in plan.layer_indices:
            layer = self._layers[index]
            if layer.name == start:
                source = cache[layer.inputs[0]]
                arrays = [
                    np.concatenate([tap(source) for tap in taps], axis=0)
                ] + [
                    dirty[n] if n in dirty else tile(n)
                    for n in layer.inputs[1:]
                ]
            else:
                arrays = [
                    dirty[n] if n in dirty else tile(n) for n in layer.inputs
                ]
            if forward_fn is None:
                out = layer.forward(arrays)
            else:
                out = forward_fn(layer, arrays)
            dirty[layer.name] = out
            if layer.name == output:
                result = out
            for name in list(dirty):
                if last_use.get(name, -1) <= index and name != output:
                    del dirty[name]
        assert result is not None
        return result.reshape((repeats, batch) + result.shape[1:])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_input(self, x: np.ndarray) -> None:
        x = np.asarray(x)
        assert_batched(x)
        if tuple(x.shape[1:]) != self.input_shape:
            raise ShapeError(
                f"network {self.name!r} expects input {self.input_shape}; "
                f"got {tuple(x.shape[1:])}"
            )

    def _check_taps(self, taps: Mapping[str, Tap]) -> None:
        for name in taps:
            if name not in self._by_name:
                raise GraphError(f"tap targets unknown layer {name!r}")

    def _last_use_index(self) -> Dict[str, int]:
        """Index of the last layer consuming each producer's output."""
        last: Dict[str, int] = {}
        for index, layer in enumerate(self._layers):
            for producer in layer.inputs:
                last[producer] = index
        return last

    def _dirty_last_use(self, start: str) -> Dict[str, int]:
        """Last-use indices restricted to the downstream closure of start.

        Kept for backward compatibility; the computation now lives in
        (and is memoized by) :meth:`replay_plan`.
        """
        return dict(self.replay_plan(start).last_use)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(name={self.name!r}, layers={len(self._layers)}, "
            f"input={self.input_shape}, output={self._output!r})"
        )
