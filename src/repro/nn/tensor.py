"""Low-level tensor helpers for the numpy inference engine.

All activations are batched ``float64`` arrays in ``NCHW`` layout for
spatial tensors and ``NF`` layout for flat tensors.  The helpers here
implement the window extraction (``im2col``) that convolution and
pooling layers are built on.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ShapeError


def conv_output_hw(
    height: int, width: int, kernel: int, stride: int, padding: int
) -> Tuple[int, int]:
    """Output spatial size of a conv/pool with square kernel and stride."""
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ShapeError(
            f"kernel {kernel} stride {stride} padding {padding} does not fit "
            f"input {height}x{width}"
        )
    return out_h, out_w


def pad_nchw(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two spatial axes of an NCHW batch."""
    if padding == 0:
        return x
    return np.pad(
        x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
    )


def extract_windows(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> np.ndarray:
    """Return sliding windows of an NCHW batch.

    The result has shape ``(N, C, out_h, out_w, kernel, kernel)`` and is a
    contiguous copy, so callers may reshape it freely.
    """
    if x.ndim != 4:
        raise ShapeError(f"expected NCHW input, got shape {x.shape}")
    x = pad_nchw(x, padding)
    n, c, h, w = x.shape
    out_h, out_w = conv_output_hw(h, w, kernel, stride, 0)
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    return np.ascontiguousarray(windows)


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Unfold an NCHW batch into dot-product columns.

    Returns an array of shape ``(N, C * kernel * kernel, out_h * out_w)``
    such that a convolution becomes a plain matrix product with the
    reshaped weight tensor — exactly the "chain of dot products" view of
    CNN inference used throughout the paper (Sec. II-B).
    """
    windows = extract_windows(x, kernel, stride, padding)
    n, c, out_h, out_w, kh, kw = windows.shape
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, out_h * out_w)
    return cols


def flatten_spatial(x: np.ndarray) -> np.ndarray:
    """Reshape ``(N, C, H, W)`` to ``(N, C*H*W)`` without copying when possible."""
    if x.ndim == 2:
        return x
    if x.ndim != 4:
        raise ShapeError(f"expected NCHW or NF input, got shape {x.shape}")
    return x.reshape(x.shape[0], -1)


def assert_batched(x: np.ndarray) -> None:
    """Validate that an array looks like a batch of activations."""
    if x.ndim not in (2, 4):
        raise ShapeError(
            f"activations must be (N, F) or (N, C, H, W); got shape {x.shape}"
        )
