"""Static and measured per-layer statistics.

These statistics are the raw material of Table II: per analyzed layer,
the number of input elements (``#Input``), the number of MAC operations
(``#MAC``) and the measured dynamic range ``max|X_K|`` from which the
signed integer bitwidth ``I = ceil(log2 max|X_K|) + 1`` is derived
(paper Sec. II-A and V-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .graph import Network, Tap


@dataclass
class LayerStats:
    """Statistics for one analyzed layer."""

    name: str
    num_inputs: int
    num_macs: int
    max_abs_input: float = 0.0

    @property
    def integer_bits(self) -> int:
        """Signed integer bitwidth that avoids overflow (paper Sec. II-A).

        Must agree with :func:`repro.quant.integer_bits_for_range`
        (duplicated here to keep ``nn`` free of ``quant`` imports; a
        cross-consistency test enforces the agreement).
        """
        if self.max_abs_input <= 0:
            return 1
        exact = np.log2(self.max_abs_input)
        ceiled = int(np.ceil(exact))
        if abs(exact - round(exact)) < 1e-12:
            # A value exactly at a power of two needs one more bit.
            ceiled = int(round(exact)) + 1
        return max(1, ceiled + 1)


def static_stats(network: Network) -> Dict[str, LayerStats]:
    """Collect #Input / #MAC for every analyzed layer (no data needed)."""
    stats: Dict[str, LayerStats] = {}
    for name in network.analyzed_layer_names:
        layer = network[name]
        stats[name] = LayerStats(
            name=name,
            num_inputs=layer.num_input_elements(),
            num_macs=layer.num_macs(),
        )
    return stats


def measure_ranges(
    network: Network, images: np.ndarray, batch_size: int = 64
) -> Dict[str, LayerStats]:
    """Collect full stats including ``max|X_K|`` from a forward pass.

    The paper measures integer bitwidths "by doing a forward pass through
    all the layers, recording down the maximum absolute value of the
    input values" (Sec. V-D).  A recording tap on each analyzed layer
    does exactly that.
    """
    stats = static_stats(network)
    maxima: Dict[str, float] = {name: 0.0 for name in stats}

    def make_tap(name: str) -> Tap:
        def tap(x: np.ndarray) -> np.ndarray:
            maxima[name] = max(maxima[name], float(np.max(np.abs(x))))
            return x

        return tap

    taps = {name: make_tap(name) for name in stats}
    for start in range(0, images.shape[0], batch_size):
        network.forward(images[start : start + batch_size], taps=taps)
    for name, stat in stats.items():
        stat.max_abs_input = maxima[name]
    return stats


def total_inputs(stats: Dict[str, LayerStats]) -> int:
    """Total input elements across analyzed layers (Table II ``Total``)."""
    return sum(s.num_inputs for s in stats.values())


def total_macs(stats: Dict[str, LayerStats]) -> int:
    """Total MAC operations across analyzed layers (Table II ``Total``)."""
    return sum(s.num_macs for s in stats.values())


def ordered_stats(network: Network, stats: Dict[str, LayerStats]) -> List[LayerStats]:
    """Stats in analyzed-layer order (layer 1 ... L of the paper)."""
    return [stats[name] for name in network.analyzed_layer_names]
