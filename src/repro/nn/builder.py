"""Fluent builder for network graphs with randomized (He) weight init.

Model definitions in :mod:`repro.models` use this builder so each
architecture file reads like its Caffe prototxt: a sequence of conv /
pool / concat / add statements.  Weights are drawn from a seeded
generator, giving deterministic "untrained" feature extractors whose
classifier heads are later fitted (see :mod:`repro.models.pretrain`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import GraphError
from .graph import INPUT, Network
from .layer import Shape
from .layers import (
    Add,
    AvgPool2D,
    ChannelAffine,
    Concat,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    LRN,
    MaxPool2D,
    ReLU,
    Softmax,
)


class NetworkBuilder:
    """Build a :class:`~repro.nn.graph.Network` one layer at a time.

    Every ``add``-style method returns the name of the layer it appended
    (the post-activation name when ``relu=True``), and updates
    :attr:`current`, the implicit source for the next layer.
    """

    def __init__(self, name: str, input_shape: Shape, seed: int = 0):
        self.network = Network(name, input_shape)
        self.rng = np.random.default_rng(seed)
        self.current: str = INPUT

    # ------------------------------------------------------------------
    def _source(self, source: Optional[str]) -> str:
        return self.current if source is None else source

    def _he_conv_weight(
        self, out_channels: int, in_channels: int, kernel: int, gain: float
    ) -> np.ndarray:
        fan_in = in_channels * kernel * kernel
        std = gain * np.sqrt(2.0 / fan_in)
        return self.rng.normal(
            0.0, std, size=(out_channels, in_channels, kernel, kernel)
        )

    def _channels_of(self, producer: str) -> int:
        if producer == INPUT:
            shape = self.network.input_shape
        else:
            shape = self.network[producer].output_shape
        if len(shape) == 3:
            return shape[0]
        return shape[0]

    # ------------------------------------------------------------------
    def conv(
        self,
        name: str,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: Optional[int] = None,
        groups: int = 1,
        relu: bool = True,
        source: Optional[str] = None,
        gain: float = 1.0,
        bias: bool = True,
    ) -> str:
        """Append a convolution (+ optional ReLU); returns the new head."""
        src = self._source(source)
        in_channels = self._channels_of(src)
        if padding is None:
            padding = kernel // 2
        weight = self._he_conv_weight(
            out_channels, in_channels // groups, kernel, gain
        )
        bias_arr = np.zeros(out_channels) if bias else None
        self.network.add(
            Conv2D(
                name,
                [src],
                weight,
                bias=bias_arr,
                stride=stride,
                padding=padding,
                groups=groups,
            )
        )
        self.current = name
        if relu:
            self.relu(f"{name}_relu", source=name)
        return self.current

    def depthwise_conv(
        self,
        name: str,
        kernel: int = 3,
        stride: int = 1,
        padding: Optional[int] = None,
        relu: bool = True,
        source: Optional[str] = None,
        gain: float = 1.0,
    ) -> str:
        """Depthwise convolution: one kernel per input channel."""
        src = self._source(source)
        channels = self._channels_of(src)
        return self.conv(
            name,
            channels,
            kernel,
            stride=stride,
            padding=padding,
            groups=channels,
            relu=relu,
            source=src,
            gain=gain,
        )

    def dense(
        self,
        name: str,
        out_features: int,
        relu: bool = False,
        source: Optional[str] = None,
        gain: float = 1.0,
    ) -> str:
        src = self._source(source)
        if src == INPUT:
            in_features = int(np.prod(self.network.input_shape))
        else:
            in_features = int(np.prod(self.network[src].output_shape))
        std = gain * np.sqrt(2.0 / in_features)
        weight = self.rng.normal(0.0, std, size=(out_features, in_features))
        self.network.add(Dense(name, [src], weight, bias=np.zeros(out_features)))
        self.current = name
        if relu:
            self.relu(f"{name}_relu", source=name)
        return self.current

    def relu(self, name: str, source: Optional[str] = None) -> str:
        self.network.add(ReLU(name, [self._source(source)]))
        self.current = name
        return name

    def softmax(self, name: str, source: Optional[str] = None) -> str:
        self.network.add(Softmax(name, [self._source(source)]))
        self.current = name
        return name

    def max_pool(
        self,
        name: str,
        kernel: int,
        stride: int = 0,
        padding: int = 0,
        source: Optional[str] = None,
    ) -> str:
        self.network.add(
            MaxPool2D(name, [self._source(source)], kernel, stride, padding)
        )
        self.current = name
        return name

    def avg_pool(
        self,
        name: str,
        kernel: int,
        stride: int = 0,
        padding: int = 0,
        source: Optional[str] = None,
    ) -> str:
        self.network.add(
            AvgPool2D(name, [self._source(source)], kernel, stride, padding)
        )
        self.current = name
        return name

    def global_pool(self, name: str, source: Optional[str] = None) -> str:
        self.network.add(GlobalAvgPool(name, [self._source(source)]))
        self.current = name
        return name

    def lrn(
        self,
        name: str,
        local_size: int = 5,
        alpha: float = 1e-4,
        beta: float = 0.75,
        source: Optional[str] = None,
    ) -> str:
        self.network.add(
            LRN(name, [self._source(source)], local_size, alpha, beta)
        )
        self.current = name
        return name

    def batch_norm(self, name: str, source: Optional[str] = None) -> str:
        """Folded batch norm with mild random scale jitter around 1."""
        src = self._source(source)
        channels = self._channels_of(src)
        scale = 1.0 + 0.05 * self.rng.standard_normal(channels)
        shift = 0.05 * self.rng.standard_normal(channels)
        self.network.add(ChannelAffine(name, [src], scale, shift))
        self.current = name
        return name

    def concat(self, name: str, sources: Sequence[str]) -> str:
        self.network.add(Concat(name, list(sources)))
        self.current = name
        return name

    def add_residual(self, name: str, sources: Sequence[str]) -> str:
        self.network.add(Add(name, list(sources)))
        self.current = name
        return name

    def flatten(self, name: str, source: Optional[str] = None) -> str:
        self.network.add(Flatten(name, [self._source(source)]))
        self.current = name
        return name

    # ------------------------------------------------------------------
    def build(
        self,
        output: Optional[str] = None,
        analyzed_layers: Optional[Sequence[str]] = None,
    ) -> Network:
        """Finalize and return the network."""
        if len(self.network) == 0:
            raise GraphError("cannot build an empty network")
        if output is not None:
            self.network.set_output(output)
        if analyzed_layers is not None:
            self.network.set_analyzed_layers(analyzed_layers)
        return self.network
