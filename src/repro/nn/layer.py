"""Base class for all network layers.

A :class:`Layer` is a named node in a :class:`~repro.nn.graph.Network`
DAG.  It consumes the outputs of the layers listed in ``inputs`` and
produces a single output tensor.  Per-image shapes (without the batch
axis) are inferred once, when the layer is added to a network, so that
static statistics — input-element counts and MAC counts, the
:math:`\\rho_K` coefficients of the paper's Eq. 8 — are available
without running any data.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphError, ShapeError

Shape = Tuple[int, ...]


class Layer(abc.ABC):
    """A single computation node.

    Subclasses set :attr:`analyzed` to ``True`` when the layer performs
    the large dot products the paper analyzes (convolution and fully
    connected layers, Sec. III).  Only analyzed layers receive injected
    rounding errors and bitwidth assignments.
    """

    #: Marks layers whose inputs are quantized / error-injected.
    analyzed: bool = False

    def __init__(self, name: str, inputs: Sequence[str]):
        if not name:
            raise GraphError("layer name must be non-empty")
        if not inputs:
            raise GraphError(f"layer {name!r} must declare at least one input")
        self.name = name
        self.inputs: List[str] = list(inputs)
        self.input_shapes: Optional[List[Shape]] = None
        self.output_shape: Optional[Shape] = None

    def bind(self, input_shapes: Sequence[Shape]) -> None:
        """Attach per-image input shapes and infer the output shape."""
        if len(input_shapes) != len(self.inputs):
            raise ShapeError(
                f"layer {self.name!r} declares {len(self.inputs)} inputs but "
                f"received {len(input_shapes)} shapes"
            )
        self.input_shapes = [tuple(s) for s in input_shapes]
        self.output_shape = self.infer_shape(self.input_shapes)

    @abc.abstractmethod
    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        """Compute the per-image output shape from the input shapes."""

    @abc.abstractmethod
    def forward(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Compute the batched output from batched input arrays."""

    # ------------------------------------------------------------------
    # Static statistics (per image), used as objective weights (Eq. 8).
    # ------------------------------------------------------------------
    def num_input_elements(self) -> int:
        """Elements read from the primary input per image (``#Input``)."""
        self._require_bound()
        return int(np.prod(self.input_shapes[0]))

    def num_macs(self) -> int:
        """Multiply-accumulate operations per image (``#MAC``)."""
        return 0

    def num_parameters(self) -> int:
        """Learned parameters stored by the layer."""
        return 0

    def _require_bound(self) -> None:
        if self.input_shapes is None or self.output_shape is None:
            raise ShapeError(
                f"layer {self.name!r} has not been added to a network yet"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, inputs={self.inputs!r}, "
            f"output_shape={self.output_shape})"
        )
