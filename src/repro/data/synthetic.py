"""Synthetic ImageNet-like dataset.

The paper evaluates on ImageNet with pretrained Caffe models; neither is
available offline, so this module builds the closest synthetic
equivalent that exercises the same code paths: a multi-class image
classification task whose accuracy is real (a fitted classifier head
achieves well above chance) and degrades smoothly and monotonically as
numerical noise is injected — the property the paper's sigma binary
search (Sec. V-C) depends on.

Each class has a smooth random "prototype" image; samples are the
prototype plus smooth structured noise plus per-sample contrast and
brightness jitter, scaled to a mean-subtracted-pixel-like dynamic range
(matching the paper's measured ``max|X_1|`` of order 10**2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np
from scipy import ndimage

from ..config import DEFAULT_SEED
from ..errors import ReproError


@dataclass
class Dataset:
    """A labelled batch of images."""

    images: np.ndarray
    labels: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        if self.images.shape[0] != self.labels.shape[0]:
            raise ReproError(
                f"images ({self.images.shape[0]}) and labels "
                f"({self.labels.shape[0]}) disagree on sample count"
            )

    def __len__(self) -> int:
        return int(self.images.shape[0])

    def subset(self, count: int) -> "Dataset":
        """First ``count`` samples (the generator already shuffles)."""
        count = min(count, len(self))
        return Dataset(self.images[:count], self.labels[:count], self.num_classes)

    def batches(self, batch_size: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        for start in range(0, len(self), batch_size):
            yield (
                self.images[start : start + batch_size],
                self.labels[start : start + batch_size],
            )


class SyntheticImageNet:
    """Deterministic generator of an ImageNet-like classification task.

    Parameters
    ----------
    num_classes:
        Number of classes (ImageNet has 1000; the default keeps the
        substrate fast while preserving a non-trivial task).
    image_shape:
        Per-image ``(C, H, W)``.
    noise:
        Ratio of structured-noise std to prototype std.  Larger values
        make the task harder (lower clean accuracy, more headroom for
        noise-induced degradation).
    value_scale:
        Std of pixel values; chosen so dynamic ranges resemble
        mean-subtracted 8-bit pixels (order 10**2).
    smoothness:
        Gaussian-filter sigma for prototypes and structured noise.
    """

    def __init__(
        self,
        num_classes: int = 16,
        image_shape: Tuple[int, int, int] = (3, 32, 32),
        noise: float = 0.55,
        value_scale: float = 60.0,
        smoothness: float = 2.0,
        seed: int = DEFAULT_SEED,
    ):
        if num_classes < 2:
            raise ReproError("need at least two classes")
        if len(image_shape) != 3:
            raise ReproError(f"image_shape must be (C, H, W); got {image_shape}")
        self.num_classes = num_classes
        self.image_shape = tuple(image_shape)
        self.noise = noise
        self.value_scale = value_scale
        self.smoothness = smoothness
        self.seed = seed
        self._prototypes = self._make_prototypes()

    def _smooth_field(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Unit-std smooth random fields of shape (count, C, H, W)."""
        raw = rng.standard_normal((count,) + self.image_shape)
        smooth = ndimage.gaussian_filter(
            raw, sigma=(0, 0, self.smoothness, self.smoothness)
        )
        std = smooth.std(axis=(1, 2, 3), keepdims=True)
        return smooth / np.maximum(std, 1e-12)

    def _make_prototypes(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        return self._smooth_field(rng, self.num_classes)

    @property
    def prototypes(self) -> np.ndarray:
        """Class prototype images, shape ``(num_classes, C, H, W)``."""
        return self._prototypes

    def sample(self, count: int, seed: int = 0) -> Dataset:
        """Draw ``count`` labelled images (deterministic per seed)."""
        rng = np.random.default_rng((self.seed, seed, count))
        labels = rng.integers(0, self.num_classes, size=count)
        structured = self._smooth_field(rng, count)
        images = self._prototypes[labels] + self.noise * structured
        contrast = 1.0 + 0.15 * rng.standard_normal((count, 1, 1, 1))
        brightness = 0.1 * rng.standard_normal((count, 1, 1, 1))
        images = self.value_scale * (contrast * images + brightness)
        return Dataset(images.astype(np.float64), labels, self.num_classes)

    def train_test(
        self, train_count: int, test_count: int
    ) -> Tuple[Dataset, Dataset]:
        """Disjoint train/test splits (different seeds)."""
        return self.sample(train_count, seed=1), self.sample(test_count, seed=2)
