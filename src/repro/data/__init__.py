"""Dataset substrate: synthetic ImageNet stand-in."""

from .synthetic import Dataset, SyntheticImageNet

__all__ = ["Dataset", "SyntheticImageNet"]
