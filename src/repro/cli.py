"""Command-line interface: the repo as a precision-optimization tool.

The paper's artifact (MUPOD) was "an open source precision optimization
framework ... integrated into Caffe"; this CLI is the equivalent entry
point for the substrate replica.  Subcommands:

``zoo``       list the model zoo and analyzed-layer counts
``check``     static graph/allocation verifier + numerical lint pass
``profile``   measure lambda/theta for every analyzed layer (Sec. V-A)
``optimize``  full pipeline for one objective + accuracy constraint
``run-quantized``  execute an allocation with the integer runtime
              (bit-packed weights + integer GEMM) and report measured
              vs analytic accuracy drop and memory traffic
``table2``    regenerate Table II (AlexNet, two objectives)
``table3``    regenerate Table III rows for chosen networks
``fig2``      linearity measurement (Fig. 2)
``fig3``      accuracy vs sigma under both schemes (Fig. 3)
``fig4``      NiN per-layer energy anatomy (Fig. 4)
``cost``      analytic vs search cost comparison (Sec. VI-A)
``sweep``     incremental grid sweep with cross-cell work sharing
              (``--workers N`` fans it out to work-stealing processes)
``worker``    attach one work-stealing worker to a distributed sweep
              run directory (any host sharing the filesystem)
``ablate``    ablation & scenario-robustness campaign with
              fault-isolated cells and measured component importance
``monitor``   live view of an in-progress run's event bus (progress,
              ETA, stragglers, cache hit-rate; optional /metrics port)
``bench``     benchmark regression ledger: record BENCH_*.json
              payloads, flag wall-clock/traffic regressions
``cache``     persistent result-cache stats / GC / integrity verify

Every subcommand accepts ``--cache-dir DIR`` (persist expensive results
content-addressed under DIR and reuse them across runs; also enabled by
``$REPRO_CACHE_DIR``) and ``--no-cache`` (force it off); see
``docs/caching.md``.

Every subcommand accepts ``--resume DIR`` (checkpoint/resume the
expensive stages under DIR) and ``--strict`` (escalate guardrail
warnings and solver degradation to hard errors); see
``docs/resilience.md``.

Run ``python -m repro <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench.cli import add_bench_arguments, run_bench
from .cache.cli import add_cache_arguments, run_cache
from .check.cli import add_check_arguments, run_check
from .experiments import (
    AblationSpec,
    ExperimentConfig,
    SweepSpec,
    make_context,
    run_ablation_campaign,
    run_cost_comparison,
    run_fig2,
    run_fig3,
    run_fig4,
    run_suite,
    run_sweep,
    run_table2,
    run_table3,
)
from .models import MODEL_NAMES, PAPER_LAYER_COUNTS, build_model
from .pipeline import describe_manifest, describe_profile_timings, format_table


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="alexnet", help="zoo model name")
    parser.add_argument("--seed", type=int, default=20190325)
    parser.add_argument("--train-count", type=int, default=384)
    parser.add_argument("--test-count", type=int, default=256)
    parser.add_argument("--profile-images", type=int, default=24)
    parser.add_argument("--profile-points", type=int, default=8)
    parser.add_argument(
        "--scheme",
        choices=["scheme1", "scheme2"],
        default="scheme1",
        help="accuracy test for the sigma search (Sec. V-C)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker count for the injection engine's layer-level pool "
            "(results are bit-identical for any N; see "
            "docs/performance.md)"
        ),
    )
    parser.add_argument(
        "--parallel-backend",
        choices=["thread", "process"],
        default="thread",
        help="engine pool backend (process = shared-memory workers)",
    )
    parser.add_argument(
        "--resume",
        default="",
        metavar="DIR",
        help=(
            "checkpoint the expensive stages (per-layer profiles, sigma "
            "searches) under DIR and resume from whatever already "
            "completed there"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help=(
            "escalate numerical guardrail warnings and solver "
            "degradation to hard errors (no equal-xi fallback)"
        ),
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "collect tracing spans and metrics for this run (numerical "
            "results stay bit-identical; see docs/observability.md)"
        ),
    )
    parser.add_argument(
        "--trace-out",
        default="",
        metavar="PATH",
        help=(
            "write the run's JSONL trace (spans + manifest + metrics) "
            "to PATH; implies --telemetry"
        ),
    )
    parser.add_argument(
        "--events-dir",
        default="",
        metavar="DIR",
        help=(
            "append live lifecycle events (cell/stage queued, running, "
            "cached-hit, done, failed) to DIR/events.jsonl while the "
            "run executes; `repro monitor DIR` tails them"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default="",
        metavar="DIR",
        help=(
            "persist expensive results (activations, fits, sigma "
            "evaluations, outcomes) content-addressed under DIR and "
            "reuse them across runs; $REPRO_CACHE_DIR also enables "
            "this (see docs/caching.md)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="force the persistent result cache off",
    )


def _config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        model=args.model,
        train_count=args.train_count,
        test_count=args.test_count,
        profile_images=args.profile_images,
        profile_points=args.profile_points,
        scheme=args.scheme,
        seed=args.seed,
        strict=args.strict,
        state_dir=args.resume,
        jobs=args.jobs,
        parallel_backend=args.parallel_backend,
        telemetry=args.telemetry,
        trace_out=args.trace_out,
        events_dir=args.events_dir,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
    )


def _export_trace(context) -> None:
    """Write the optimizer's trace when ``--trace-out`` was given."""
    path = context.optimizer.telemetry.export()
    if path is not None:
        print(f"trace written to {path}")


def _print_cache_summary(context) -> None:
    """One-line hit/miss accounting when the persistent cache is on."""
    cache = context.optimizer.cache
    if cache is not None:
        print(cache.describe())


# ----------------------------------------------------------------------
def cmd_zoo(args: argparse.Namespace) -> int:
    rows = []
    for name in MODEL_NAMES:
        network = build_model(name)
        rows.append(
            {
                "model": name,
                "analyzed_layers": len(network.analyzed_layer_names),
                "paper_layers": PAPER_LAYER_COUNTS[name],
                "total_layers": len(network),
                "parameters": network.num_parameters(),
            }
        )
    print(format_table(rows))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    context = make_context(_config(args))
    report = context.optimizer.profile()
    rows = [
        {
            "layer": p.name,
            "lambda": p.lam,
            "theta": p.theta,
            "R^2": p.r_squared,
            "max_rel_err": p.max_relative_error,
        }
        for p in report
    ]
    print(format_table(rows, float_format="{:.4g}"))
    print(
        f"profiled {report.num_images} images in "
        f"{report.elapsed_seconds:.1f}s; worst fit "
        f"{report.worst_fit().max_relative_error:.1%}"
    )
    print(describe_profile_timings(report))
    _print_cache_summary(context)
    _export_trace(context)
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    context = make_context(_config(args))
    outcome = context.optimizer.optimize(
        args.objective,
        accuracy_drop=args.drop,
        search_weights=args.weights,
    )
    rows = [
        {
            "layer": name,
            "bits": bits,
            "xi": round(outcome.result.xi[name], 4),
        }
        for name, bits in outcome.bitwidths.items()
    ]
    print(format_table(rows))
    print(
        f"sigma_YL={outcome.sigma_result.sigma:.4f}  "
        f"baseline acc {outcome.baseline_accuracy:.3f}  "
        f"quantized acc {outcome.validated_accuracy:.3f}  "
        f"constraint {'met' if outcome.meets_constraint else 'VIOLATED'}"
    )
    if outcome.degraded:
        print(
            "WARNING: xi optimization degraded to the equal scheme "
            "(solver fallback chain exhausted); allocation is "
            "conservative"
        )
    if outcome.weight_search is not None:
        print(f"weight bitwidth (Sec. V-E search): {outcome.weight_search.bits}")
    if args.output:
        from .quant import save_allocation

        provenance = {
            "model": args.model,
            "objective": args.objective,
            "accuracy_drop": args.drop,
            "sigma": outcome.result.sigma,
            "baseline_accuracy": outcome.baseline_accuracy,
            "validated_accuracy": outcome.validated_accuracy,
            "degraded": outcome.degraded,
        }
        path = save_allocation(
            outcome.result.allocation, args.output, provenance=provenance
        )
        print(f"allocation written to {path}")
    if outcome.manifest:
        print(describe_manifest(outcome.manifest))
    _print_cache_summary(context)
    _export_trace(context)
    return 0 if outcome.meets_constraint else 1


def cmd_run_quantized(args: argparse.Namespace) -> int:
    """Execute an allocation end to end on the integer runtime.

    The pipeline's accuracy numbers come from *simulated* quantization
    (float forward with rounding taps); this command runs the real
    thing — bit-packed weights, integer GEMMs, per-layer requantization
    — and cross-checks measured accuracy drop and measured activation
    traffic against the analytic predictions.  Exit code 1 when the
    measured drop exceeds the budget.
    """
    import numpy as np

    from .hardware.bandwidth import layer_traffic_bits
    from .models.evaluate import relative_drop
    from .quant import load_allocation
    from .quant.runtime import RuntimeSpec, build_quantized_network

    context = make_context(_config(args))
    baseline = context.optimizer.baseline_accuracy()
    simulated_accuracy = None
    if args.allocation:
        allocation = load_allocation(args.allocation)
    else:
        outcome = context.optimizer.optimize(
            args.objective, accuracy_drop=args.drop
        )
        allocation = outcome.result.allocation
        simulated_accuracy = outcome.validated_accuracy
    spec = RuntimeSpec(
        weight_bits=args.weight_bits,
        backend=args.backend,
        pack_activations=not args.no_pack,
    )
    quantized = build_quantized_network(
        context.network, allocation, spec, cache=context.optimizer.cache
    )
    predictions = quantized.predict(
        context.test.images, batch_size=args.batch_size
    )
    measured = float(np.mean(predictions == context.test.labels))
    measured_drop = relative_drop(baseline, measured)

    analytic_bits = layer_traffic_bits(context.optimizer.stats(), allocation)
    measured_bits = quantized.measured_input_bits()
    rows = [
        {
            "layer": entry.name,
            "bits": entry.total_bits,
            "analytic_kB": analytic_bits[entry.name] / 8192.0,
            "measured_kB": measured_bits[entry.name] / 8192.0,
        }
        for entry in allocation
    ]
    print(format_table(rows, float_format="{:.3f}"))
    print(
        f"packed weights: {quantized.packed_weight_nbytes()} B "
        f"({spec.weight_bits}-bit, backend={spec.backend})"
    )
    print(
        f"baseline acc {baseline:.3f}  quantized acc {measured:.3f}  "
        f"measured drop {measured_drop:.2%} (budget {args.drop:.2%})"
    )
    if simulated_accuracy is not None:
        print(
            f"simulated (tap) acc {simulated_accuracy:.3f}  "
            f"runtime-vs-sim gap {measured - simulated_accuracy:+.3f}"
        )
    budget_met = measured_drop <= args.drop + 1e-9
    print(f"accuracy budget {'met' if budget_met else 'VIOLATED'}")
    _print_cache_summary(context)
    _export_trace(context)
    return 0 if budget_met else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    models = args.models.split(",") if args.models else [args.model]
    spec = SweepSpec(
        models=tuple(models),
        accuracy_drops=tuple(float(d) for d in args.drops.split(",")),
        objectives=tuple(args.objectives.split(",")),
    )
    if args.workers > 1 or args.run_dir:
        from .cache.leases import LeaseSettings
        from .experiments.distributed import (
            DistributedSettings,
            run_sweep_distributed,
        )

        report = run_sweep_distributed(
            spec,
            config=_config(args),
            distribution=DistributedSettings(workers=args.workers),
            lease=LeaseSettings(ttl_seconds=args.lease_ttl),
            run_dir=args.run_dir or None,
        )
    else:
        report = run_sweep(
            spec,
            config=_config(args),
            progress=False,
            keep_going=args.keep_going,
        )
    for line in report.lines():
        print(line)
    if args.output:
        import json

        from pathlib import Path

        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {
                    "cells": report.rows(),
                    "elapsed_seconds": report.elapsed_seconds,
                    "cache_counters": report.cache_counters,
                    "cache_dir": report.cache_dir,
                },
                indent=2,
            )
        )
        print(f"sweep results written to {path}")
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from .cache.leases import LeaseSettings
    from .experiments.distributed import run_worker

    report = run_worker(
        args.run_dir,
        worker_id=args.worker_id or None,
        settings=LeaseSettings(
            ttl_seconds=args.lease_ttl,
            heartbeat_seconds=args.heartbeat,
            poll_seconds=args.poll,
        ),
        max_cells=args.max_cells,
        progress=True,
    )
    print(
        f"worker {report.worker_id}: {report.cells_published} cells "
        f"published ({report.leases_stolen} leases stolen) in "
        f"{report.elapsed_seconds:.2f}s"
    )
    return 0


def cmd_ablate(args: argparse.Namespace) -> int:
    models = args.models.split(",") if args.models else [args.model]
    config = _config(args)
    if args.smoke:
        from dataclasses import replace

        config = replace(
            config,
            num_classes=8,
            train_count=96,
            test_count=48,
            profile_images=8,
            profile_points=4,
            search_trials=1,
        )
    spec = AblationSpec(
        models=tuple(models),
        accuracy_drop=args.drop,
        objective=args.objective,
        components=(
            tuple(args.components.split(",")) if args.components else None
        ),
        scenarios=(
            tuple(args.scenarios.split(",")) if args.scenarios else ()
        ),
        chaos_cells=tuple(args.chaos_cell),
    )
    report = run_ablation_campaign(
        spec, config=config, state_dir=args.resume or None, progress=True
    )
    for line in report.lines():
        print(line)
    manifest = report.manifest
    if manifest:
        print(f"campaign config {manifest.get('config_hash', 'n/a')}")
    if args.output:
        import json

        from pathlib import Path

        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.as_dict(), indent=2))
        print(f"campaign report written to {path}")
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    result = run_table2(_config(args), accuracy_drop=args.drop)
    print(format_table(result.rows()))
    print(
        f"input-bit saving {result.input_saving_percent:+.1f}%  "
        f"MAC-bit saving {result.mac_saving_percent:+.1f}%  "
        f"sigma={result.sigma:.3f}"
    )
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    models = args.models.split(",") if args.models else MODEL_NAMES[:4]
    drops = [float(d) for d in args.drops.split(",")]
    rows = run_table3(
        models, drops, config=_config(args), baseline=args.baseline
    )
    print(format_table([r.as_dict() for r in rows]))
    return 0


def cmd_fig2(args: argparse.Namespace) -> int:
    result = run_fig2(_config(args))
    print(format_table(result.summary_rows(), float_format="{:.4g}"))
    print(
        f"median max-rel-err {result.median_relative_error:.1%}, "
        f"worst {result.worst_relative_error:.1%}"
    )
    return 0


def cmd_fig3(args: argparse.Namespace) -> int:
    result = run_fig3(_config(args))
    print(format_table(result.rows(), float_format="{:.3f}"))
    print(
        f"output error: std={result.error_std:.3f} "
        f"excess_kurtosis={result.error_excess_kurtosis:.3f}"
    )
    return 0


def cmd_fig4(args: argparse.Namespace) -> int:
    result = run_fig4(_config(args), accuracy_drop=args.drop)
    print(format_table(result.rows, float_format="{:.0f}"))
    print(
        f"energy saving {result.energy_save_percent:+.1f}%  "
        f"bandwidth change {result.bandwidth_change_percent:+.1f}%"
    )
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    only = args.only.split(",") if args.only else None
    results = run_suite(
        _config(args),
        table3_models=args.models.split(",") if args.models else ("alexnet",),
        only=only,
        output_dir=args.output or None,
        verbose=True,
    )
    timings = results["_timings"]
    total = sum(timings.values())
    print(f"suite finished: {len(timings)} experiments in {total:.1f}s")
    if args.output:
        print(f"artifacts in {args.output}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Summarize or validate a JSONL trace file (``--trace-out``)."""
    from .telemetry import read_events, render_summary, validate_path

    if args.action == "validate":
        problems = validate_path(args.trace)
        if problems:
            for problem in problems:
                print(problem)
            return 1
        print(f"{args.trace}: all events valid")
        return 0
    # Summarize must degrade gracefully: a missing, empty, or mid-write
    # truncated trace gets a clear message and exit 1, not a traceback.
    try:
        events = read_events(args.trace, skip_partial_tail=True)
    except OSError as exc:
        print(f"trace summarize: cannot read {args.trace}: {exc}")
        return 1
    except ValueError as exc:
        print(f"trace summarize: {args.trace} is not a valid trace: {exc}")
        return 1
    if not events:
        print(
            f"trace summarize: {args.trace} contains no complete events "
            "(empty or still being written)"
        )
        return 1
    print(render_summary(events, max_depth=args.max_depth or None))
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    """Tail a run's event bus: progress, ETA, stragglers, /metrics."""
    import threading
    import time

    from .telemetry.events import discover_event_files
    from .telemetry.live import (
        MetricsEndpoint,
        RunMonitor,
        render_status,
        update_metrics,
    )

    if args.self_scrape and args.metrics_port is None:
        print("monitor: --self-scrape requires --metrics-port")
        return 1
    files = discover_event_files(args.run_dir)
    if not files:
        print(
            f"monitor: no event files (events*.jsonl) under "
            f"{args.run_dir}; run with --events-dir to emit them"
        )
        return 1
    monitor = RunMonitor(args.run_dir)
    lock = threading.Lock()

    def render() -> str:
        # Scrapes arrive on endpoint threads while the main loop polls.
        with lock:
            monitor.poll()
            return update_metrics(monitor.state).render_prometheus()

    endpoint = None
    if args.metrics_port is not None:
        endpoint = MetricsEndpoint(render, port=args.metrics_port).start()
        print(
            f"serving metrics on http://{endpoint.host}:{endpoint.port}"
            "/metrics"
        )
    try:
        if args.self_scrape:
            import urllib.request

            assert endpoint is not None
            url = f"http://{endpoint.host}:{endpoint.port}/metrics"
            with urllib.request.urlopen(url, timeout=10) as response:
                body = response.read().decode("utf-8")
            print(body, end="")
            return 0 if "repro_monitor_cells_total" in body else 1
        while True:
            with lock:
                monitor.poll()
                status = render_status(
                    monitor.state,
                    straggler_factor=args.straggler_factor,
                )
            print(status)
            if args.once or monitor.state.finished:
                break
            print()
            time.sleep(args.interval)
    finally:
        if endpoint is not None:
            if args.serve_seconds > 0:  # pragma: no cover - interactive
                time.sleep(args.serve_seconds)
            endpoint.stop()
    return 0


def cmd_cost(args: argparse.Namespace) -> int:
    result = run_cost_comparison(_config(args), accuracy_drop=args.drop)
    print(
        f"analytic: {result.analytic_total_seconds:.1f}s, "
        f"{result.analytic_accuracy_evaluations} accuracy evals\n"
        f"search:   {result.search_seconds:.1f}s, "
        f"{result.search_accuracy_evaluations} accuracy evals\n"
        f"ratio: {result.evaluation_ratio:.1f}x"
    )
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("zoo", help="list the model zoo")
    p.set_defaults(func=cmd_zoo)

    p = sub.add_parser(
        "check",
        help="static graph/allocation verifier + numerical lint pass",
        description="Static analysis: verify a model pipeline (graph "
        "structure, shapes, dtypes, ranges, allocation audits) or lint "
        "source files.  See docs/static-analysis.md.",
    )
    add_check_arguments(p)
    p.set_defaults(func=run_check)

    p = sub.add_parser("profile", help="measure lambda/theta (Sec. V-A)")
    _add_common(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("optimize", help="full pipeline for one objective")
    _add_common(p)
    p.add_argument("--objective", choices=["input", "mac"], default="input")
    p.add_argument("--drop", type=float, default=0.01)
    p.add_argument(
        "--weights", action="store_true", help="also search weight bitwidth"
    )
    p.add_argument(
        "--output", default="", help="write the allocation JSON to this path"
    )
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser(
        "run-quantized",
        help="execute an allocation on the integer low-bit runtime",
        description="Run a bitwidth allocation for real: quantize "
        "weights into bit-packed buffers, execute conv/dense layers as "
        "integer GEMMs with per-layer requantization, and report "
        "measured vs analytic accuracy drop and activation traffic.  "
        "Without --allocation the full optimization pipeline runs "
        "first.  Exit 1 when the measured drop exceeds --drop.  See "
        "docs/quantized-execution.md.",
    )
    _add_common(p)
    p.add_argument(
        "--allocation",
        default="",
        metavar="FILE",
        help="allocation JSON from `optimize --output` "
        "(default: run the optimizer first)",
    )
    p.add_argument("--objective", choices=["input", "mac"], default="input")
    p.add_argument(
        "--drop",
        type=float,
        default=0.01,
        help="relative accuracy-drop budget the measured drop is "
        "checked against",
    )
    p.add_argument(
        "--weight-bits",
        type=int,
        default=16,
        help="packed weight word length (2-16)",
    )
    p.add_argument(
        "--backend",
        choices=["reference", "fast", "numba"],
        default="fast",
        help="integer-GEMM backend (bit-identical; numba needs numba)",
    )
    p.add_argument(
        "--no-pack",
        action="store_true",
        help="skip moving activations through packed buffers "
        "(results identical; traffic counted analytically)",
    )
    p.add_argument("--batch-size", type=int, default=64)
    p.set_defaults(func=cmd_run_quantized)

    p = sub.add_parser("table2", help="regenerate Table II")
    _add_common(p)
    p.add_argument("--drop", type=float, default=0.01)
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("table3", help="regenerate Table III rows")
    _add_common(p)
    p.add_argument("--models", default="", help="comma-separated zoo names")
    p.add_argument("--drops", default="0.01,0.05")
    p.add_argument("--baseline", choices=["uniform", "search"], default="uniform")
    p.set_defaults(func=cmd_table3)

    p = sub.add_parser("fig2", help="linearity measurement (Fig. 2)")
    _add_common(p)
    p.set_defaults(func=cmd_fig2)

    p = sub.add_parser("fig3", help="accuracy vs sigma (Fig. 3)")
    _add_common(p)
    p.set_defaults(func=cmd_fig3)

    p = sub.add_parser("fig4", help="NiN energy anatomy (Fig. 4)")
    _add_common(p)
    p.add_argument("--drop", type=float, default=0.05)
    p.set_defaults(func=cmd_fig4)

    p = sub.add_parser(
        "trace",
        help="summarize or validate a JSONL telemetry trace",
        description="Inspect a trace produced with --trace-out: "
        "'summarize' renders the span tree with total/self times; "
        "'validate' schema-checks every event.  See "
        "docs/observability.md.",
    )
    p.add_argument("action", choices=["summarize", "validate"])
    p.add_argument("trace", help="path to the .jsonl trace file")
    p.add_argument(
        "--max-depth",
        type=int,
        default=0,
        help="limit the rendered span tree depth (0 = unlimited)",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "monitor",
        help="live view of an in-progress run's event bus",
        description="Tail the events*.jsonl files a run writes with "
        "--events-dir and render progress, ETA, straggler cells, cache "
        "hit rate, and failures.  --metrics-port serves the same state "
        "as a Prometheus text exposition at /metrics.  Safe to run "
        "while the emitting process is mid-write.  See "
        "docs/observability.md.",
    )
    p.add_argument(
        "run_dir",
        help="directory containing events*.jsonl (an --events-dir), "
        "or one event file",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="render a single status block and exit (CI / scripting)",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="poll interval for the live view (default 2s)",
    )
    p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve GET /metrics on this port (0 = ephemeral)",
    )
    p.add_argument(
        "--serve-seconds",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the metrics endpoint up this long after the view "
        "exits (default 0)",
    )
    p.add_argument(
        "--self-scrape",
        action="store_true",
        help="scrape this monitor's own /metrics once, print the "
        "payload, and exit (CI smoke; requires --metrics-port)",
    )
    p.add_argument(
        "--straggler-factor",
        type=float,
        default=3.0,
        metavar="X",
        help="flag running cells slower than X times the mean cell "
        "time (default 3)",
    )
    p.set_defaults(func=cmd_monitor)

    p = sub.add_parser(
        "bench",
        help="benchmark regression ledger: record / report",
        description="Maintain a history of BENCH_*.json payloads keyed "
        "by manifest provenance (git SHA, config hash) and flag "
        "wall-clock / traffic regressions between the two most recent "
        "entries of each series.  'report' is non-blocking by default; "
        "--strict exits 1 on findings.  See docs/observability.md.",
    )
    add_bench_arguments(p)
    p.set_defaults(func=run_bench)

    p = sub.add_parser("cost", help="analytic vs search cost (Sec. VI-A)")
    _add_common(p)
    p.add_argument("--drop", type=float, default=0.05)
    p.set_defaults(func=cmd_cost)

    p = sub.add_parser(
        "sweep",
        help="incremental grid sweep with cross-cell work sharing",
        description="Run a (model x drop x objective) grid through one "
        "optimizer per model, sharing profiles, stats, and sigma "
        "evaluations across cells — and across runs with --cache-dir.  "
        "Bit-identical to looping `repro optimize` per cell.  See "
        "docs/caching.md.",
    )
    _add_common(p)
    p.add_argument(
        "--models",
        default="",
        help="comma-separated zoo names (default: --model)",
    )
    p.add_argument("--drops", default="0.01,0.05")
    p.add_argument("--objectives", default="input,mac")
    p.add_argument("--output", default="", help="write cell JSON here")
    p.add_argument(
        "--keep-going",
        action="store_true",
        help=(
            "record a crashing cell as a structured failed row and run "
            "the remaining cells instead of aborting the grid"
        ),
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "fan the grid out to N local work-stealing worker "
            "processes coordinating through lease files (rows are "
            "bit-identical for any N; see docs/distributed.md)"
        ),
    )
    p.add_argument(
        "--run-dir",
        default="",
        metavar="DIR",
        help=(
            "distributed run directory (plan, leases, published cells, "
            "per-worker event shards); reusing a DIR resumes it cell-"
            "granularly, and `repro worker DIR` attaches more workers "
            "— including from other hosts sharing the filesystem"
        ),
    )
    p.add_argument(
        "--lease-ttl",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help=(
            "seconds without a heartbeat before a worker's cell lease "
            "expires and the cell is re-dispatched"
        ),
    )
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "worker",
        help="attach a work-stealing worker to a distributed sweep",
        description="Attach one worker to an existing distributed run "
        "directory (created by `repro sweep --workers N --run-dir "
        "DIR`): scan the plan's pending cells, claim one at a time via "
        "an atomic lease file, execute it through the scheduler cell "
        "path, publish the row atomically, and exit when every cell "
        "has a published result.  Run any number of these, on any "
        "host sharing the directory.  See docs/distributed.md.",
    )
    p.add_argument("run_dir", help="distributed run directory")
    p.add_argument(
        "--worker-id",
        default="",
        help="stable worker name (default: generated from pid)",
    )
    p.add_argument(
        "--lease-ttl",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="lease TTL (must match across workers of one run)",
    )
    p.add_argument(
        "--heartbeat",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="heartbeat period (default: TTL / 4)",
    )
    p.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="idle rescan period while other workers hold all leases",
    )
    p.add_argument(
        "--max-cells",
        type=int,
        default=0,
        metavar="N",
        help="claim at most N cells, then exit (0 = unlimited)",
    )
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "ablate",
        help="ablation & scenario-robustness campaign",
        description="Run the ablation matrix (baseline + one variant "
        "per toggled component) and optional scenario cells for the "
        "chosen models, with every cell fault-isolated: a crash "
        "becomes a structured failed row and the rest of the campaign "
        "completes.  --resume DIR re-runs only failed/missing cells; "
        "--strict restores fail-fast.  See docs/robustness.md.",
    )
    _add_common(p)
    p.add_argument(
        "--models",
        default="",
        help="comma-separated zoo names (default: --model)",
    )
    p.add_argument("--drop", type=float, default=0.05)
    p.add_argument("--objective", choices=["input", "mac"], default="input")
    p.add_argument(
        "--components",
        default="",
        help=(
            "comma-separated component toggles to ablate "
            "(fallback,xi,kernels,cache,scheme,backend; default all)"
        ),
    )
    p.add_argument(
        "--scenarios",
        default="",
        help=(
            "comma-separated scenario names to run "
            "(e.g. input:noise,weights:noise,topology:tiny,drop:tight)"
        ),
    )
    p.add_argument(
        "--chaos-cell",
        action="append",
        default=[],
        metavar="CELL_ID",
        help=(
            "inject a simulated crash into this cell (repeatable); "
            "proves the fault-isolation contract end-to-end"
        ),
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="tiny substrate sizes for CI smoke runs",
    )
    p.add_argument(
        "--output", default="", help="write the campaign report JSON here"
    )
    p.set_defaults(func=cmd_ablate)

    p = sub.add_parser(
        "cache",
        help="persistent result-cache stats / GC / verify",
        description="Operate on a persistent result cache directory: "
        "'stats' prints entry/byte counts per namespace, 'gc' evicts "
        "least-recently-used entries down to --max-bytes, 'verify' "
        "re-checksums every entry (exit 1 on corruption).  See "
        "docs/caching.md.",
    )
    add_cache_arguments(p)
    p.set_defaults(func=run_cache)

    p = sub.add_parser("suite", help="run the full evaluation suite")
    _add_common(p)
    p.add_argument("--only", default="", help="comma-separated experiments")
    p.add_argument("--models", default="", help="models for the table3 part")
    p.add_argument("--output", default="", help="export JSON artifacts here")
    p.set_defaults(func=cmd_suite)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
