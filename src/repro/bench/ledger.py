"""The benchmark regression ledger.

``BENCH_*.json`` payloads are self-describing: the benchmark drivers
embed a run manifest (git SHA, config hash — see
:mod:`repro.telemetry.manifest`) next to nested result objects whose
numeric leaves carry performance-relevant names (``seconds``,
``*_bytes``, ``speedup``, ...).  The ledger exploits exactly that:

* :func:`extract_metrics` flattens a payload into dotted-path →
  float metrics, keeping only leaves whose path names a performance
  quantity (wall-clock, traffic, throughput) — so new benchmarks join
  the ledger without per-benchmark schemas.
* :class:`BenchLedger` appends :class:`LedgerEntry` records (one per
  recorded payload) to a JSON history file, keyed by
  ``(benchmark, config_hash)`` so only like-for-like configurations
  are ever compared.
* :func:`detect_regressions` compares each key's newest entry with its
  predecessor and flags metrics that moved in the *bad* direction
  (slower, more bytes, less speedup) beyond a per-family threshold.

The comparison key deliberately includes the config hash: a benchmark
re-run with different sizes is a new series, not a regression.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

PathLike = Union[str, Path]

#: Bumped whenever the ledger file layout changes incompatibly.
LEDGER_SCHEMA_VERSION = 1

#: Default relative-change thresholds per metric family.  ``wall``
#: guards wall-clock/latency metrics, ``traffic`` guards bytes-moved
#: metrics, ``throughput`` guards higher-is-better rates.
DEFAULT_THRESHOLDS: Dict[str, float] = {
    "wall": 0.25,
    "traffic": 0.10,
    "throughput": 0.25,
}

#: Path components that mark a numeric leaf as a tracked metric,
#: mapped to (family, direction).  Direction says which way is *bad*.
_METRIC_HINTS: Tuple[Tuple[str, str, str], ...] = (
    ("seconds", "wall", "higher_is_worse"),
    ("elapsed", "wall", "higher_is_worse"),
    ("latency", "wall", "higher_is_worse"),
    ("bytes", "traffic", "higher_is_worse"),
    ("traffic", "traffic", "higher_is_worse"),
    ("speedup", "throughput", "lower_is_worse"),
    ("qps", "throughput", "lower_is_worse"),
    ("throughput", "throughput", "lower_is_worse"),
)

#: Path components that disqualify a leaf even when a hint matches
#: (identity/config numbers, not measurements).
_EXCLUDED_COMPONENTS = ("manifest", "config", "threshold", "tolerance", "min_")


def _classify(path: str) -> Optional[Tuple[str, str]]:
    """(family, direction) for a dotted metric path, or None."""
    lowered = path.lower()
    for component in _EXCLUDED_COMPONENTS:
        if component in lowered:
            return None
    for hint, family, direction in _METRIC_HINTS:
        if hint in lowered:
            return family, direction
    return None


def metric_family(path: str) -> Optional[str]:
    """The threshold family of a metric path (wall/traffic/throughput)."""
    classified = _classify(path)
    return None if classified is None else classified[0]


def metric_direction(path: str) -> Optional[str]:
    """Which way is bad for this metric (``higher_is_worse`` or not)."""
    classified = _classify(path)
    return None if classified is None else classified[1]


def extract_metrics(
    payload: Mapping[str, Any], prefix: str = ""
) -> Dict[str, float]:
    """Flatten a benchmark payload into tracked dotted-path metrics.

    Lists index into the path (``models.0.seconds.quantized``) so
    multi-model payloads keep every series distinct.  Booleans are
    never metrics; non-finite values are dropped.
    """
    metrics: Dict[str, float] = {}

    def walk(node: Any, path: str) -> None:
        if isinstance(node, Mapping):
            for key in node:
                walk(node[key], f"{path}.{key}" if path else str(key))
            return
        if isinstance(node, (list, tuple)):
            for index, item in enumerate(node):
                walk(item, f"{path}.{index}" if path else str(index))
            return
        if isinstance(node, bool) or not isinstance(node, (int, float)):
            return
        value = float(node)
        if value != value or value in (float("inf"), float("-inf")):
            return
        if _classify(path) is not None:
            metrics[path] = value

    walk(payload, prefix)
    return metrics


# ----------------------------------------------------------------------
@dataclass
class LedgerEntry:
    """One recorded benchmark payload, reduced to provenance + metrics."""

    benchmark: str
    config_hash: str
    git_sha: Optional[str]
    created_at: str
    recorded_at: str
    source: str
    metrics: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "config_hash": self.config_hash,
            "git_sha": self.git_sha,
            "created_at": self.created_at,
            "recorded_at": self.recorded_at,
            "source": self.source,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LedgerEntry":
        return cls(
            benchmark=str(payload.get("benchmark", "unknown")),
            config_hash=str(payload.get("config_hash", "")),
            git_sha=(
                None
                if payload.get("git_sha") is None
                else str(payload["git_sha"])
            ),
            created_at=str(payload.get("created_at", "")),
            recorded_at=str(payload.get("recorded_at", "")),
            source=str(payload.get("source", "")),
            metrics={
                str(k): float(v)
                for k, v in dict(payload.get("metrics", {})).items()
            },
        )

    @property
    def series_key(self) -> Tuple[str, str]:
        """Entries compare only within (benchmark, config_hash)."""
        return (self.benchmark, self.config_hash)


def entry_from_payload(
    payload: Mapping[str, Any],
    source: str = "",
    recorded_at: Optional[str] = None,
) -> LedgerEntry:
    """Reduce one ``BENCH_*.json`` payload to a ledger entry.

    Provenance comes from the embedded manifest when present; payloads
    without one still record (keyed by an empty config hash) so older
    benchmark files remain ingestible.
    """
    manifest = payload.get("manifest")
    manifest = manifest if isinstance(manifest, Mapping) else {}
    benchmark = str(
        payload.get("benchmark")
        or manifest.get("model")
        or (Path(source).stem if source else "unknown")
    )
    return LedgerEntry(
        benchmark=benchmark,
        config_hash=str(manifest.get("config_hash", "")),
        git_sha=(
            None
            if manifest.get("git_sha") is None
            else str(manifest.get("git_sha"))
        ),
        created_at=str(manifest.get("created_at", "")),
        recorded_at=(
            recorded_at
            or datetime.now(timezone.utc).isoformat(timespec="seconds")
        ),
        source=str(source),
        metrics=extract_metrics(payload),
    )


class BenchLedger:
    """The on-disk benchmark history: a JSON file of ledger entries."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.entries: List[LedgerEntry] = []
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(
                f"ledger {self.path} is unreadable: {exc}"
            ) from exc
        if not isinstance(payload, Mapping):
            raise ValueError(f"ledger {self.path} is not a JSON object")
        schema = payload.get("schema_version")
        if schema != LEDGER_SCHEMA_VERSION:
            raise ValueError(
                f"ledger {self.path} has schema {schema!r}; "
                f"this build reads {LEDGER_SCHEMA_VERSION}"
            )
        self.entries = [
            LedgerEntry.from_dict(entry)
            for entry in payload.get("entries", [])
            if isinstance(entry, Mapping)
        ]

    def save(self) -> Path:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "entries": [entry.as_dict() for entry in self.entries],
        }
        # Write-then-rename: a crashed record never truncates history.
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        tmp.replace(self.path)
        return self.path

    def record(
        self,
        payload: Mapping[str, Any],
        source: str = "",
        recorded_at: Optional[str] = None,
    ) -> LedgerEntry:
        """Append one benchmark payload (call :meth:`save` to persist)."""
        entry = entry_from_payload(
            payload, source=source, recorded_at=recorded_at
        )
        self.entries.append(entry)
        return entry

    def series(self) -> Dict[Tuple[str, str], List[LedgerEntry]]:
        """Entries grouped by comparison key, in recorded order."""
        grouped: Dict[Tuple[str, str], List[LedgerEntry]] = {}
        for entry in self.entries:
            grouped.setdefault(entry.series_key, []).append(entry)
        return grouped


# ----------------------------------------------------------------------
@dataclass
class RegressionFinding:
    """One metric that moved the wrong way past its threshold."""

    benchmark: str
    config_hash: str
    metric: str
    family: str
    baseline: float
    current: float
    #: Relative change in the *bad* direction (always positive here).
    regression: float
    threshold: float
    baseline_sha: Optional[str]
    current_sha: Optional[str]

    def describe(self) -> str:
        sha = (self.current_sha or "n/a")[:10]
        base_sha = (self.baseline_sha or "n/a")[:10]
        return (
            f"{self.benchmark}: {self.metric} regressed "
            f"{self.regression:+.1%} (threshold {self.threshold:.0%}): "
            f"{self.baseline:.6g} @ {base_sha} -> "
            f"{self.current:.6g} @ {sha}"
        )


def _regression_amount(
    baseline: float, current: float, direction: str
) -> Optional[float]:
    """Relative worsening (positive = regressed), None if unmeasurable."""
    if baseline <= 0:
        return None
    change = (current - baseline) / baseline
    return change if direction == "higher_is_worse" else -change


def detect_regressions(
    ledger: BenchLedger,
    thresholds: Optional[Mapping[str, float]] = None,
    min_wall_seconds: float = 0.05,
) -> List[RegressionFinding]:
    """Compare each series' newest entry against its predecessor.

    ``thresholds`` maps metric family (``wall``/``traffic``/
    ``throughput``) to the maximum tolerated relative worsening.
    Wall-clock metrics where both measurements sit under
    ``min_wall_seconds`` are skipped — micro-timings are all noise.
    """
    limits = dict(DEFAULT_THRESHOLDS)
    limits.update(thresholds or {})
    findings: List[RegressionFinding] = []
    for (benchmark, config_hash), entries in sorted(
        ledger.series().items()
    ):
        if len(entries) < 2:
            continue
        previous, latest = entries[-2], entries[-1]
        for metric in sorted(latest.metrics):
            if metric not in previous.metrics:
                continue
            classified = _classify(metric)
            if classified is None:
                continue
            family, direction = classified
            baseline = previous.metrics[metric]
            current = latest.metrics[metric]
            if family == "wall" and (
                abs(baseline) < min_wall_seconds
                and abs(current) < min_wall_seconds
            ):
                continue
            amount = _regression_amount(baseline, current, direction)
            threshold = limits.get(family, limits["wall"])
            if amount is None or amount <= threshold:
                continue
            findings.append(
                RegressionFinding(
                    benchmark=benchmark,
                    config_hash=config_hash,
                    metric=metric,
                    family=family,
                    baseline=baseline,
                    current=current,
                    regression=amount,
                    threshold=threshold,
                    baseline_sha=previous.git_sha,
                    current_sha=latest.git_sha,
                )
            )
    findings.sort(key=lambda f: -f.regression)
    return findings


def render_report(
    ledger: BenchLedger, findings: List[RegressionFinding]
) -> List[str]:
    """Human report lines: series overview, then flagged regressions."""
    lines: List[str] = []
    grouped = ledger.series()
    lines.append(
        f"ledger: {len(ledger.entries)} entries across "
        f"{len(grouped)} series"
    )
    for (benchmark, config_hash), entries in sorted(grouped.items()):
        latest = entries[-1]
        sha = (latest.git_sha or "n/a")[:10]
        config = config_hash[:10] if config_hash else "no-config"
        lines.append(
            f"  {benchmark:<24} config {config:<10} "
            f"{len(entries):>3} entries  latest {sha} "
            f"({len(latest.metrics)} metrics)"
        )
    if findings:
        lines.append(f"{len(findings)} regression(s) flagged:")
        for finding in findings:
            lines.append("  " + finding.describe())
    else:
        lines.append("no regressions flagged")
    return lines
