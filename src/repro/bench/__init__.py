"""Benchmark regression ledger: ``repro bench record / report``.

The repo's performance claims live in ``BENCH_*.json`` payloads
(profiler scaling, cache warm-up, ablation campaigns, the quantized
runtime).  Each payload is a point measurement; the ledger
(:mod:`repro.bench.ledger`) turns the trajectory into a guarded time
series — entries keyed by manifest provenance (git SHA, config hash)
with wall-clock and traffic regressions flagged against configurable
thresholds.  CI runs ``record`` + ``report`` as a non-blocking step.
"""

from .ledger import (
    LEDGER_SCHEMA_VERSION,
    BenchLedger,
    LedgerEntry,
    RegressionFinding,
    detect_regressions,
    extract_metrics,
    metric_direction,
    metric_family,
    render_report,
)

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "BenchLedger",
    "LedgerEntry",
    "RegressionFinding",
    "detect_regressions",
    "extract_metrics",
    "metric_direction",
    "metric_family",
    "render_report",
]
