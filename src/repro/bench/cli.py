"""``repro bench {record,report}`` — the benchmark regression ledger."""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict

from .ledger import (
    DEFAULT_THRESHOLDS,
    BenchLedger,
    detect_regressions,
    render_report,
)

DEFAULT_LEDGER = "bench-ledger.json"


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "action",
        choices=["record", "report"],
        help=(
            "record: ingest BENCH_*.json payloads into the ledger; "
            "report: compare each series' latest entry against its "
            "predecessor and flag regressions"
        ),
    )
    parser.add_argument(
        "payloads",
        nargs="*",
        metavar="BENCH.json",
        help="benchmark payload files to record (record action only)",
    )
    parser.add_argument(
        "--ledger",
        default=DEFAULT_LEDGER,
        metavar="FILE",
        help=f"ledger history file (default {DEFAULT_LEDGER})",
    )
    parser.add_argument(
        "--wall-threshold",
        type=float,
        default=DEFAULT_THRESHOLDS["wall"],
        metavar="RATIO",
        help=(
            "tolerated relative wall-clock worsening "
            f"(default {DEFAULT_THRESHOLDS['wall']:g})"
        ),
    )
    parser.add_argument(
        "--traffic-threshold",
        type=float,
        default=DEFAULT_THRESHOLDS["traffic"],
        metavar="RATIO",
        help=(
            "tolerated relative traffic/bytes worsening "
            f"(default {DEFAULT_THRESHOLDS['traffic']:g})"
        ),
    )
    parser.add_argument(
        "--throughput-threshold",
        type=float,
        default=DEFAULT_THRESHOLDS["throughput"],
        metavar="RATIO",
        help=(
            "tolerated relative speedup/QPS worsening "
            f"(default {DEFAULT_THRESHOLDS['throughput']:g})"
        ),
    )
    parser.add_argument(
        "--min-wall-seconds",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="ignore wall metrics where both sides are below this",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help=(
            "report: exit 1 when regressions are flagged (the default "
            "is non-blocking: report and exit 0)"
        ),
    )


def run_bench(args: argparse.Namespace) -> int:
    ledger = BenchLedger(args.ledger)
    if args.action == "record":
        if not args.payloads:
            print("bench record: no payload files given")
            return 1
        for name in args.payloads:
            path = Path(name)
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                print(f"bench record: cannot read {path}: {exc}")
                return 1
            entry = ledger.record(payload, source=path.name)
            print(
                f"recorded {entry.benchmark} "
                f"({len(entry.metrics)} metrics, "
                f"git {(entry.git_sha or 'n/a')[:10]}, "
                f"config {entry.config_hash[:10] or 'n/a'})"
            )
        ledger.save()
        print(f"ledger: {len(ledger.entries)} entries in {ledger.path}")
        return 0
    thresholds: Dict[str, float] = {
        "wall": args.wall_threshold,
        "traffic": args.traffic_threshold,
        "throughput": args.throughput_threshold,
    }
    findings = detect_regressions(
        ledger,
        thresholds=thresholds,
        min_wall_seconds=args.min_wall_seconds,
    )
    for line in render_report(ledger, findings):
        print(line)
    if findings and args.strict:
        return 1
    return 0
