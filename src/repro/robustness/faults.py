"""Structured failure records for fault-isolated campaign cells.

When a campaign cell raises, aborting the whole run would throw away
every finished cell and hide which *stage* broke.  Instead the runner
converts the exception into a :class:`FailureRecord`: the error class,
a pipeline stage inferred from the traceback, and a short digest of the
traceback frames so identical failures can be grouped across cells and
across runs without shipping full tracebacks around.

This module depends only on the standard library and the error
hierarchy, so both :mod:`repro.experiments.scheduler` and the
robustness runner can import it without cycles.
"""

from __future__ import annotations

import hashlib
import traceback
from dataclasses import dataclass
from types import TracebackType
from typing import Dict, List, Optional, Tuple

#: Traceback path fragments mapped to pipeline stages, checked in
#: order; the *deepest* matching frame wins, so an allocator error
#: raised while validating still classifies as "allocation".
_STAGE_MARKERS: Tuple[Tuple[str, str], ...] = (
    ("analysis/profiler", "profiling"),
    ("engine/", "profiling"),
    ("analysis/sigma_search", "sigma_search"),
    ("optimize/", "allocation"),
    ("weights/", "weight_search"),
    ("models/evaluate", "validation"),
    ("nn/statistics", "stats"),
    ("resilience/state", "resume"),
    ("cache/", "cache"),
    ("pipeline/", "pipeline"),
    ("models/", "context"),
    ("data/", "context"),
    ("nn/", "context"),
)

#: Maximum characters of the error message kept in a record.
_MESSAGE_LIMIT = 500


@dataclass(frozen=True)
class FailureRecord:
    """A classified cell failure, compact enough to persist per cell."""

    error_class: str
    message: str
    #: Pipeline stage inferred from the traceback ("profiling",
    #: "sigma_search", "allocation", "validation", "context", ...;
    #: "unknown" when no repro frame is on the stack).
    stage: str
    #: 12-hex-char digest over the repro traceback frames
    #: (file basename, line, function) — stable across hosts and
    #: working directories, so equal digests mean equal failure paths.
    traceback_digest: str

    def as_dict(self) -> Dict[str, str]:
        return {
            "error_class": self.error_class,
            "error_message": self.message,
            "stage": self.stage,
            "traceback_digest": self.traceback_digest,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, str]) -> "FailureRecord":
        return cls(
            error_class=str(payload["error_class"]),
            message=str(payload["error_message"]),
            stage=str(payload["stage"]),
            traceback_digest=str(payload["traceback_digest"]),
        )


def _frames(tb: Optional[TracebackType]) -> List[traceback.FrameSummary]:
    return traceback.extract_tb(tb) if tb is not None else []


def _normalize(path: str) -> str:
    return path.replace("\\", "/")


def _stage_of(frames: List[traceback.FrameSummary], hint: str) -> str:
    stage = hint or "unknown"
    for frame in frames:  # deepest matching frame decides
        path = _normalize(frame.filename)
        if "/repro/" not in path and not path.startswith("repro/"):
            continue
        for marker, name in _STAGE_MARKERS:
            if marker in path:
                stage = name
                break
    return stage


def _digest(frames: List[traceback.FrameSummary]) -> str:
    parts = []
    for frame in frames:
        path = _normalize(frame.filename)
        basename = path.rsplit("/", 1)[-1]
        parts.append(f"{basename}:{frame.lineno}:{frame.name}")
    if not parts:
        parts = ["<no-traceback>"]
    joined = "\n".join(parts)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:12]


def classify_failure(
    exc: BaseException, stage_hint: str = ""
) -> FailureRecord:
    """Convert an exception into a stage-attributed failure record.

    ``stage_hint`` is used when the traceback contains no repro frames
    (e.g. an exception raised by a chaos hook before entering the
    pipeline).
    """
    frames = _frames(exc.__traceback__)
    message = str(exc)
    if len(message) > _MESSAGE_LIMIT:
        message = message[: _MESSAGE_LIMIT - 3] + "..."
    return FailureRecord(
        error_class=type(exc).__name__,
        message=message,
        stage=_stage_of(frames, stage_hint),
        traceback_digest=_digest(frames),
    )
