"""Campaign reporting: measured component importance + scenario verdicts.

The ablation matrix answers "does this component matter?" by
differencing each variant row against the baseline row of the same
model.  Three deltas are measured per variant:

``accuracy_delta``   validated accuracy, variant minus baseline,
``cost_delta``       effective bits under the campaign objective
                     (input-bandwidth or MAC-energy bits), variant
                     minus baseline — negative means the variant found
                     a *cheaper* allocation,
``wall_delta``       cell wall-clock, variant minus baseline.

Importance is ranked by a single score, ``|cost_delta| + 100 *
|accuracy_delta|`` (one accuracy point weighs as much as a full
effective bit); a variant that *failed* outranks every finished one —
a component whose removal crashes the pipeline is load-bearing by
definition.  A variant is flagged **harmful** when toggling the
component off both kept the accuracy constraint and saved effective
bits: the baseline would be better off without it.

Scenario rows get a verdict instead of a delta: ``ok``, ``degraded``
(the pipeline finished on its fallback path), ``miss`` (finished but
below the accuracy target), or ``failed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .runner import CampaignRow

#: Effective-bits saving below which a variant is measurement noise.
HARMFUL_BITS_THRESHOLD = 0.01

#: Rank weight of one accuracy point relative to one effective bit.
ACCURACY_WEIGHT = 100.0


@dataclass
class ImportanceEntry:
    """Measured importance of one matrix variant vs. its baseline."""

    component: str
    variant: str
    model: str
    status: str
    accuracy_delta: Optional[float]
    cost_delta: Optional[float]
    wall_delta: Optional[float]
    score: float
    #: The variant crashed: the component is load-bearing.
    critical: bool
    #: Removing the component kept the constraint and saved bits.
    harmful: bool

    def as_dict(self) -> Dict[str, Any]:
        return {
            "component": self.component,
            "variant": self.variant,
            "model": self.model,
            "status": self.status,
            "accuracy_delta": self.accuracy_delta,
            "cost_delta": self.cost_delta,
            "wall_delta": self.wall_delta,
            "score": self.score,
            "critical": self.critical,
            "harmful": self.harmful,
        }


@dataclass
class ScenarioEntry:
    """Verdict of one scenario cell."""

    scenario: str
    model: str
    status: str
    verdict: str
    validated_accuracy: Optional[float]
    target_accuracy: Optional[float]
    effective_bits: Optional[float]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "model": self.model,
            "status": self.status,
            "verdict": self.verdict,
            "validated_accuracy": self.validated_accuracy,
            "target_accuracy": self.target_accuracy,
            "effective_bits": self.effective_bits,
        }


@dataclass
class AblationReport:
    """Everything a finished campaign measured."""

    rows: List[CampaignRow] = field(default_factory=list)
    importance: List[ImportanceEntry] = field(default_factory=list)
    scenarios: List[ScenarioEntry] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    cache_counters: Dict[str, int] = field(default_factory=dict)
    cache_dir: Optional[str] = None
    manifest: Dict[str, Any] = field(default_factory=dict)
    #: Cells actually executed this run (resumed rows excluded).
    executed_cell_ids: List[str] = field(default_factory=list)

    @property
    def num_failed(self) -> int:
        return sum(1 for row in self.rows if row.status == "failed")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": 1,
            "rows": [row.as_dict() for row in self.rows],
            "importance": [entry.as_dict() for entry in self.importance],
            "scenarios": [entry.as_dict() for entry in self.scenarios],
            "elapsed_seconds": self.elapsed_seconds,
            "cache_counters": dict(self.cache_counters),
            "cache_dir": self.cache_dir,
            "manifest": dict(self.manifest),
            "executed_cell_ids": list(self.executed_cell_ids),
        }

    def lines(self) -> List[str]:
        """Human-readable campaign report."""
        out: List[str] = []
        if self.importance:
            out.append("component importance (most important first):")
            for entry in self.importance:
                out.append("  " + _importance_line(entry))
        if self.scenarios:
            out.append("scenario robustness:")
            for scenario in self.scenarios:
                out.append("  " + _scenario_line(scenario))
        failed = (
            f", {self.num_failed} failed" if self.num_failed else ""
        )
        resumed = sum(1 for row in self.rows if row.resumed)
        reused = f", {resumed} resumed" if resumed else ""
        hits = self.cache_counters.get("hits", 0)
        misses = self.cache_counters.get("misses", 0)
        out.append(
            f"{len(self.rows)} cells in {self.elapsed_seconds:.2f}s"
            f"{failed}{reused}; cache: {hits} hits / {misses} misses"
            + (f" ({self.cache_dir})" if self.cache_dir else " (off)")
        )
        for row in self.rows:
            if row.status != "failed" or row.failure is None:
                continue
            out.append(
                f"  FAILED {row.cell_id}: {row.failure.error_class} at "
                f"{row.failure.stage} ({row.failure.traceback_digest})"
            )
        return out


def _importance_line(entry: ImportanceEntry) -> str:
    if entry.critical:
        detail = "CRITICAL (variant failed)"
    else:
        detail = (
            f"d_acc={_fmt(entry.accuracy_delta, '+.4f')} "
            f"d_bits={_fmt(entry.cost_delta, '+.3f')} "
            f"d_wall={_fmt(entry.wall_delta, '+.2f')}s"
        )
        if entry.harmful:
            detail += " HARMFUL"
    return (
        f"{entry.component:<10} {entry.variant:<18} {entry.model:<10} "
        f"score={entry.score:8.3f}  {detail}"
    )


def _scenario_line(entry: ScenarioEntry) -> str:
    return (
        f"{entry.scenario:<16} {entry.model:<10} [{entry.verdict}] "
        f"acc={_fmt(entry.validated_accuracy, '.4f')} "
        f"target={_fmt(entry.target_accuracy, '.4f')} "
        f"bits={_fmt(entry.effective_bits, '.2f')}"
    )


def _fmt(value: Optional[float], spec: str) -> str:
    return "n/a" if value is None else format(value, spec)


# ----------------------------------------------------------------------
def _cost_bits(row: CampaignRow) -> Optional[float]:
    if row.objective == "mac":
        return row.effective_mac_bits
    return row.effective_input_bits


def _importance_entries(
    rows: Sequence[CampaignRow],
) -> List[ImportanceEntry]:
    baselines = {
        row.model: row
        for row in rows
        if row.kind == "component" and row.group == "" and row.status == "ok"
    }
    entries: List[ImportanceEntry] = []
    for row in rows:
        if row.kind != "component" or row.group == "":
            continue
        baseline = baselines.get(row.model)
        if row.status == "failed" or baseline is None:
            entries.append(
                ImportanceEntry(
                    component=row.group,
                    variant=row.variant,
                    model=row.model,
                    status=row.status,
                    accuracy_delta=None,
                    cost_delta=None,
                    wall_delta=None,
                    score=float("inf"),
                    critical=True,
                    harmful=False,
                )
            )
            continue
        accuracy_delta = _delta(
            row.validated_accuracy, baseline.validated_accuracy
        )
        cost_delta = _delta(_cost_bits(row), _cost_bits(baseline))
        wall_delta = row.elapsed_seconds - baseline.elapsed_seconds
        score = 0.0
        if cost_delta is not None:
            score += abs(cost_delta)
        if accuracy_delta is not None:
            score += ACCURACY_WEIGHT * abs(accuracy_delta)
        harmful = (
            cost_delta is not None
            and cost_delta <= -HARMFUL_BITS_THRESHOLD
            and row.meets_constraint is not False
        )
        entries.append(
            ImportanceEntry(
                component=row.group,
                variant=row.variant,
                model=row.model,
                status=row.status,
                accuracy_delta=accuracy_delta,
                cost_delta=cost_delta,
                wall_delta=wall_delta,
                score=score,
                critical=False,
                harmful=harmful,
            )
        )
    entries.sort(key=lambda entry: (-entry.score, entry.variant, entry.model))
    return entries


def _delta(
    variant: Optional[float], baseline: Optional[float]
) -> Optional[float]:
    if variant is None or baseline is None:
        return None
    return variant - baseline


def _scenario_entries(
    rows: Sequence[CampaignRow],
) -> List[ScenarioEntry]:
    entries: List[ScenarioEntry] = []
    for row in rows:
        if row.kind != "scenario":
            continue
        if row.status == "failed":
            verdict = "failed"
        elif row.degraded:
            verdict = "degraded"
        elif row.meets_constraint is False:
            verdict = "miss"
        else:
            verdict = "ok"
        entries.append(
            ScenarioEntry(
                scenario=row.group,
                model=row.model,
                status=row.status,
                verdict=verdict,
                validated_accuracy=row.validated_accuracy,
                target_accuracy=row.target_accuracy,
                effective_bits=_cost_bits(row),
            )
        )
    return entries


def build_report(
    rows: Sequence[CampaignRow],
    elapsed_seconds: float,
    manifest: Optional[Dict[str, Any]] = None,
    cache_dir: Optional[str] = None,
    executed_cell_ids: Optional[Sequence[str]] = None,
) -> AblationReport:
    """Assemble the campaign report from executed/resumed rows."""
    totals: Dict[str, int] = {}
    for row in rows:
        if row.resumed:
            continue  # counters were consumed by the original run
        for key, value in row.cache_counters.items():
            totals[key] = totals.get(key, 0) + value
    return AblationReport(
        rows=list(rows),
        importance=_importance_entries(rows),
        scenarios=_scenario_entries(rows),
        elapsed_seconds=elapsed_seconds,
        cache_counters=totals,
        cache_dir=cache_dir,
        manifest=dict(manifest or {}),
        executed_cell_ids=list(executed_cell_ids or []),
    )


__all__ = [
    "ACCURACY_WEIGHT",
    "HARMFUL_BITS_THRESHOLD",
    "AblationReport",
    "ImportanceEntry",
    "ScenarioEntry",
    "build_report",
]
