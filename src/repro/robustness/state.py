"""Resumable campaign state: persist finished cells, re-run the rest.

A campaign over N cells can die in cell k — a genuine crash, an
injected chaos fault, or an interrupt.  :class:`CampaignState`
checkpoints every finished row under one directory so ``repro ablate
--resume DIR`` re-executes only the cells that failed or never ran:

``<dir>/manifest.json``       campaign identity + format version
``<dir>/cells/<slug>.json``   one row per executed cell

The manifest pins a *campaign fingerprint* — a hash over the cell grid
and the base configuration (chaos injection excluded, so a campaign
crashed by chaos resumes cleanly without it).  Binding a directory
whose fingerprint differs raises :class:`~repro.errors.ResumeError`
rather than silently mixing rows from two different campaigns.

Rows are written atomically (tmp file + rename), following
:mod:`repro.resilience.state`, so a crash mid-write never leaves a
truncated row behind.  Only ``ok`` rows are reused on resume; ``failed``
rows are loaded for reporting but their cells re-execute.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Dict, Union

from ..errors import ResumeError
from .runner import CampaignRow

PathLike = Union[str, Path]

#: Bumped when the stored row/manifest format changes incompatibly.
CAMPAIGN_STATE_VERSION = 1


def _slug(cell_id: str) -> str:
    """Filesystem-safe file stem for a cell id (ids contain ``/``)."""
    return re.sub(r"[^A-Za-z0-9_.-]", "_", cell_id)


class CampaignState:
    """Versioned on-disk state for one ablation/robustness campaign."""

    def __init__(self, directory: PathLike):
        self.directory = Path(directory)
        self.cells_dir = self.directory / "cells"

    # -- manifest ------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    def bind(self, fingerprint: str) -> Dict[str, object]:
        """Create (or validate) the manifest for this campaign.

        A fresh directory gets a new manifest; an existing one must
        match both the format version and the campaign fingerprint,
        otherwise resuming would silently mix rows measured under a
        different grid or configuration.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        self.cells_dir.mkdir(exist_ok=True)
        if self.manifest_path.exists():
            manifest = self._read_manifest()
            if manifest.get("version") != CAMPAIGN_STATE_VERSION:
                raise ResumeError(
                    f"campaign state at {self.directory} has version "
                    f"{manifest.get('version')}; expected "
                    f"{CAMPAIGN_STATE_VERSION}"
                )
            if manifest.get("fingerprint") != fingerprint:
                raise ResumeError(
                    f"campaign state at {self.directory} belongs to "
                    f"campaign {manifest.get('fingerprint')!r}, not "
                    f"{fingerprint!r}; use a fresh --resume directory"
                )
            return manifest
        manifest: Dict[str, object] = {
            "version": CAMPAIGN_STATE_VERSION,
            "fingerprint": fingerprint,
        }
        self._atomic_write_json(self.manifest_path, manifest)
        return manifest

    def _read_manifest(self) -> Dict[str, object]:
        try:
            payload = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ResumeError(
                f"campaign manifest {self.manifest_path} is unreadable: "
                f"{exc}"
            ) from exc
        return dict(payload)

    @staticmethod
    def _atomic_write_json(path: Path, payload: Dict[str, object]) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        os.replace(tmp, path)

    # -- rows ----------------------------------------------------------
    def _row_path(self, cell_id: str) -> Path:
        return self.cells_dir / f"{_slug(cell_id)}.json"

    def save_row(self, row: CampaignRow) -> None:
        """Atomically persist one executed cell's row."""
        self.cells_dir.mkdir(parents=True, exist_ok=True)
        payload = row.as_dict()
        payload["version"] = CAMPAIGN_STATE_VERSION
        self._atomic_write_json(self._row_path(row.cell_id), payload)

    def load_rows(self) -> Dict[str, CampaignRow]:
        """Every persisted row on disk, keyed by cell id."""
        rows: Dict[str, CampaignRow] = {}
        if not self.cells_dir.exists():
            return rows
        for path in sorted(self.cells_dir.glob("*.json")):
            row = self._load_row_file(path)
            rows[row.cell_id] = row
        return rows

    @staticmethod
    def _load_row_file(path: Path) -> CampaignRow:
        try:
            payload = json.loads(path.read_text())
            if payload.get("version") != CAMPAIGN_STATE_VERSION:
                raise ResumeError(
                    f"campaign row {path} has version "
                    f"{payload.get('version')}; expected "
                    f"{CAMPAIGN_STATE_VERSION}"
                )
            return CampaignRow.from_dict(payload)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            raise ResumeError(
                f"campaign row {path} is corrupt: {exc}"
            ) from exc


__all__ = ["CAMPAIGN_STATE_VERSION", "CampaignState"]
