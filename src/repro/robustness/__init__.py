"""Robustness instrumentation: ablation matrices, scenarios, fault taxonomy.

The package turns the pipeline's robustness story into measurements:

* :mod:`~repro.robustness.faults` — exception classification
  (error class, pipeline stage, stable traceback digest) used by the
  sweep scheduler's ``keep_going`` boundary and the campaign runner,
* :mod:`~repro.robustness.matrix` — the ablation run matrix (baseline
  + one variant per toggled component),
* :mod:`~repro.robustness.scenarios` — substrate perturbations
  (input shift, weight noise, odd topologies, extreme drop targets),
* :mod:`~repro.robustness.runner` — fault-isolated execution of one
  campaign cell,
* :mod:`~repro.robustness.state` — resumable on-disk campaign state,
* :mod:`~repro.robustness.report` — measured component importance and
  scenario verdicts.

None of these modules import :mod:`repro.experiments` at import time
(the sweep scheduler imports :mod:`~repro.robustness.faults`, so a
module-level import back would be circular); the campaign driver lives
in :mod:`repro.experiments.ablate`.
"""

from .faults import FailureRecord, classify_failure
from .matrix import (
    COMPONENT_BUILDERS,
    DEFAULT_COMPONENTS,
    MatrixVariant,
    baseline_variant,
    build_matrix,
)
from .report import (
    AblationReport,
    ImportanceEntry,
    ScenarioEntry,
    build_report,
)
from .runner import (
    CampaignCell,
    CampaignRow,
    build_cell_context,
    cell_config,
    execute_cell,
)
from .scenarios import (
    DEFAULT_SCENARIOS,
    SCENARIOS,
    Scenario,
    build_scenario_network,
    perturb_dataset,
    perturb_network_weights,
    resolve_scenario,
)
from .state import CAMPAIGN_STATE_VERSION, CampaignState

__all__ = [
    "CAMPAIGN_STATE_VERSION",
    "COMPONENT_BUILDERS",
    "DEFAULT_COMPONENTS",
    "DEFAULT_SCENARIOS",
    "SCENARIOS",
    "AblationReport",
    "CampaignCell",
    "CampaignRow",
    "CampaignState",
    "FailureRecord",
    "ImportanceEntry",
    "MatrixVariant",
    "Scenario",
    "ScenarioEntry",
    "baseline_variant",
    "build_cell_context",
    "build_matrix",
    "build_report",
    "build_scenario_network",
    "cell_config",
    "classify_failure",
    "execute_cell",
    "perturb_dataset",
    "perturb_network_weights",
    "resolve_scenario",
]
