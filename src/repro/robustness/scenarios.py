"""Scenario generators: perturb the substrate, keep the pipeline.

Where the ablation matrix (:mod:`repro.robustness.matrix`) toggles
*pipeline* components, scenarios perturb the *problem* the pipeline is
given — shifted or noisy calibration data, perturbed weights, odd
topologies, extreme accuracy-drop targets — and run the unmodified
baseline configuration against it.  A robustness claim then reads as a
table of scenarios with measured verdicts instead of an assertion.

Scenario kinds:

``input``     affine shift / rescale / additive noise on the
              calibration + evaluation set (distribution shift between
              pretraining and optimization time),
``weights``   relative Gaussian perturbation of every parameter tensor
              (deployment drift, e.g. a stale or re-trained checkpoint),
``topology``  odd network shapes (single analyzed layer, very deep
              chain, one-channel bottleneck — the narrowest legal
              width, since zero-channel layers are rejected at build
              time),
``drop``      extreme accuracy-drop targets (far tighter and far looser
              than the paper's 1-5% operating range).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

import numpy as np

from ..data import Dataset
from ..errors import ReproError
from ..nn import Network, NetworkBuilder


@dataclass(frozen=True)
class Scenario:
    """One named substrate perturbation."""

    name: str
    kind: str
    description: str
    params: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ("input", "weights", "topology", "drop"):
            raise ReproError(
                f"scenario {self.name!r}: unknown kind {self.kind!r}"
            )

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "params": dict(self.params),
        }


#: Registry of named scenarios, in reporting order.
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="input:scale",
            kind="input",
            description="calibration/evaluation images rescaled 1.5x",
            params={"scale": 1.5},
        ),
        Scenario(
            name="input:shift",
            kind="input",
            description=(
                "constant brightness shift of +0.25 image std added to "
                "every calibration/evaluation pixel"
            ),
            params={"shift": 0.25},
        ),
        Scenario(
            name="input:noise",
            kind="input",
            description=(
                "additive Gaussian pixel noise at 0.25 image std on "
                "the calibration/evaluation set"
            ),
            params={"noise": 0.25},
        ),
        Scenario(
            name="weights:noise",
            kind="weights",
            description=(
                "every parameter tensor perturbed by Gaussian noise at "
                "1e-3 of its own std (checkpoint drift)"
            ),
            params={"rel_std": 1e-3},
        ),
        Scenario(
            name="topology:tiny",
            kind="topology",
            description="single analyzed layer (conv feature + dense head)",
            params={},
        ),
        Scenario(
            name="topology:deep",
            kind="topology",
            description="very deep narrow chain (12 analyzed convs + head)",
            params={"depth": 12.0},
        ),
        Scenario(
            name="topology:narrow",
            kind="topology",
            description=(
                "one-channel bottleneck mid-network (the zero-channel "
                "edge: the narrowest width the builder accepts)"
            ),
            params={},
        ),
        Scenario(
            name="drop:tight",
            kind="drop",
            description="near-zero tolerated accuracy drop (1e-4)",
            params={"accuracy_drop": 1e-4},
        ),
        Scenario(
            name="drop:loose",
            kind="drop",
            description="extreme 50% tolerated accuracy drop",
            params={"accuracy_drop": 0.5},
        ),
    )
}

DEFAULT_SCENARIOS: Tuple[str, ...] = tuple(SCENARIOS)


def resolve_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(SCENARIOS)
        raise ReproError(
            f"unknown scenario {name!r}; known: {known}"
        ) from None


# ----------------------------------------------------------------------
def perturb_dataset(
    dataset: Dataset, scenario: Scenario, seed: int
) -> Dataset:
    """A new dataset with the scenario's input perturbation applied.

    Deterministic per (scenario, seed); labels are untouched, so any
    accuracy movement is attributable to the distribution shift alone.
    """
    if scenario.kind != "input":
        raise ReproError(
            f"scenario {scenario.name!r} is not an input scenario"
        )
    images = np.array(dataset.images, dtype=np.float64, copy=True)
    std = float(images.std())
    scale = float(scenario.params.get("scale", 1.0))
    shift = float(scenario.params.get("shift", 0.0))
    noise = float(scenario.params.get("noise", 0.0))
    images *= scale
    images += shift * std
    if noise > 0.0:
        name_salt = int.from_bytes(
            hashlib.sha256(scenario.name.encode("utf-8")).digest()[:4],
            "big",
        )
        rng = np.random.default_rng((seed, name_salt))
        images += noise * std * rng.standard_normal(images.shape)
    return Dataset(images, dataset.labels, dataset.num_classes)


def perturb_network_weights(
    network: Network, rel_std: float, seed: int
) -> int:
    """Add relative Gaussian noise to every parameter tensor, in place.

    Each tensor gets noise at ``rel_std`` of its own standard
    deviation, from a stream seeded per (seed, tensor index) so the
    perturbation is deterministic and independent of iteration
    batching.  Returns the number of tensors perturbed.
    """
    if rel_std <= 0:
        raise ReproError("rel_std must be positive")
    perturbed = 0
    for index, layer in enumerate(network.layers):
        for attr in ("weight", "bias"):
            tensor = getattr(layer, attr, None)
            if not isinstance(tensor, np.ndarray) or tensor.size == 0:
                continue
            scale = float(tensor.std())
            if scale <= 0.0:
                scale = float(np.abs(tensor).max()) or 1.0
            rng = np.random.default_rng((seed, index, perturbed))
            tensor += rel_std * scale * rng.standard_normal(tensor.shape)
            perturbed += 1
    return perturbed


# ----------------------------------------------------------------------
def _build_tiny(num_classes: int, seed: int) -> Network:
    """One analyzed layer: the degenerate end of the allocator's domain."""
    b = NetworkBuilder("scenario-tiny", (3, 32, 32), seed=seed)
    b.conv("conv1", 8, 3, padding=1)
    b.global_pool("gap")
    b.dense("fc", num_classes)
    return b.build(analyzed_layers=["fc"])


def _build_deep(num_classes: int, seed: int, depth: int) -> Network:
    """A deep narrow conv chain: many analyzed layers, long error paths."""
    b = NetworkBuilder("scenario-deep", (3, 32, 32), seed=seed)
    analyzed = []
    for index in range(depth):
        name = f"conv{index + 1}"
        b.conv(name, 6, 3, padding=1)
        analyzed.append(name)
        if index == depth // 2:
            b.max_pool(f"pool{index + 1}", 2)
    b.global_pool("gap")
    b.dense("fc", num_classes)
    analyzed.append("fc")
    return b.build(analyzed_layers=analyzed)


def _build_narrow(num_classes: int, seed: int) -> Network:
    """A one-channel bottleneck: the narrowest legal layer width."""
    b = NetworkBuilder("scenario-narrow", (3, 32, 32), seed=seed)
    b.conv("conv1", 8, 3, padding=1)
    b.max_pool("pool1", 2)
    b.conv("bottleneck", 1, 3, padding=1)
    b.conv("conv3", 8, 3, padding=1)
    b.global_pool("gap")
    b.dense("fc", num_classes)
    return b.build(analyzed_layers=["conv1", "bottleneck", "conv3", "fc"])


def build_scenario_network(
    scenario: Scenario, num_classes: int, seed: int
) -> Network:
    """Construct the (untrained) network for a topology scenario."""
    if scenario.kind != "topology":
        raise ReproError(
            f"scenario {scenario.name!r} is not a topology scenario"
        )
    if scenario.name == "topology:tiny":
        return _build_tiny(num_classes, seed)
    if scenario.name == "topology:deep":
        depth = int(scenario.params.get("depth", 12.0))
        return _build_deep(num_classes, seed, depth)
    if scenario.name == "topology:narrow":
        return _build_narrow(num_classes, seed)
    raise ReproError(f"no builder for topology scenario {scenario.name!r}")
