"""Ablation run-matrix generation: baseline + one variant per component.

The pipeline's load-bearing components (solver fallback chain, xi
optimization, microtile kernels, persistent cache, accuracy-test
scheme, execution backend) each get one or two matrix variants that
toggle *only that component* relative to the baseline configuration.
Running the matrix and differencing each variant against the baseline
turns "this component matters" from an assertion into a measurement
(accuracy delta, cost-bits delta, wall-clock delta) — see
:mod:`repro.robustness.report`.

This module never imports :mod:`repro.experiments` at runtime (the
sweep scheduler imports :mod:`repro.robustness.faults`, so a runtime
import here would be circular); variants describe configurations as
override mappings applied via :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..experiments.common import ExperimentConfig


@dataclass(frozen=True)
class MatrixVariant:
    """One row of the ablation matrix: a named single-component toggle.

    ``config_overrides`` are :class:`~repro.experiments.common.
    ExperimentConfig` field replacements; ``parallel_overrides`` patch
    the derived :class:`~repro.config.ParallelSettings`;
    ``optimizer_overrides`` are extra :class:`~repro.pipeline.
    PrecisionOptimizer` keyword arguments.  ``allocator`` selects the
    final allocation call ("optimized" = the Eq. 8 xi solve, "equal" =
    the analytic equal-share scheme), and ``force_solver_failure``
    installs an always-failing Eq. 8 solver so the run exercises the
    fallback chain's degradation endgame.
    """

    name: str
    #: Component this variant toggles; "" marks the baseline.
    component: str
    description: str
    config_overrides: Mapping[str, object] = field(default_factory=dict)
    parallel_overrides: Mapping[str, object] = field(default_factory=dict)
    optimizer_overrides: Mapping[str, object] = field(default_factory=dict)
    allocator: str = "optimized"
    force_solver_failure: bool = False

    def __post_init__(self) -> None:
        if self.allocator not in ("optimized", "equal"):
            raise ReproError(
                f'variant {self.name!r}: allocator must be "optimized" '
                f'or "equal", not {self.allocator!r}'
            )

    @property
    def is_baseline(self) -> bool:
        return self.component == ""

    def apply(self, config: "ExperimentConfig") -> "ExperimentConfig":
        """The variant's experiment configuration."""
        if not self.config_overrides:
            return config
        return replace(config, **dict(self.config_overrides))

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "component": self.component,
            "description": self.description,
            "config_overrides": dict(self.config_overrides),
            "parallel_overrides": dict(self.parallel_overrides),
            "optimizer_overrides": dict(self.optimizer_overrides),
            "allocator": self.allocator,
            "force_solver_failure": self.force_solver_failure,
        }


def baseline_variant() -> MatrixVariant:
    return MatrixVariant(
        name="baseline",
        component="",
        description="every component at its production setting",
    )


# ----------------------------------------------------------------------
VariantBuilder = Callable[["ExperimentConfig"], List[MatrixVariant]]


def _fallback_variants(config: "ExperimentConfig") -> List[MatrixVariant]:
    return [
        MatrixVariant(
            name="fallback:off",
            component="fallback",
            description=(
                "solver fallback chain disabled; an Eq. 8 failure "
                "aborts the cell instead of degrading to equal-xi"
            ),
            optimizer_overrides={"fallback": False},
        ),
        MatrixVariant(
            name="fallback:forced",
            component="fallback",
            description=(
                "Eq. 8 solver forced to fail on every call; measures "
                "what the fallback chain's equal-xi endgame costs"
            ),
            force_solver_failure=True,
        ),
    ]


def _xi_variants(config: "ExperimentConfig") -> List[MatrixVariant]:
    return [
        MatrixVariant(
            name="xi:equal",
            component="xi",
            description=(
                "xi optimization off: equal error shares instead of "
                "the objective-weighted Eq. 8 solve"
            ),
            allocator="equal",
        )
    ]


def _kernel_variants(config: "ExperimentConfig") -> List[MatrixVariant]:
    return [
        MatrixVariant(
            name="kernels:reference",
            component="kernels",
            description=(
                "fast microtile replay kernels off; the engine uses "
                "the reference numpy path"
            ),
            parallel_overrides={"fast_kernels": False},
        )
    ]


def _cache_variants(config: "ExperimentConfig") -> List[MatrixVariant]:
    return [
        MatrixVariant(
            name="cache:off",
            component="cache",
            description="persistent content-addressed result cache off",
            config_overrides={"no_cache": True},
        )
    ]


def _scheme_variants(config: "ExperimentConfig") -> List[MatrixVariant]:
    other = "scheme2" if config.scheme == "scheme1" else "scheme1"
    return [
        MatrixVariant(
            name=f"scheme:{other}",
            component="scheme",
            description=(
                f"sigma-search accuracy test swapped to {other} "
                f"(baseline uses {config.scheme})"
            ),
            config_overrides={"scheme": other},
        )
    ]


def _backend_variants(config: "ExperimentConfig") -> List[MatrixVariant]:
    variants = []
    if config.jobs != 1:
        variants.append(
            MatrixVariant(
                name="backend:serial",
                component="backend",
                description="injection engine forced serial (jobs=1)",
                config_overrides={"jobs": 1},
            )
        )
    jobs = config.jobs if config.jobs > 1 else 2
    for backend in ("thread", "process"):
        if config.jobs > 1 and backend == config.parallel_backend:
            continue
        variants.append(
            MatrixVariant(
                name=f"backend:{backend}",
                component="backend",
                description=(
                    f"injection engine on the {backend} pool backend "
                    f"(jobs={jobs}); results must stay bit-identical"
                ),
                config_overrides={
                    "jobs": jobs,
                    "parallel_backend": backend,
                },
            )
        )
    return variants


#: Component registry: toggle name -> variant builder.
COMPONENT_BUILDERS: Dict[str, VariantBuilder] = {
    "fallback": _fallback_variants,
    "xi": _xi_variants,
    "kernels": _kernel_variants,
    "cache": _cache_variants,
    "scheme": _scheme_variants,
    "backend": _backend_variants,
}

#: Default component set, in reporting order.
DEFAULT_COMPONENTS: Tuple[str, ...] = tuple(COMPONENT_BUILDERS)


def build_matrix(
    config: "ExperimentConfig",
    components: Optional[Sequence[str]] = None,
) -> List[MatrixVariant]:
    """Baseline plus one variant per toggled component.

    ``components`` selects a subset of :data:`DEFAULT_COMPONENTS`
    (order preserved, unknown names rejected); None means all.
    """
    chosen = DEFAULT_COMPONENTS if components is None else tuple(components)
    unknown = [name for name in chosen if name not in COMPONENT_BUILDERS]
    if unknown:
        known = ", ".join(COMPONENT_BUILDERS)
        raise ReproError(
            f"unknown ablation components {unknown!r}; known: {known}"
        )
    variants = [baseline_variant()]
    for component in chosen:
        variants.extend(COMPONENT_BUILDERS[component](config))
    names = [variant.name for variant in variants]
    if len(set(names)) != len(names):
        raise ReproError(f"duplicate variant names in matrix: {names}")
    return variants
