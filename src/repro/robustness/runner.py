"""Fault-isolated execution of one campaign cell.

A campaign cell is one (variant, scenario, model, drop, objective)
point of an ablation/robustness campaign.  :func:`execute_cell` runs it
through the incremental sweep scheduler (one-cell grid) so the cell
inherits the scheduler's work sharing and — with ``keep_going`` — its
resilience boundary: an exception anywhere in the cell becomes a
structured ``failed`` row (:class:`~repro.robustness.faults.
FailureRecord`) instead of aborting the campaign.

Chaos injection is first-class: a cell marked ``chaos`` gets its
network wrapped in :class:`~repro.resilience.chaos.ChaosNetwork` with a
crash on the first forward event, which is how the test-suite and the
CI smoke prove the fault isolation end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, Optional

from ..errors import ReproError
from .faults import FailureRecord
from .matrix import MatrixVariant
from .scenarios import (
    Scenario,
    build_scenario_network,
    perturb_dataset,
    perturb_network_weights,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..experiments.common import ExperimentConfig, ExperimentContext
    from ..telemetry.session import Telemetry


@dataclass(frozen=True)
class CampaignCell:
    """One executable point of a campaign."""

    cell_id: str
    #: "component" (matrix variant) or "scenario" (substrate perturbed).
    kind: str
    variant: MatrixVariant
    scenario: Optional[Scenario]
    model: str
    accuracy_drop: float
    objective: str
    #: Inject a SimulatedCrash on the cell's first forward event.
    chaos: bool = False


@dataclass
class CampaignRow:
    """The recorded outcome of one cell — ``ok`` or structured ``failed``."""

    cell_id: str
    kind: str
    #: Component name for matrix cells, scenario name for scenario
    #: cells, "" for the baseline.
    group: str
    variant: str
    model: str
    accuracy_drop: float
    objective: str
    status: str
    elapsed_seconds: float
    #: True when the row was loaded from campaign state, not executed.
    resumed: bool = False
    sigma: Optional[float] = None
    effective_input_bits: Optional[float] = None
    effective_mac_bits: Optional[float] = None
    baseline_accuracy: Optional[float] = None
    validated_accuracy: Optional[float] = None
    target_accuracy: Optional[float] = None
    meets_constraint: Optional[bool] = None
    degraded: Optional[bool] = None
    bitwidths: Optional[Dict[str, int]] = None
    failure: Optional[FailureRecord] = None
    cache_counters: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "cell_id": self.cell_id,
            "kind": self.kind,
            "group": self.group,
            "variant": self.variant,
            "model": self.model,
            "accuracy_drop": self.accuracy_drop,
            "objective": self.objective,
            "status": self.status,
            "elapsed_seconds": self.elapsed_seconds,
            "resumed": self.resumed,
            "sigma": self.sigma,
            "effective_input_bits": self.effective_input_bits,
            "effective_mac_bits": self.effective_mac_bits,
            "baseline_accuracy": self.baseline_accuracy,
            "validated_accuracy": self.validated_accuracy,
            "target_accuracy": self.target_accuracy,
            "meets_constraint": self.meets_constraint,
            "degraded": self.degraded,
            "bitwidths": self.bitwidths,
            "cache_counters": dict(self.cache_counters),
        }
        payload["failure"] = (
            None if self.failure is None else self.failure.as_dict()
        )
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CampaignRow":
        failure = payload.get("failure")
        bitwidths = payload.get("bitwidths")
        return cls(
            cell_id=str(payload["cell_id"]),
            kind=str(payload["kind"]),
            group=str(payload["group"]),
            variant=str(payload["variant"]),
            model=str(payload["model"]),
            accuracy_drop=float(payload["accuracy_drop"]),
            objective=str(payload["objective"]),
            status=str(payload["status"]),
            elapsed_seconds=float(payload["elapsed_seconds"]),
            resumed=bool(payload.get("resumed", False)),
            sigma=_opt_float(payload.get("sigma")),
            effective_input_bits=_opt_float(
                payload.get("effective_input_bits")
            ),
            effective_mac_bits=_opt_float(payload.get("effective_mac_bits")),
            baseline_accuracy=_opt_float(payload.get("baseline_accuracy")),
            validated_accuracy=_opt_float(payload.get("validated_accuracy")),
            target_accuracy=_opt_float(payload.get("target_accuracy")),
            meets_constraint=_opt_bool(payload.get("meets_constraint")),
            degraded=_opt_bool(payload.get("degraded")),
            bitwidths=(
                None
                if bitwidths is None
                else {str(k): int(v) for k, v in dict(bitwidths).items()}
            ),
            failure=(
                None
                if failure is None
                else FailureRecord.from_dict(dict(failure))
            ),
            cache_counters={
                str(k): int(v)
                for k, v in dict(payload.get("cache_counters", {})).items()
            },
        )


def _opt_float(value: Any) -> Optional[float]:
    return None if value is None else float(value)


def _opt_bool(value: Any) -> Optional[bool]:
    return None if value is None else bool(value)


# ----------------------------------------------------------------------
def build_cell_context(
    config: "ExperimentConfig",
    cell: CampaignCell,
    telemetry: Optional["Telemetry"] = None,
) -> "ExperimentContext":
    """Build the (possibly perturbed, possibly chaos-wrapped) context.

    Mirrors :func:`repro.experiments.common.make_context` but applies,
    in order: topology substitution, pretraining, input/weight
    perturbation, chaos wrapping, then optimizer construction with the
    variant's parallel/optimizer overrides.  Contexts are never cached:
    every cell gets a fresh substrate so perturbations and chaos stay
    isolated.
    """
    from ..data import SyntheticImageNet
    from ..experiments.common import ExperimentContext
    from ..models import pretrained_model
    from ..models.calibrate import lsuv_calibrate
    from ..models.pretrain import pretrain
    from ..pipeline import PrecisionOptimizer

    scenario = cell.scenario
    source = SyntheticImageNet(
        num_classes=config.num_classes, seed=config.seed
    )
    if scenario is not None and scenario.kind == "topology":
        network = build_scenario_network(
            scenario, num_classes=config.num_classes, seed=config.seed
        )
        train, test = source.train_test(
            config.train_count, config.test_count
        )
        calibration = train.images[: min(32, len(train))]
        lsuv_calibrate(network, calibration)
        info = pretrain(network, train, test)
    else:
        network, train, test, info = pretrained_model(
            config.model,
            source=source,
            train_count=config.train_count,
            test_count=config.test_count,
            seed=config.seed,
        )
    if scenario is not None and scenario.kind == "input":
        test = perturb_dataset(test, scenario, seed=config.seed)
    if scenario is not None and scenario.kind == "weights":
        perturb_network_weights(
            network,
            rel_std=float(scenario.params.get("rel_std", 1e-3)),
            seed=config.seed,
        )
    substrate = network
    if cell.chaos:
        from ..resilience.chaos import ChaosNetwork, FaultSchedule

        substrate = ChaosNetwork(
            network, crash_schedule=FaultSchedule.once(0)
        )
    parallel = config.parallel_settings()
    if cell.variant.parallel_overrides:
        parallel = replace(
            parallel, **dict(cell.variant.parallel_overrides)
        )
    optimizer_kwargs: Dict[str, Any] = dict(
        cell.variant.optimizer_overrides
    )
    if cell.variant.force_solver_failure:
        from ..resilience.chaos import broken_solver

        optimizer_kwargs["xi_solver"] = broken_solver(fail_times=None)
    optimizer = PrecisionOptimizer(
        substrate,
        test,
        profile_settings=config.profile_settings(),
        search_settings=config.search_settings(),
        scheme=config.scheme,
        strict=config.strict,
        # Per-cell optimizer checkpointing stays off: campaigns resume
        # at cell granularity via CampaignState, and sharing one
        # RunState directory across variants would mix incompatible
        # sigma checkpoints (e.g. scheme1 vs scheme2).
        state_dir=None,
        parallel=parallel,
        telemetry=(
            telemetry
            if telemetry is not None
            else config.telemetry_settings()
        ),
        cache=config.resolved_cache_dir(),
        **optimizer_kwargs,
    )
    return ExperimentContext(
        config=config,
        network=network,
        train=train,
        test=test,
        pretrain_info=info,
        optimizer=optimizer,
    )


def _equal_scheme_optimize(optimizer: Any, objective: str, drop: float) -> Any:
    return optimizer.equal_scheme(accuracy_drop=drop)


def cell_config(
    cell: CampaignCell, base_config: "ExperimentConfig"
) -> "ExperimentConfig":
    """The cell's effective experiment configuration.

    The campaign state directory (``state_dir``) is stripped: it
    identifies the *campaign*, not any single optimizer run.
    """
    return cell.variant.apply(
        replace(base_config, model=cell.model, state_dir="")
    )


def execute_cell(
    cell: CampaignCell,
    base_config: "ExperimentConfig",
    keep_going: bool = True,
    telemetry: Optional["Telemetry"] = None,
) -> CampaignRow:
    """Run one cell to a :class:`CampaignRow` under a fault boundary.

    With ``keep_going`` (the campaign default) any exception inside the
    cell — including injected chaos — is classified and recorded as a
    ``failed`` row; ``keep_going=False`` (``--strict``) restores
    fail-fast and lets the exception propagate.
    """
    from ..experiments.scheduler import SweepSpec, run_sweep

    config = cell_config(cell, base_config)
    # The campaign owns this cell's lifecycle on the event bus; the
    # nested one-cell sweep must not announce a run of its own (it
    # would double-count cells in `repro monitor`).  Engine stage
    # events still flow through the shared telemetry session.
    config = replace(config, events_dir="")
    spec = SweepSpec(
        models=(cell.model,),
        accuracy_drops=(cell.accuracy_drop,),
        objectives=(cell.objective,),
    )
    optimize_fn = (
        _equal_scheme_optimize
        if cell.variant.allocator == "equal"
        else None
    )
    report = run_sweep(
        spec,
        config,
        keep_going=keep_going,
        context_factory=lambda cfg: build_cell_context(
            cfg, cell, telemetry=telemetry
        ),
        optimize_fn=optimize_fn,
    )
    group = cell.scenario.name if cell.scenario else cell.variant.component
    common: Dict[str, Any] = {
        "cell_id": cell.cell_id,
        "kind": cell.kind,
        "group": group,
        "variant": (
            cell.scenario.name if cell.scenario else cell.variant.name
        ),
        "model": cell.model,
        "accuracy_drop": cell.accuracy_drop,
        "objective": cell.objective,
        "cache_counters": dict(report.cache_counters),
    }
    if report.cells:
        result = report.cells[0]
        return CampaignRow(
            status="ok",
            elapsed_seconds=result.elapsed_seconds,
            sigma=result.sigma,
            effective_input_bits=result.effective_input_bits,
            effective_mac_bits=result.effective_mac_bits,
            baseline_accuracy=result.baseline_accuracy,
            validated_accuracy=result.validated_accuracy,
            target_accuracy=result.target_accuracy,
            meets_constraint=result.meets_constraint,
            degraded=result.degraded,
            bitwidths=dict(result.bitwidths),
            **common,
        )
    if not report.failures:
        raise ReproError(
            f"cell {cell.cell_id!r} produced neither a result nor a "
            "failure record"
        )
    failed = report.failures[0]
    return CampaignRow(
        status="failed",
        elapsed_seconds=failed.elapsed_seconds,
        failure=failed.failure,
        **common,
    )


__all__ = [
    "CampaignCell",
    "CampaignRow",
    "build_cell_context",
    "cell_config",
    "execute_cell",
]
