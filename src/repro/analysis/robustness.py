"""xi-sensitivity study (paper Sec. V-C and Fig. 3's error bars).

Different error-share vectors ``xi`` with the same total ``sigma_YL``
may yield slightly different accuracies.  The paper bounds the effect
by testing corner cases: one layer takes ``xi_K = 0.8`` and the rest
share the remaining 0.2 equally, for every choice of the heavy layer,
and reports the worst deviation from the equal scheme as an error bar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

import numpy as np

from ..data import Dataset
from ..errors import SearchError
from ..nn.graph import Network
from .injection import multi_layer_uniform_taps
from .profiler import LayerErrorProfile
from .sigma_search import deltas_for_sigma


def corner_xi_vectors(
    layer_names: List[str], heavy_share: float = 0.8
) -> List[Dict[str, float]]:
    """All corner cases: layer j heavy, others share the rest equally."""
    if not 0 < heavy_share < 1:
        raise SearchError("heavy_share must be in (0, 1)")
    count = len(layer_names)
    if count < 2:
        raise SearchError("corner cases need at least two layers")
    rest = (1.0 - heavy_share) / (count - 1)
    vectors = []
    for heavy in layer_names:
        vectors.append(
            {name: (heavy_share if name == heavy else rest) for name in layer_names}
        )
    return vectors


@dataclass
class RobustnessPoint:
    """Accuracy spread at one sigma_YL (a Fig. 3 point + error bar)."""

    sigma: float
    equal_scheme_accuracy: float
    min_accuracy: float
    max_accuracy: float

    @property
    def max_deviation(self) -> float:
        """Worst |corner - equal| accuracy difference (error-bar height)."""
        return max(
            abs(self.min_accuracy - self.equal_scheme_accuracy),
            abs(self.max_accuracy - self.equal_scheme_accuracy),
        )


def xi_robustness_study(
    network: Network,
    dataset: Dataset,
    profiles: Mapping[str, LayerErrorProfile],
    sigmas: List[float],
    heavy_share: float = 0.8,
    batch_size: int = 64,
    seed: int = 0,
) -> List[RobustnessPoint]:
    """Measure accuracy under equal and corner xi's for each sigma."""

    def accuracy_with_xi(sigma: float, xi: Mapping[str, float], salt: int) -> float:
        deltas = deltas_for_sigma(profiles, sigma, xi=xi)
        rng = np.random.default_rng((seed, salt))
        correct = 0
        total = 0
        for images, labels in dataset.batches(batch_size):
            taps = multi_layer_uniform_taps(deltas, rng)
            logits = network.forward(images, taps=taps)
            pred = np.argmax(logits.reshape(logits.shape[0], -1), axis=1)
            correct += int((pred == labels).sum())
            total += labels.size
        return correct / max(total, 1)

    names = list(profiles)
    corners = corner_xi_vectors(names, heavy_share)
    points = []
    for sigma in sigmas:
        equal_acc = accuracy_with_xi(sigma, {n: 1.0 / len(names) for n in names}, 0)
        corner_accs = [
            accuracy_with_xi(sigma, xi, index + 1)
            for index, xi in enumerate(corners)
        ]
        points.append(
            RobustnessPoint(
                sigma=sigma,
                equal_scheme_accuracy=equal_acc,
                min_accuracy=min(corner_accs),
                max_accuracy=max(corner_accs),
            )
        )
    return points
