"""Noise injection primitives (paper Sec. V-A, V-C).

Two kinds of injected error drive the whole method:

* **Uniform input noise** ``U[-Delta, Delta]`` added to a layer's input
  models the rounding error of a fixed-point format with boundary
  ``Delta``.  Exact zeros are preserved by default, because fixed point
  represents zero exactly ("Zero values at X_K are always accurately
  represented ... and hence not included", Fig. 1 caption).
* **Gaussian output noise** ``N(0, sigma^2)`` added to the final layer's
  logits — the paper's fast Scheme 2, justified because the accumulated
  output error is almost normal (Fig. 3 right histogram).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..nn.graph import Network, Tap


def uniform_noise_tap(
    delta: float,
    rng: np.random.Generator,
    preserve_zeros: bool = True,
) -> Tap:
    """Tap adding fresh ``U[-delta, delta]`` noise on every call."""

    def tap(x: np.ndarray) -> np.ndarray:
        noise = rng.uniform(-delta, delta, size=x.shape)
        if preserve_zeros:
            # Tolerance mask, not == 0.0: denormal activations (below
            # the smallest normal float64) are "zero as far as any
            # fixed-point format is concerned" and must not receive
            # unmasked noise, or the profiled error overstates sigma.
            noise = np.where(
                np.abs(x) < np.finfo(np.float64).tiny, 0.0, noise
            )
        return x + noise

    return tap


def multi_layer_uniform_taps(
    deltas: Dict[str, float],
    rng: np.random.Generator,
    preserve_zeros: bool = True,
) -> Dict[str, Tap]:
    """Independent uniform-noise taps for several layers (Scheme 1)."""
    return {
        name: uniform_noise_tap(delta, rng, preserve_zeros)
        for name, delta in deltas.items()
    }


def perturb_logits(
    logits: np.ndarray, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Scheme 2: add ``N(0, sigma^2)`` to the final-layer output."""
    if sigma <= 0:
        return logits
    return logits + rng.normal(0.0, sigma, size=logits.shape)


def injected_output_error(
    network: Network,
    cache,
    layer_name: str,
    delta: float,
    rng: np.random.Generator,
    preserve_zeros: bool = True,
) -> np.ndarray:
    """Error at layer L caused by injecting at one layer (delta_{Y_K->L}).

    Runs a partial forward pass from ``layer_name`` with uniform noise
    on its input and returns the change in the network output.
    """
    tap = uniform_noise_tap(delta, rng, preserve_zeros)
    perturbed = network.forward_from(cache, layer_name, tap)
    return perturbed - cache[network.output_name]


def output_error_std(
    network: Network,
    images: np.ndarray,
    deltas: Dict[str, float],
    rng: np.random.Generator,
    batch_size: int = 64,
    preserve_zeros: bool = True,
) -> float:
    """sigma_YL when injecting at several layers simultaneously (Eq. 6).

    Used to validate the variance-additivity assumption: the measured
    value should match ``sqrt(sum_K sigma_{Y_K->L}^2)``.
    """
    total_sq = 0.0
    count = 0
    for start in range(0, images.shape[0], batch_size):
        batch = images[start : start + batch_size]
        clean = network.forward(batch)
        taps = multi_layer_uniform_taps(deltas, rng, preserve_zeros)
        noisy = network.forward(batch, taps=taps)
        err = noisy - clean
        total_sq += float((err * err).sum())
        count += err.size
    return float(np.sqrt(total_sq / max(count, 1)))
