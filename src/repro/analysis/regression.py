"""Least-squares line fitting with fit-quality diagnostics.

The paper fits ``Delta_XK = lambda_K * sigma_{Y_K->L} + theta_K``
(Eq. 5) per layer and reports that predictions are "mostly with a < 5%
error ... in the worst case about 10%" (Sec. IV).  The diagnostics here
reproduce that check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ProfilingError


@dataclass(frozen=True)
class LinearFit:
    """A fitted line ``y = slope * x + intercept`` with diagnostics."""

    slope: float
    intercept: float
    r_squared: float
    max_relative_error: float

    def predict(self, x):
        """Evaluate the fitted line at x (scalar or array)."""
        return self.slope * np.asarray(x) + self.intercept


def fit_line(
    x: Sequence[float],
    y: Sequence[float],
    weighting: str = "relative",
) -> LinearFit:
    """Least squares fit of ``y = slope*x + intercept``.

    ``weighting="relative"`` (default) weights each point by ``1/y``, so
    every decade of the measured range contributes comparably — the
    regression minimizes *relative* prediction error, matching the
    paper's "< 5% of the target values" fit-quality criterion.
    ``weighting="none"`` is plain OLS.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ProfilingError("fit_line needs two equal-length 1-D arrays")
    if x.size < 2:
        raise ProfilingError("need at least 2 points for a line fit")
    if not (np.isfinite(x).all() and np.isfinite(y).all()):
        bad_x = int((~np.isfinite(x)).sum())
        bad_y = int((~np.isfinite(y)).sum())
        raise ProfilingError(
            f"cannot fit a line through non-finite data "
            f"({bad_x} bad x values, {bad_y} bad y values); an upstream "
            "measurement produced NaN/Inf"
        )
    # Guards the degenerate all-identical-x case: with no spread in x the
    # normal equations are singular and lstsq returns an arbitrary slope.
    # A relative tolerance (not == 0.0) also catches x vectors whose
    # spread is pure float rounding noise, which is just as singular.
    if float(x.std()) <= 1e-15 * max(float(np.abs(x).max()), 1.0):
        raise ProfilingError("cannot fit a line: x values are all identical")
    if weighting == "relative":
        weights = 1.0 / np.maximum(np.abs(y), 1e-300)
    elif weighting == "none":
        weights = np.ones_like(y)
    else:
        raise ProfilingError(f"unknown weighting {weighting!r}")
    design = np.stack([x * weights, weights], axis=1)
    solution, *_ = np.linalg.lstsq(design, y * weights, rcond=None)
    slope, intercept = float(solution[0]), float(solution[1])
    predicted = slope * x + intercept
    residual = y - predicted
    total = ((y - y.mean()) ** 2).sum()
    r_squared = 1.0 if total == 0 else float(1.0 - (residual**2).sum() / total)
    nonzero = np.abs(y) > 1e-300
    if nonzero.any():
        max_rel = float(np.max(np.abs(residual[nonzero] / y[nonzero])))
    else:
        max_rel = 0.0
    return LinearFit(
        slope=slope,
        intercept=intercept,
        r_squared=r_squared,
        max_relative_error=max_rel,
    )
