"""Per-layer lambda/theta profiling by error injection (paper Sec. V-A).

For each analyzed layer K the profiler:

1. records the exact network output Y_L on a profiling set,
2. injects ``U[-Delta, Delta]`` noise into layer K's input for ~20
   values of ``Delta``,
3. measures the std of the induced output error sigma_{Y_K->L}, and
4. fits the line ``Delta_XK = lambda_K * sigma_{Y_K->L} + theta_K``.

The paper reports 20 delta points and 50-200 images give stable fits.
Partial re-execution (Network.forward_from) makes step 2 cost only the
layers downstream of K.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cache import ResultCache, array_digest, make_key, network_digest
from ..config import ParallelSettings, ProfileSettings
from ..engine.campaign import InjectionEngine, enforce_finite_trial
from ..engine.rng import trial_rng
from ..errors import ProfilingError
from ..nn.graph import Network
from ..resilience.guards import (
    Diagnostic,
    check_finite_array,
    check_profile_fit,
    enforce,
)
from ..telemetry.session import Telemetry
from .injection import uniform_noise_tap
from .regression import LinearFit, fit_line


@dataclass
class LayerErrorProfile:
    """Measured cross-layer error relationship for one layer (Eq. 5)."""

    name: str
    lam: float
    theta: float
    r_squared: float
    max_relative_error: float
    deltas: np.ndarray = field(repr=False)
    sigmas: np.ndarray = field(repr=False)
    #: Guardrail findings for this layer's fit (empty on a clean fit).
    diagnostics: List[Diagnostic] = field(default_factory=list, repr=False)

    def delta_for_sigma(self, sigma: float) -> float:
        """Predict Delta_XK for a target sigma_{Y_K->L} (Eq. 5/7)."""
        return self.lam * sigma + self.theta

    @property
    def fit(self) -> LinearFit:
        """The regression as a :class:`LinearFit` (for diagnostics)."""
        return LinearFit(
            slope=self.lam,
            intercept=self.theta,
            r_squared=self.r_squared,
            max_relative_error=self.max_relative_error,
        )


@dataclass
class ProfileReport:
    """Profiles for every analyzed layer plus bookkeeping."""

    profiles: Dict[str, LayerErrorProfile]
    num_images: int
    elapsed_seconds: float
    #: Per-stage wall-clock seconds (plan/reference/replay/reduce/fit)
    #: from the engine's instrumentation; empty for reports assembled
    #: outside a campaign (e.g. resumed from disk).
    timings: Dict[str, float] = field(default_factory=dict)
    #: Fraction of total network MACs each layer's replay recomputes
    #: (``graphutils.replay_cost_fraction``).
    replay_fractions: Dict[str, float] = field(default_factory=dict)
    #: Worker count the campaign ran with (1 = serial).
    jobs: int = 1
    #: Layers whose (sq_sums, counts) came from the persistent result
    #: cache instead of a fresh injection campaign.
    cache_hits: int = 0

    def __getitem__(self, name: str) -> LayerErrorProfile:
        return self.profiles[name]

    def __iter__(self):
        return iter(self.profiles.values())

    def __len__(self) -> int:
        return len(self.profiles)

    def worst_fit(self) -> LayerErrorProfile:
        """The layer with the largest relative fit error (paper: <= ~10%)."""
        return max(self.profiles.values(), key=lambda p: p.max_relative_error)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        """Every guardrail finding across all layers."""
        found: List[Diagnostic] = []
        for profile in self.profiles.values():
            found.extend(profile.diagnostics)
        return found


class ErrorProfiler:
    """Measures lambda_K / theta_K for the analyzed layers of a network."""

    def __init__(
        self,
        network: Network,
        images: np.ndarray,
        settings: Optional[ProfileSettings] = None,
        batch_size: int = 32,
        delta_relative: bool = True,
        strict: bool = False,
        parallel: Optional[ParallelSettings] = None,
        use_engine: bool = True,
        telemetry: Optional[Telemetry] = None,
        cache: Optional[ResultCache] = None,
    ):
        self.network = network
        self.images = np.asarray(images, dtype=np.float64)
        self.settings = settings or ProfileSettings()
        self.batch_size = batch_size
        #: Engine execution knobs (jobs, backend, trial batching).
        self.parallel = parallel or ParallelSettings()
        #: Persistent result cache (None = off).  Each layer's raw
        #: (sq_sums, counts) campaign output is cached independently, so
        #: adding one layer to a profiled network only pays for the
        #: delta.  Keys exclude jobs/backend/trial batching: the engine
        #: guarantees bit-identical sums across those knobs.
        self.cache = cache
        self._net_digest: Optional[str] = None
        #: Observability session shared with the engine (spans/metrics
        #: only; never feeds back into the measurements).
        self.telemetry = Telemetry.create(telemetry)
        #: Route the campaign through the vectorized injection engine
        #: (the default).  ``False`` keeps the one-trial-at-a-time
        #: replay loop — same per-trial RNG streams, same bits — and
        #: exists as the benchmark baseline and a differential oracle
        #: for the engine.
        self.use_engine = use_engine
        #: When true, each layer's delta grid spans a fixed fraction of
        #: that layer's input scale (keeps the regression in the regime
        #: where the linear model holds for layers of any magnitude).
        self.delta_relative = delta_relative
        #: Strict mode escalates degenerate-fit diagnostics (lambda <= 0,
        #: near-zero R^2) to errors; otherwise they become warnings and
        #: are attached to the resulting profiles.  NaN/Inf measurements
        #: always raise.
        self.strict = strict
        if self.images.shape[0] < 1:
            raise ProfilingError("profiling needs at least one image")
        enforce(
            check_finite_array(self.images, "profiling", layer="<input>"),
            strict=True,
            context="profiling input images",
        )

    # ------------------------------------------------------------------
    def _network_digest(self) -> str:
        if self._net_digest is None:
            self._net_digest = network_digest(self.network)
        return self._net_digest

    def _layer_key(
        self,
        name: str,
        position: int,
        grid: np.ndarray,
        images_digest: str,
    ) -> str:
        """Cache key for one layer's campaign sums.

        Everything that determines the bits of (sq_sums, counts) is
        here: the trial RNG streams are keyed on (seed, layer position,
        batch index, grid index, repeat), so ``batch_size`` belongs in
        the key while worker counts and backends do not.
        """
        return make_key(
            {
                "kind": "profile-layer",
                "network": self._network_digest(),
                "images": images_digest,
                "seed": self.settings.seed,
                "num_repeats": self.settings.num_repeats,
                "batch_size": self.batch_size,
                "layer": name,
                "position": position,
                "grid": grid,
            }
        )

    def _delta_grid(self, input_scale: float) -> np.ndarray:
        s = self.settings
        if self.delta_relative:
            low = input_scale * s.delta_min
            high = input_scale * s.delta_max
        else:
            low, high = s.delta_min, s.delta_max
        return np.geomspace(low, high, s.num_delta_points)

    def _input_scales(self) -> Dict[str, float]:
        """Per-layer input std on the first profiling batch."""
        scales: Dict[str, float] = {}
        batch = self.images[: self.batch_size]

        def make_tap(name: str):
            def tap(x: np.ndarray) -> np.ndarray:
                scales[name] = float(x.std()) or 1.0
                return x

            return tap

        taps = {
            name: make_tap(name) for name in self.network.analyzed_layer_names
        }
        self.network.forward(batch, taps=taps)
        return scales

    # ------------------------------------------------------------------
    def profile(
        self,
        layer_names: Optional[Sequence[str]] = None,
        progress: bool = False,
    ) -> ProfileReport:
        """Run the full injection campaign and fit Eq. 5 per layer."""
        names = list(layer_names or self.network.analyzed_layer_names)
        for name in names:
            if name not in self.network:
                raise ProfilingError(f"unknown layer {name!r}")
        scales = self._input_scales()
        grids = {
            name: self._delta_grid(scales.get(name, 1.0)) for name in names
        }
        return self.profile_with_grids(grids, progress=progress)

    def profile_around(
        self,
        operating_deltas: Dict[str, float],
        span_down: float = 8.0,
        span_up: float = 2.0,
        progress: bool = False,
    ) -> ProfileReport:
        """Re-profile with grids centred on known operating points.

        Implements the paper's iterative Delta guessing (Sec. V-A): once
        a first optimization round predicts the Delta each layer will
        actually use, a second regression over ``[delta/span_down,
        delta*span_up]`` measures lambda/theta in exactly the regime the
        allocator exploits, removing the extrapolation conservatism of
        the initial wide grid.
        """
        grids = {}
        for name, delta in operating_deltas.items():
            if delta <= 0:
                raise ProfilingError(
                    f"operating delta for {name!r} must be positive"
                )
            grids[name] = np.geomspace(
                delta / span_down, delta * span_up, self.settings.num_delta_points
            )
        return self.profile_with_grids(grids, progress=progress)

    def profile_with_grids(
        self,
        grids: Dict[str, np.ndarray],
        progress: bool = False,
    ) -> ProfileReport:
        """Injection campaign over explicit per-layer delta grids."""
        start_time = time.perf_counter()
        names = list(grids)
        for name in names:
            if name not in self.network:
                raise ProfilingError(f"unknown layer {name!r}")
            if len(grids[name]) != self.settings.num_delta_points:
                raise ProfilingError(
                    f"grid for {name!r} must have "
                    f"{self.settings.num_delta_points} points"
                )
        settings = self.settings
        num_images = min(settings.num_images, self.images.shape[0])
        images = self.images[:num_images]

        # Per-layer persistent cache lookup: a layer's campaign sums are
        # independent of which other layers share the campaign, so each
        # (layer, grid) pair restores separately and only the missing
        # layers pay for an injection run.
        cached_sums: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        layer_keys: Dict[str, str] = {}
        if self.cache is not None:
            images_digest = array_digest(images)
            positions = {
                layer.name: index
                for index, layer in enumerate(self.network.layers)
            }
            for name in names:
                layer_keys[name] = self._layer_key(
                    name, positions[name], grids[name], images_digest
                )
                entry = self.cache.get_arrays("profile", layer_keys[name])
                if (
                    entry is not None
                    and "sq_sums" in entry
                    and "counts" in entry
                ):
                    cached_sums[name] = (entry["sq_sums"], entry["counts"])
        missing = [name for name in names if name not in cached_sums]

        tracer = self.telemetry.tracer
        with tracer.span(
            "profiler.profile",
            num_layers=len(names),
            num_images=num_images,
            num_delta_points=settings.num_delta_points,
            num_repeats=settings.num_repeats,
            use_engine=self.use_engine,
            jobs=self.parallel.jobs,
            backend=self.parallel.backend,
            cache_hits=len(cached_sums),
        ):
            timings: Dict[str, float] = {}
            replay_fractions: Dict[str, float] = {}
            jobs = 1
            sq_sums = {name: cached_sums[name][0] for name in cached_sums}
            counts = {name: cached_sums[name][1] for name in cached_sums}
            if missing:
                missing_grids = {name: grids[name] for name in missing}
                if self.use_engine:
                    engine = InjectionEngine(
                        self.network,
                        self.parallel,
                        telemetry=self.telemetry,
                        cache=self.cache,
                    )
                    campaign = engine.run(
                        images,
                        missing_grids,
                        num_repeats=settings.num_repeats,
                        seed=settings.seed,
                        batch_size=self.batch_size,
                        progress=progress,
                    )
                    sq_sums.update(campaign.sq_sums)
                    counts.update(campaign.counts)
                    timings = campaign.timings.as_dict()
                    replay_fractions = campaign.replay_fractions
                    jobs = campaign.jobs
                else:
                    fresh_sums, fresh_counts = self._profile_serial(
                        images, missing_grids, missing, num_images, progress
                    )
                    sq_sums.update(fresh_sums)
                    counts.update(fresh_counts)
                if self.cache is not None:
                    for name in missing:
                        self.cache.put_arrays(
                            "profile",
                            layer_keys[name],
                            {
                                "sq_sums": sq_sums[name],
                                "counts": counts[name],
                            },
                            meta={"layer": name},
                        )

            fit_start = time.perf_counter()
            profiles: Dict[str, LayerErrorProfile] = {}
            with tracer.span("profiler.fit", num_layers=len(names)):
                for name in names:
                    with tracer.span("profiler.fit_layer", layer=name) as fs:
                        sigmas = np.sqrt(
                            sq_sums[name] / np.maximum(counts[name], 1.0)
                        )
                        deltas = grids[name]
                        # Guards the disconnected-layer case: injections
                        # that never reach the output leave every sigma at
                        # (numerically) zero.  Tolerance instead of == 0.0:
                        # float64 underflow in the squared-error
                        # accumulation can leave denormal residue that is
                        # equally unusable for the regression.
                        if np.all(sigmas <= np.finfo(np.float64).tiny):
                            raise ProfilingError(
                                f"layer {name!r} never perturbed the "
                                "output; it may be disconnected from the "
                                "network output"
                            )
                        fit = fit_line(sigmas, deltas)
                        fs.set(
                            lam=float(fit.slope),
                            theta=float(fit.intercept),
                            r_squared=float(fit.r_squared),
                        )
                        diagnostics = enforce(
                            check_profile_fit(
                                name, fit.slope, fit.intercept, fit.r_squared
                            ),
                            strict=self.strict,
                            context=(
                                f"profiling regression for layer {name!r}"
                            ),
                        )
                        profiles[name] = LayerErrorProfile(
                            name=name,
                            lam=fit.slope,
                            theta=fit.intercept,
                            r_squared=fit.r_squared,
                            max_relative_error=fit.max_relative_error,
                            deltas=deltas,
                            sigmas=sigmas,
                            diagnostics=diagnostics,
                        )
            timings["fit"] = time.perf_counter() - fit_start
        elapsed = time.perf_counter() - start_time
        return ProfileReport(
            profiles=profiles,
            num_images=num_images,
            elapsed_seconds=elapsed,
            timings=timings,
            replay_fractions=replay_fractions,
            jobs=jobs,
            cache_hits=len(cached_sums),
        )

    def _profile_serial(
        self,
        images: np.ndarray,
        grids: Dict[str, np.ndarray],
        names: Sequence[str],
        num_images: int,
        progress: bool,
    ):
        """The pre-engine trial-at-a-time loop (benchmark baseline).

        Uses the same per-trial ``SeedSequence``-spawned RNG streams as
        the engine (coordinate-keyed, not loop-order-coupled), so its
        sigmas are bitwise identical to the engine's for any execution
        strategy — the engine's differential test oracle.
        """
        settings = self.settings
        positions = {
            layer.name: index
            for index, layer in enumerate(self.network.layers)
        }
        sq_sums = {name: np.zeros(settings.num_delta_points) for name in names}
        counts = {name: np.zeros(settings.num_delta_points) for name in names}
        output_name = self.network.output_name
        for batch_start in range(0, num_images, self.batch_size):
            batch = images[batch_start : batch_start + self.batch_size]
            batch_index = batch_start // self.batch_size
            cache = self.network.run_all(batch)
            reference = cache[output_name]
            for name in names:
                grid = grids[name]
                for j, delta in enumerate(grid):
                    for repeat in range(settings.num_repeats):
                        rng = trial_rng(
                            settings.seed,
                            positions[name],
                            batch_index,
                            j,
                            repeat,
                        )
                        tap = uniform_noise_tap(float(delta), rng)
                        perturbed = self.network.forward_from(cache, name, tap)
                        err = perturbed - reference
                        sq_sum = float((err * err).sum())
                        if not np.isfinite(sq_sum):
                            enforce_finite_trial(perturbed, name, float(delta))
                        sq_sums[name][j] += sq_sum
                        counts[name][j] += err.size
            if progress:  # pragma: no cover - console nicety
                done = min(batch_start + self.batch_size, num_images)
                print(f"  profiled {done}/{num_images} images")
        return sq_sums, counts
