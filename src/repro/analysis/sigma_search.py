"""Relating classification accuracy to output error (paper Sec. V-C).

Given a user accuracy constraint ("at most 1% relative top-1 drop"),
the method needs the largest tolerable output-error std ``sigma_YL``.
Because accuracy degrades monotonically as ``sigma_YL`` grows, a
doubling phase followed by a binary search on real numbers (tolerance
0.01, after [Williams'76]) finds it with a handful of accuracy tests.

Two accuracy tests are supported, exactly as in the paper:

* **Scheme 1** (``equal_scheme``): distribute the error equally
  (``xi_K = 1/L``), compute each ``Delta_XK`` by Eq. 7, inject uniform
  noise at every analyzed layer, and measure top-1 accuracy.
* **Scheme 2** (``gaussian_approx``): inject ``N(0, sigma^2)`` directly
  into the final layer's logits — cheap because clean logits can be
  cached once per dataset.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..cache import (
    ResultCache,
    array_digest,
    dataset_digest,
    make_key,
    network_digest,
    profiles_digest,
)
from ..config import SearchSettings
from ..data import Dataset
from ..errors import SearchError
from ..nn.graph import Network
from ..telemetry.session import Telemetry
from .injection import multi_layer_uniform_taps, perturb_logits
from .profiler import LayerErrorProfile

#: Floor for per-layer deltas predicted by Eq. 7 (a negative prediction
#: means "effectively exact"; zero noise, arbitrarily many bits).
MIN_DELTA = 1e-12


def deltas_for_sigma(
    profiles: Mapping[str, LayerErrorProfile],
    sigma: float,
    xi: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Eq. 7: ``Delta_XK = lambda_K * (sigma * sqrt(xi_K)) + theta_K``.

    ``xi`` defaults to the equal scheme ``xi_K = 1/L``.
    """
    names = list(profiles)
    if xi is None:
        share = 1.0 / len(names)
        xi = {name: share for name in names}
    deltas: Dict[str, float] = {}
    for name in names:
        profile = profiles[name]
        predicted = profile.delta_for_sigma(sigma * np.sqrt(xi[name]))
        deltas[name] = max(predicted, MIN_DELTA)
    return deltas


def _eval_span(
    telemetry: Telemetry, scheme: str, sigma: float, cached: Optional[float]
):
    """Open a ``sigma.eval`` span, recording the memo hit/miss counter."""
    memo_hit = cached is not None
    name = "repro_memo_hits_total" if memo_hit else "repro_memo_misses_total"
    telemetry.metrics.counter(name).inc()
    return telemetry.tracer.span(
        "sigma.eval", scheme=scheme, sigma=float(sigma), memo_hit=memo_hit
    )


def _observe_eval(telemetry: Telemetry, span) -> None:
    """Record a completed (non-memoized) evaluation's duration."""
    telemetry.metrics.histogram("repro_sigma_eval_seconds").observe(
        span.duration
    )


class Scheme1Evaluator:
    """Accuracy under equal-scheme uniform injection at every layer.

    Evaluations are memoized on ``(sigma, scheme, seed)``: the doubling
    phase and bisection of consecutive searches re-probe identical
    sigmas (every search starts from the same ``initial_upper``), and
    each re-probe costs a full noisy dataset pass.  The evaluator is
    seeded deterministically per (sigma, trial), so the cached value is
    exactly what a re-evaluation would measure.
    """

    scheme = "scheme1"

    def __init__(
        self,
        network: Network,
        dataset: Dataset,
        profiles: Mapping[str, LayerErrorProfile],
        batch_size: int = 64,
        num_trials: int = 1,
        seed: int = 0,
        telemetry: Optional[Telemetry] = None,
        cache: Optional[ResultCache] = None,
    ):
        self.network = network
        self.dataset = dataset
        self.profiles = dict(profiles)
        self.batch_size = batch_size
        self.num_trials = num_trials
        self.seed = seed
        self.telemetry = Telemetry.create(telemetry)
        self._cache: Dict[Tuple[float, str, int], float] = {}
        self.cache_hits = 0
        #: Persistent memo behind the in-memory one (None = off).  The
        #: key pins everything the measurement depends on — including
        #: the fitted (lambda, theta) pairs and ``batch_size``, because
        #: the per-batch noise stream advances one RNG across batches.
        self.result_cache = cache
        self._context: Optional[Dict[str, object]] = None
        if cache is not None:
            self._context = {
                "kind": "sigma-eval",
                "scheme": self.scheme,
                "network": network_digest(network),
                "dataset": dataset_digest(dataset),
                "profiles": profiles_digest(self.profiles),
                "num_trials": num_trials,
                "batch_size": batch_size,
                "seed": seed,
            }

    def _persistent_get(self, sigma: float) -> Optional[float]:
        if self.result_cache is None or self._context is None:
            return None
        key = make_key({**self._context, "sigma": float(sigma)})
        stored = self.result_cache.get_json("sigma_eval", key)
        if isinstance(stored, dict) and "accuracy" in stored:
            return float(stored["accuracy"])
        return None

    def _persistent_put(self, sigma: float, value: float) -> None:
        if self.result_cache is None or self._context is None:
            return
        key = make_key({**self._context, "sigma": float(sigma)})
        self.result_cache.put_json("sigma_eval", key, {"accuracy": value})

    def accuracy(self, sigma: float) -> float:
        key = (float(sigma), self.scheme, self.seed)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._persistent_get(sigma)
            if cached is not None:
                self._cache[key] = cached
        with _eval_span(self.telemetry, self.scheme, sigma, cached) as span:
            if cached is not None:
                self.cache_hits += 1
                return cached
            deltas = deltas_for_sigma(self.profiles, sigma)
            correct = 0
            total = 0
            for trial in range(self.num_trials):
                rng = np.random.default_rng((self.seed, trial, 1))
                for images, labels in self.dataset.batches(self.batch_size):
                    taps = multi_layer_uniform_taps(deltas, rng)
                    logits = self.network.forward(images, taps=taps)
                    pred = np.argmax(
                        logits.reshape(logits.shape[0], -1), axis=1
                    )
                    correct += int((pred == labels).sum())
                    total += labels.size
            value = correct / max(total, 1)
            self._cache[key] = value
            self._persistent_put(sigma, value)
            span.set(accuracy=value)
        _observe_eval(self.telemetry, span)
        return value


class Scheme2Evaluator:
    """Accuracy under Gaussian noise on cached clean logits (fast).

    Memoized on ``(sigma, scheme, seed)`` like
    :class:`Scheme1Evaluator` — cheaper per evaluation, but searches at
    several accuracy drops still share the doubling-phase probes.
    """

    scheme = "scheme2"

    def __init__(
        self,
        network: Network,
        dataset: Dataset,
        batch_size: int = 64,
        num_trials: int = 3,
        seed: int = 0,
        telemetry: Optional[Telemetry] = None,
        cache: Optional[ResultCache] = None,
    ):
        self.dataset = dataset
        self.num_trials = num_trials
        self.seed = seed
        self.telemetry = Telemetry.create(telemetry)
        self._cache: Dict[Tuple[float, str, int], float] = {}
        self.cache_hits = 0
        logits = []
        for images, __ in dataset.batches(batch_size):
            out = network.forward(images)
            logits.append(out.reshape(out.shape[0], -1))
        self._logits = np.concatenate(logits, axis=0)
        #: Persistent memo (None = off).  Keyed on the clean logits
        #: themselves (not the network), so any batching effect on
        #: their bits is captured exactly.
        self.result_cache = cache
        self._context: Optional[Dict[str, object]] = None
        if cache is not None:
            self._context = {
                "kind": "sigma-eval",
                "scheme": self.scheme,
                "logits": array_digest(self._logits),
                "labels": array_digest(dataset.labels),
                "num_trials": num_trials,
                "seed": seed,
            }

    def _persistent_get(self, sigma: float) -> Optional[float]:
        if self.result_cache is None or self._context is None:
            return None
        key = make_key({**self._context, "sigma": float(sigma)})
        stored = self.result_cache.get_json("sigma_eval", key)
        if isinstance(stored, dict) and "accuracy" in stored:
            return float(stored["accuracy"])
        return None

    def _persistent_put(self, sigma: float, value: float) -> None:
        if self.result_cache is None or self._context is None:
            return
        key = make_key({**self._context, "sigma": float(sigma)})
        self.result_cache.put_json("sigma_eval", key, {"accuracy": value})

    def accuracy(self, sigma: float) -> float:
        key = (float(sigma), self.scheme, self.seed)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._persistent_get(sigma)
            if cached is not None:
                self._cache[key] = cached
        with _eval_span(self.telemetry, self.scheme, sigma, cached) as span:
            if cached is not None:
                self.cache_hits += 1
                return cached
            labels = self.dataset.labels
            correct = 0
            total = 0
            for trial in range(self.num_trials):
                rng = np.random.default_rng((self.seed, trial, 2))
                noisy = perturb_logits(self._logits, sigma, rng)
                pred = np.argmax(noisy, axis=1)
                correct += int((pred == labels).sum())
                total += labels.size
            value = correct / max(total, 1)
            self._cache[key] = value
            self._persistent_put(sigma, value)
            span.set(accuracy=value)
        _observe_eval(self.telemetry, span)
        return value


@dataclass
class SigmaSearchResult:
    """Outcome of the binary search for the tolerable sigma_YL."""

    sigma: float
    baseline_accuracy: float
    target_accuracy: float
    achieved_accuracy: float
    evaluations: List[Tuple[float, float]] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: Accuracy tests answered from the evaluator's memo instead of a
    #: real dataset pass (populated when ``evaluations_saved_fn`` is
    #: given to :func:`find_sigma`).
    num_evaluations_saved: int = 0

    @property
    def num_evaluations(self) -> int:
        """Accuracy tests the search consumed (its cost metric)."""
        return len(self.evaluations)


def find_sigma(
    accuracy_fn: Callable[[float], float],
    baseline_accuracy: float,
    max_relative_drop: float,
    settings: Optional[SearchSettings] = None,
    transient_retries: int = 2,
    telemetry: Optional[Telemetry] = None,
    evaluations_saved_fn: Optional[Callable[[], int]] = None,
) -> SigmaSearchResult:
    """Largest sigma_YL whose accuracy stays within the allowed drop.

    Implements the paper's procedure: start from an initial upper-bound
    guess, double until the constraint is violated, then binary search
    until the bracket is tighter than the tolerance; the passing lower
    bound is returned.

    Resilience: accuracy evaluations raising
    :class:`~repro.errors.TransientError` are retried up to
    ``transient_retries`` times before the search gives up (a single
    flaky evaluator call must not discard the bracket built so far),
    and a non-finite accuracy measurement raises a structured
    :class:`SearchError` immediately instead of silently poisoning the
    bracket.

    A final **confirmation** evaluation measures accuracy at the sigma
    actually returned whenever the search never probed it directly (the
    tolerance-floor edge case); against a memoizing evaluator it is
    free in every other case because the value is already cached.
    ``evaluations_saved_fn`` — typically the evaluator's ``cache_hits``
    reader — is sampled before and after the search, and the difference
    is reported as :attr:`SigmaSearchResult.num_evaluations_saved`.
    """
    from ..resilience.fallback import call_with_retries
    from ..resilience.guards import check_sigma_bracket, enforce

    settings = settings or SearchSettings()
    if not 0 <= max_relative_drop < 1:
        raise SearchError(
            f"max_relative_drop must be in [0, 1); got {max_relative_drop}"
        )
    if not np.isfinite(baseline_accuracy):
        raise SearchError(
            f"baseline accuracy is {baseline_accuracy!r}; cannot derive "
            "a target"
        )
    session = Telemetry.create(telemetry)
    tracer = session.tracer
    start_time = time.perf_counter()
    target = baseline_accuracy * (1.0 - max_relative_drop)
    evaluations: List[Tuple[float, float]] = []
    saved_start = evaluations_saved_fn() if evaluations_saved_fn else 0

    def evaluations_saved() -> int:
        if evaluations_saved_fn is None:
            return 0
        return max(0, evaluations_saved_fn() - saved_start)

    def passes(sigma: float, phase: str) -> bool:
        with tracer.span(
            "sigma.step", phase=phase, sigma=float(sigma)
        ) as step:
            acc = call_with_retries(
                accuracy_fn,
                sigma,
                retries=transient_retries,
                label=f"accuracy evaluation at sigma={sigma:.4g}",
            )
            if not np.isfinite(acc):
                raise SearchError(
                    f"accuracy evaluation at sigma={sigma:.4g} returned "
                    f"{acc!r} after {len(evaluations)} evaluations; the "
                    "evaluator is numerically broken"
                )
            evaluations.append((sigma, acc))
            ok = acc >= target
            step.set(accuracy=float(acc), passed=ok)
        return ok

    with tracer.span(
        "sigma.search",
        max_relative_drop=float(max_relative_drop),
        tolerance=float(settings.tolerance),
        baseline_accuracy=float(baseline_accuracy),
    ) as search_span:
        upper = settings.initial_upper
        lower = 0.0
        doublings = 0
        while passes(upper, "doubling"):
            lower = upper
            upper *= 2.0
            doublings += 1
            if doublings >= settings.max_doublings:
                # Accuracy never violated: the network tolerates any
                # sigma we can reach; return the last passing value.
                search_span.set(
                    sigma=float(lower),
                    num_evaluations=len(evaluations),
                    num_evaluations_saved=evaluations_saved(),
                )
                return SigmaSearchResult(
                    sigma=lower,
                    baseline_accuracy=baseline_accuracy,
                    target_accuracy=target,
                    achieved_accuracy=evaluations[-1][1],
                    evaluations=evaluations,
                    elapsed_seconds=time.perf_counter() - start_time,
                    num_evaluations_saved=evaluations_saved(),
                )
        enforce(
            check_sigma_bracket(lower, upper, len(evaluations)),
            strict=True,
            context="sigma search bracket",
        )
        while upper - lower > settings.tolerance:
            mid = 0.5 * (lower + upper)
            if passes(mid, "bisect"):
                lower = mid
            else:
                upper = mid
        # The search cannot resolve budgets below its tolerance; when
        # even the first probe fails (constraint inside measurement
        # noise), the tolerance itself is returned as the smallest
        # meaningful budget — the resulting Deltas are tiny, i.e.
        # near-lossless formats.
        sigma = max(lower, settings.tolerance)
        # Confirmation: the reported accuracy is a measurement at the
        # returned sigma.  With a memoizing evaluator this re-probe is
        # free whenever the bisection already landed on sigma (the
        # common case); it only costs a pass in the tolerance-floor
        # branch above, where no probe at sigma exists yet.
        achieved = next(
            (acc for s, acc in reversed(evaluations) if s == sigma), None
        )
        if achieved is None:
            passes(sigma, "confirm")
            achieved = evaluations[-1][1]
        search_span.set(
            sigma=float(sigma),
            num_evaluations=len(evaluations),
            num_evaluations_saved=evaluations_saved(),
        )
    return SigmaSearchResult(
        sigma=sigma,
        baseline_accuracy=baseline_accuracy,
        target_accuracy=target,
        achieved_accuracy=achieved,
        evaluations=evaluations,
        elapsed_seconds=time.perf_counter() - start_time,
        num_evaluations_saved=evaluations_saved(),
    )
