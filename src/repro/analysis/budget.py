"""Post-hoc verification of an allocation's error budget (Eq. 6/7).

Given a finished bitwidth allocation, this module measures what the
paper's model only *predicts*: the actual per-layer contributions
``sigma_{Y_K->L}`` under true fixed-point rounding, and the actual
joint output-error std.  Comparing them against the budget
(``sigma * sqrt(xi_K)`` per layer, ``sigma`` jointly) quantifies how
much headroom the ceil() discretization and the uniform-noise model
left — the repo's "trust but verify" for the analytical machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..errors import ProfilingError
from ..nn.graph import Network
from ..quant.allocation import BitwidthAllocation


@dataclass
class LayerBudgetCheck:
    """One layer's predicted vs measured output-error contribution."""

    name: str
    budget_sigma: float
    measured_sigma: float

    @property
    def utilization(self) -> float:
        """measured / budget — < 1 means headroom (conservatism)."""
        if self.budget_sigma == 0:
            return 0.0
        return self.measured_sigma / self.budget_sigma


@dataclass
class BudgetVerification:
    """Full Eq. 6 audit of an allocation."""

    layers: List[LayerBudgetCheck]
    joint_budget_sigma: float
    joint_measured_sigma: float
    rss_of_layers: float

    @property
    def joint_utilization(self) -> float:
        """Joint measured sigma relative to the budget (< 1 = headroom)."""
        if self.joint_budget_sigma == 0:
            return 0.0
        return self.joint_measured_sigma / self.joint_budget_sigma

    @property
    def additivity_error(self) -> float:
        """Relative gap between the joint measurement and the
        root-sum-square of per-layer measurements (Eq. 6's assumption)."""
        if self.rss_of_layers == 0:
            return 0.0
        return abs(
            self.joint_measured_sigma - self.rss_of_layers
        ) / self.rss_of_layers

    def rows(self) -> List[Dict[str, object]]:
        """Per-layer audit rows for table rendering."""
        return [
            {
                "layer": c.name,
                "budget_sigma": c.budget_sigma,
                "measured_sigma": c.measured_sigma,
                "utilization": c.utilization,
            }
            for c in self.layers
        ]


def verify_error_budget(
    network: Network,
    images: np.ndarray,
    allocation: BitwidthAllocation,
    sigma: float,
    xi: Optional[Mapping[str, float]] = None,
    batch_size: int = 32,
) -> BudgetVerification:
    """Measure true quantization-induced output errors per layer & jointly.

    Per layer: quantize only that layer's input (its assigned format),
    measure the output-error std against the exact pass.  Jointly:
    quantize every layer at once.  All measurements reuse one activation
    cache per batch via partial replay.
    """
    if sigma <= 0:
        raise ProfilingError("sigma must be positive")
    names = allocation.names
    if xi is None:
        xi = {name: 1.0 / len(names) for name in names}
    taps = allocation.taps(network)

    layer_sq = {name: 0.0 for name in names}
    layer_count = {name: 0 for name in names}
    joint_sq = 0.0
    joint_count = 0
    images = np.asarray(images, dtype=np.float64)
    for start in range(0, images.shape[0], batch_size):
        batch = images[start : start + batch_size]
        cache = network.run_all(batch)
        reference = cache[network.output_name]
        for name in names:
            perturbed = network.forward_from(cache, name, taps[name])
            err = perturbed - reference
            layer_sq[name] += float((err * err).sum())
            layer_count[name] += err.size
        joint = network.forward(batch, taps=taps)
        err = joint - reference
        joint_sq += float((err * err).sum())
        joint_count += err.size

    layers = []
    rss = 0.0
    for name in names:
        measured = float(
            np.sqrt(layer_sq[name] / max(layer_count[name], 1))
        )
        rss += measured**2
        layers.append(
            LayerBudgetCheck(
                name=name,
                budget_sigma=sigma * float(np.sqrt(xi[name])),
                measured_sigma=measured,
            )
        )
    return BudgetVerification(
        layers=layers,
        joint_budget_sigma=sigma,
        joint_measured_sigma=float(np.sqrt(joint_sq / max(joint_count, 1))),
        rss_of_layers=float(np.sqrt(rss)),
    )
