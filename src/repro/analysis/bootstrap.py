"""Bootstrap confidence intervals for the Eq. 5 regression constants.

The paper reports point estimates of lambda_K / theta_K; when profiling
budgets are small (few images, few delta points), knowing how tight
those estimates are tells the user whether to profile more (Sec. V-A's
"50-200 images will produce stable regression results" made measurable).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ProfilingError
from .profiler import LayerErrorProfile
from .regression import fit_line


@dataclass(frozen=True)
class BootstrapInterval:
    """A two-sided percentile confidence interval."""

    low: float
    high: float
    point: float

    @property
    def width(self) -> float:
        """Absolute width of the interval."""
        return self.high - self.low

    @property
    def relative_width(self) -> float:
        """Interval width relative to the point estimate's magnitude."""
        if self.point == 0:
            return float("inf")
        return self.width / abs(self.point)

    def contains(self, value: float) -> bool:
        """Whether the interval covers ``value``."""
        return self.low <= value <= self.high


@dataclass(frozen=True)
class BootstrapFit:
    """Bootstrap summary of one layer's lambda/theta fit."""

    layer: str
    lam: BootstrapInterval
    theta: BootstrapInterval
    num_resamples: int


def bootstrap_profile(
    profile: LayerErrorProfile,
    num_resamples: int = 200,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapFit:
    """Percentile-bootstrap CIs for a profiled layer's lambda and theta.

    Resamples the (sigma, Delta) measurement pairs with replacement and
    refits; degenerate resamples (all-identical x) are redrawn.
    """
    if not 0 < confidence < 1:
        raise ProfilingError("confidence must be in (0, 1)")
    sigmas = np.asarray(profile.sigmas)
    deltas = np.asarray(profile.deltas)
    count = sigmas.size
    if count < 3:
        raise ProfilingError("need at least 3 measurement pairs to bootstrap")
    rng = np.random.default_rng(seed)
    slopes = np.empty(num_resamples)
    intercepts = np.empty(num_resamples)
    for i in range(num_resamples):
        while True:
            idx = rng.integers(0, count, size=count)
            if np.unique(sigmas[idx]).size >= 2:
                break
        fit = fit_line(sigmas[idx], deltas[idx])
        slopes[i] = fit.slope
        intercepts[i] = fit.intercept
    tail = (1.0 - confidence) / 2.0
    lo_q, hi_q = 100.0 * tail, 100.0 * (1.0 - tail)
    return BootstrapFit(
        layer=profile.name,
        lam=BootstrapInterval(
            low=float(np.percentile(slopes, lo_q)),
            high=float(np.percentile(slopes, hi_q)),
            point=profile.lam,
        ),
        theta=BootstrapInterval(
            low=float(np.percentile(intercepts, lo_q)),
            high=float(np.percentile(intercepts, hi_q)),
            point=profile.theta,
        ),
        num_resamples=num_resamples,
    )
