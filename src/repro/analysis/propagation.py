"""Single-layer error-propagation models (paper Sec. II and III).

These functions state the analytical building blocks the cross-layer
relationship rests on, so tests and benches can verify each one against
direct simulation:

* Eq. 3/4 — a dot product turns i.i.d. uniform input errors with std
  ``sigma_x`` into an output error with std ``sqrt(sum w_i^2) * sigma_x``.
* Sec. III-C — ReLU scales error std by a measurable ``alpha < 1``;
  max pooling preserves it; N-element average pooling is a dot product
  with weights ``1/N``.
* Sec. II-A — the uniform boundary relates to std by
  ``Delta = sigma * sqrt(12) / 2``.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import ReproError


def uniform_std(delta: float) -> float:
    """Std of ``U[-delta, delta]``: ``2*delta/sqrt(12)``."""
    if delta < 0:
        raise ReproError("delta must be non-negative")
    return 2.0 * delta / math.sqrt(12.0)


def delta_from_std(sigma: float) -> float:
    """Boundary of the uniform distribution with the given std (Sec. IV)."""
    if sigma < 0:
        raise ReproError("sigma must be non-negative")
    return sigma * math.sqrt(12.0) / 2.0


def dot_product_output_std(weights: np.ndarray, sigma_x: float) -> float:
    """Eq. 4: ``sigma_y = sqrt(sum w_i^2) * sigma_x``."""
    weights = np.asarray(weights, dtype=np.float64)
    return float(np.sqrt((weights**2).sum()) * sigma_x)


def lambda_for_weights(weights: np.ndarray) -> float:
    """Eq. 4's proportionality constant in the ``sigma_x ~ lambda*sigma_y``
    direction: ``1 / sqrt(sum w_i^2)``."""
    norm = float(np.sqrt((np.asarray(weights) ** 2).sum()))
    if norm == 0:
        raise ReproError("all-zero weights give an unbounded lambda")
    return 1.0 / norm


def relu_alpha(x: np.ndarray) -> float:
    """Measured ReLU error-scaling: fraction of positions passed through.

    With small input errors, ReLU passes the error where ``x > 0`` and
    zeroes it elsewhere, so ``sigma_out = alpha * sigma_in`` with
    ``alpha = sqrt(P(x > 0))``.
    """
    x = np.asarray(x)
    if x.size == 0:
        raise ReproError("cannot estimate alpha from an empty tensor")
    return float(np.sqrt(np.mean(x > 0)))


def avg_pool_output_std(sigma_x: float, filter_size: int) -> float:
    """Average pooling as a 1/N dot product: ``sigma_y = sigma_x/sqrt(N)``."""
    if filter_size < 1:
        raise ReproError("filter_size must be >= 1")
    return sigma_x / math.sqrt(filter_size)


def motivating_example_split(
    delta_y: float, weights: np.ndarray, inputs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sec. II's equal-split solution for ``y = sum w_i x_i``.

    Divides the output error budget into ``2*N`` equal portions and
    returns (delta_w, delta_x) with ``delta_w_i = delta_y/(2N * x_i)``
    and ``delta_x_i = delta_y/(2N * w_i)`` (the paper shows N = 2, four
    portions).
    """
    weights = np.asarray(weights, dtype=np.float64)
    inputs = np.asarray(inputs, dtype=np.float64)
    if weights.shape != inputs.shape or weights.ndim != 1:
        raise ReproError("weights and inputs must be matching 1-D arrays")
    if np.any(weights == 0) or np.any(inputs == 0):
        raise ReproError("equal split requires non-zero weights and inputs")
    portions = 2 * weights.size
    delta_w = delta_y / (portions * inputs)
    delta_x = delta_y / (portions * weights)
    return delta_w, delta_x


def normality_statistics(errors: np.ndarray) -> Tuple[float, float, float]:
    """(mean, std, excess kurtosis) of an error sample.

    Fig. 3 (right) shows the final-layer error is near-Gaussian; excess
    kurtosis near 0 is the quantitative check used in tests.
    """
    errors = np.asarray(errors, dtype=np.float64).ravel()
    if errors.size < 4:
        raise ReproError("need at least 4 samples")
    mean = float(errors.mean())
    std = float(errors.std())
    if std == 0:
        return mean, std, 0.0
    centered = (errors - mean) / std
    kurtosis = float((centered**4).mean() - 3.0)
    return mean, std, kurtosis
