"""Second-order error terms: when does dropping delta_w * delta_x bite?

The paper's Eq. 2 linearizes Eq. 1 by discarding the cross terms
``delta_w_i * delta_x_i``, assuming ``w >> delta_w`` and ``x >> delta_x``.
That is exact when weights stay in floating point, and an approximation
once weights are quantized too (Sec. V-E).  This module measures the
approximation directly: for a dot product with *both* operands
quantized, it compares the simulated output error std against the
first-order prediction

``sigma_y^2 ≈ sum_i (w_i^2 sigma_x^2 + x_rms^2 sigma_w^2)``

and reports the relative contribution of the neglected cross term.  The
result justifies the paper's separation of input and weight bitwidth
decisions down to surprisingly coarse formats.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError


@dataclass(frozen=True)
class SecondOrderResult:
    """Measured vs first-order-predicted output error for one setup."""

    weight_bits_std: float
    input_bits_std: float
    predicted_std: float
    measured_std: float
    cross_term_std: float

    @property
    def prediction_error(self) -> float:
        """Relative gap between first-order prediction and simulation."""
        if self.measured_std == 0:
            return 0.0
        return abs(self.measured_std - self.predicted_std) / self.measured_std

    @property
    def cross_term_share(self) -> float:
        """Fraction of measured error variance from the cross term."""
        if self.measured_std == 0:
            return 0.0
        return (self.cross_term_std / self.measured_std) ** 2


def simulate_dot_product_errors(
    fan_in: int,
    sigma_w: float,
    sigma_x: float,
    num_trials: int = 20_000,
    weight_scale: float = 1.0,
    input_scale: float = 1.0,
    seed: int = 0,
) -> SecondOrderResult:
    """Monte-Carlo the full Eq. 1 for one dot product.

    Weights are fixed (drawn once); inputs are drawn per trial; both
    receive independent uniform errors with the given stds.  Returns
    the measured total output error std, the first-order prediction,
    and the isolated cross-term std.
    """
    if fan_in < 1:
        raise ReproError("fan_in must be >= 1")
    if sigma_w < 0 or sigma_x < 0:
        raise ReproError("error stds must be non-negative")
    rng = np.random.default_rng(seed)
    weights = rng.normal(0.0, weight_scale, size=fan_in)
    inputs = rng.normal(0.0, input_scale, size=(num_trials, fan_in))
    half_w = sigma_w * np.sqrt(3.0)
    half_x = sigma_x * np.sqrt(3.0)
    delta_w = rng.uniform(-half_w, half_w, size=(num_trials, fan_in))
    delta_x = rng.uniform(-half_x, half_x, size=(num_trials, fan_in))

    # Full Eq. 1 error: x*dw + w*dx + dw*dx, summed over the fan-in.
    linear_w = (inputs * delta_w).sum(axis=1)
    linear_x = (weights[None, :] * delta_x).sum(axis=1)
    cross = (delta_w * delta_x).sum(axis=1)
    measured = linear_w + linear_x + cross

    predicted_var = (
        float((weights**2).sum()) * sigma_x**2
        + float((inputs**2).mean(axis=0).sum()) * sigma_w**2
    )
    return SecondOrderResult(
        weight_bits_std=sigma_w,
        input_bits_std=sigma_x,
        predicted_std=float(np.sqrt(predicted_var)),
        measured_std=float(measured.std()),
        cross_term_std=float(cross.std()),
    )


def cross_term_sweep(
    fan_in: int = 128,
    relative_errors=(0.01, 0.05, 0.1, 0.25, 0.5),
    seed: int = 0,
):
    """Sweep operand error sizes; return one result per setting.

    ``relative_errors`` are the error stds relative to the operand
    scales (both operands get the same relative error, the worst case
    for the cross term).
    """
    results = []
    for index, rel in enumerate(relative_errors):
        results.append(
            simulate_dot_product_errors(
                fan_in,
                sigma_w=rel,
                sigma_x=rel,
                weight_scale=1.0,
                input_scale=1.0,
                seed=seed + index,
            )
        )
    return results
