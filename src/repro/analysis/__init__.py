"""Core analysis: error injection, lambda/theta profiling, sigma search.

This package implements the paper's primary contribution — the
measurable cross-layer linear relationship between injected input error
boundaries and final-layer error std (Eq. 5), its composition across
layers (Eq. 6/7), and the accuracy-constrained search for the output
error budget (Sec. V-C).
"""

from .bootstrap import BootstrapFit, BootstrapInterval, bootstrap_profile
from .budget import (
    BudgetVerification,
    LayerBudgetCheck,
    verify_error_budget,
)
from .injection import (
    injected_output_error,
    multi_layer_uniform_taps,
    output_error_std,
    perturb_logits,
    uniform_noise_tap,
)
from .profiler import ErrorProfiler, LayerErrorProfile, ProfileReport
from .propagation import (
    avg_pool_output_std,
    delta_from_std,
    dot_product_output_std,
    lambda_for_weights,
    motivating_example_split,
    normality_statistics,
    relu_alpha,
    uniform_std,
)
from .regression import LinearFit, fit_line
from .robustness import (
    RobustnessPoint,
    corner_xi_vectors,
    xi_robustness_study,
)
from .second_order import (
    SecondOrderResult,
    cross_term_sweep,
    simulate_dot_product_errors,
)
from .sigma_search import (
    Scheme1Evaluator,
    Scheme2Evaluator,
    SigmaSearchResult,
    deltas_for_sigma,
    find_sigma,
)

__all__ = [
    "BootstrapFit",
    "BootstrapInterval",
    "BudgetVerification",
    "ErrorProfiler",
    "LayerBudgetCheck",
    "LayerErrorProfile",
    "LinearFit",
    "ProfileReport",
    "RobustnessPoint",
    "Scheme1Evaluator",
    "Scheme2Evaluator",
    "SecondOrderResult",
    "SigmaSearchResult",
    "avg_pool_output_std",
    "bootstrap_profile",
    "corner_xi_vectors",
    "cross_term_sweep",
    "delta_from_std",
    "deltas_for_sigma",
    "dot_product_output_std",
    "find_sigma",
    "fit_line",
    "injected_output_error",
    "lambda_for_weights",
    "motivating_example_split",
    "multi_layer_uniform_taps",
    "normality_statistics",
    "output_error_std",
    "perturb_logits",
    "relu_alpha",
    "simulate_dot_product_errors",
    "uniform_noise_tap",
    "uniform_std",
    "verify_error_budget",
    "xi_robustness_study",
]
