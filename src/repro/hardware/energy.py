"""MAC energy model (substitute for Synopsys DWIP @ TSMC 40 nm LP).

The paper synthesizes a DesignWare MAC at TSMC 40 nm LP (0.9 V, 500
MHz) and reports the total energy of all MAC operations per image
(Table III ``Ener Save``, Fig. 4).  Offline we model the same quantity
analytically:

``E(b_in, b_w) = e_static + e_accumulate * acc_bits
               + e_partial_product * b_in * b_w``

* The partial-product term dominates and is bilinear in the operand
  widths — the standard first-order model for array/bit-serial
  multipliers, and consistent with Stripes' observation that energy and
  performance scale almost linearly with the serial input bitwidth when
  the weight width is fixed.
* Default coefficients are calibrated so a 16x16 MAC lands near 0.6 pJ,
  in the range published for 40-45 nm multiply-accumulate energy
  (Horowitz, ISSCC'14 keynote: ~0.5-1 pJ for 16-32 bit int ops).

Only *ratios* of energies enter the paper's results, so any bilinear
model with these coefficients reproduces the relevant behaviour; the
coefficients are exposed for recalibration against a real flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from ..errors import ReproError
from ..nn.statistics import LayerStats
from ..quant.allocation import BitwidthAllocation


@dataclass(frozen=True)
class MacEnergyModel:
    """Bilinear MAC energy model, in picojoules."""

    e_static_pj: float = 0.05
    e_accumulate_pj_per_bit: float = 0.004
    e_partial_product_pj: float = 0.002
    accumulator_bits: int = 32

    def mac_energy_pj(self, input_bits: int, weight_bits: int) -> float:
        """Energy of one MAC with the given operand widths."""
        if input_bits < 1 or weight_bits < 1:
            raise ReproError(
                f"operand widths must be >= 1; got {input_bits}, {weight_bits}"
            )
        return (
            self.e_static_pj
            + self.e_accumulate_pj_per_bit * self.accumulator_bits
            + self.e_partial_product_pj * input_bits * weight_bits
        )

    # ------------------------------------------------------------------
    def layer_energy_pj(
        self,
        stats: Mapping[str, LayerStats],
        allocation: BitwidthAllocation,
        weight_bits: Mapping[str, int],
    ) -> Dict[str, float]:
        """Per-layer MAC energy for one image, in pJ (Fig. 4 bars)."""
        energies: Dict[str, float] = {}
        for alloc in allocation:
            stat = stats[alloc.name]
            energies[alloc.name] = stat.num_macs * self.mac_energy_pj(
                alloc.total_bits, weight_bits[alloc.name]
            )
        return energies

    def network_energy_pj(
        self,
        stats: Mapping[str, LayerStats],
        allocation: BitwidthAllocation,
        weight_bits: Mapping[str, int],
    ) -> float:
        """Total energy of all MAC operations to process one image."""
        return sum(
            self.layer_energy_pj(stats, allocation, weight_bits).values()
        )


def uniform_weight_bits(
    allocation: BitwidthAllocation, bits: int
) -> Dict[str, int]:
    """Convenience: the same weight bitwidth on every layer (column W)."""
    return {name: bits for name in allocation.names}


def energy_saving_percent(baseline_pj: float, optimized_pj: float) -> float:
    """Relative saving in percent, as reported in Table III."""
    if baseline_pj <= 0:
        raise ReproError("baseline energy must be positive")
    return 100.0 * (baseline_pj - optimized_pj) / baseline_pj


def per_layer_table(
    stats: Mapping[str, LayerStats],
    allocations: Mapping[str, BitwidthAllocation],
    weight_bits: Mapping[str, int],
    model: MacEnergyModel = MacEnergyModel(),
) -> List[Dict[str, object]]:
    """Rows of (layer, bitwidth per scheme, energy per scheme) — Fig. 4.

    ``allocations`` maps a scheme label ("baseline", "optimized", ...)
    to its allocation; every allocation must cover the same layers.
    """
    labels = list(allocations)
    if not labels:
        raise ReproError("need at least one allocation")
    names = allocations[labels[0]].names
    rows: List[Dict[str, object]] = []
    for name in names:
        row: Dict[str, object] = {"layer": name}
        for label in labels:
            alloc = allocations[label][name]
            energy = stats[name].num_macs * model.mac_energy_pj(
                alloc.total_bits, weight_bits[name]
            )
            row[f"{label}_bits"] = alloc.total_bits
            row[f"{label}_energy_pj"] = energy
        rows.append(row)
    return rows
