"""Loom-style accelerator model: weight AND activation bit-serial.

Loom [2] "exploits weight and activation precisions": its compute time
and energy scale with the *product* of per-layer activation and weight
bitwidths, rather than activation bits alone as in Stripes.  This model
lets the repo evaluate the combined benefit of the paper's activation
allocation (Sec. V-D) and the weight bitwidth search (Sec. V-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..errors import ReproError
from ..nn.statistics import LayerStats
from ..quant.allocation import BitwidthAllocation


@dataclass(frozen=True)
class LoomAccelerator:
    """A Loom-like engine: work per MAC ~ act_bits * weight_bits."""

    lanes: int = 4096
    baseline_bits: int = 16

    def layer_cycles(
        self,
        stats: Mapping[str, LayerStats],
        allocation: BitwidthAllocation,
        weight_bits: Mapping[str, int],
    ) -> Dict[str, float]:
        """Cycles per layer: ``#MAC * act_bits * w_bits / lanes``."""
        if self.lanes < 1:
            raise ReproError("accelerator needs at least one lane")
        cycles: Dict[str, float] = {}
        for alloc in allocation:
            w = weight_bits[alloc.name]
            if w < 1:
                raise ReproError(
                    f"layer {alloc.name!r} has invalid weight width {w}"
                )
            cycles[alloc.name] = (
                stats[alloc.name].num_macs * alloc.total_bits * w / self.lanes
            )
        return cycles

    def total_cycles(
        self,
        stats: Mapping[str, LayerStats],
        allocation: BitwidthAllocation,
        weight_bits: Mapping[str, int],
    ) -> float:
        return sum(self.layer_cycles(stats, allocation, weight_bits).values())

    def speedup(
        self,
        stats: Mapping[str, LayerStats],
        allocation: BitwidthAllocation,
        weight_bits: Mapping[str, int],
    ) -> float:
        """Speedup over a fixed 16x16-bit engine on the same layers."""
        cycles = self.total_cycles(stats, allocation, weight_bits)
        if cycles <= 0:
            raise ReproError("allocation produced non-positive cycle count")
        base = sum(
            stats[name].num_macs
            * self.baseline_bits
            * self.baseline_bits
            / self.lanes
            for name in allocation.names
        )
        return base / cycles
