"""Memory-hierarchy energy model: SRAM and DRAM transfer costs.

The paper's Table III accounts for MAC energy only; a deployed edge
accelerator also pays for moving activations and weights.  This model
extends the accounting with per-bit transfer energies (defaults in the
range published for 40-45 nm systems: DRAM access costs 2-3 orders of
magnitude more per bit than a small SRAM), so the repo's examples can
report system-level energy and show when bandwidth optimization beats
MAC optimization end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..errors import ReproError
from ..nn.statistics import LayerStats
from ..quant.allocation import BitwidthAllocation
from .energy import MacEnergyModel


@dataclass(frozen=True)
class MemoryEnergyModel:
    """Per-bit transfer energies, in picojoules.

    Defaults follow the classic Horowitz ISSCC'14 numbers scaled to a
    bit: ~0.16 pJ/bit for a 32 kB SRAM read (5 pJ/32 b word) and
    ~20 pJ/bit for LPDDR DRAM (640 pJ/32 b word).
    """

    sram_pj_per_bit: float = 0.16
    dram_pj_per_bit: float = 20.0
    #: Fraction of activation traffic that spills to DRAM (the rest is
    #: captured by the on-chip buffer).
    dram_activation_fraction: float = 0.1

    def __post_init__(self) -> None:
        if min(self.sram_pj_per_bit, self.dram_pj_per_bit) < 0:
            raise ReproError("transfer energies must be non-negative")
        if not 0.0 <= self.dram_activation_fraction <= 1.0:
            raise ReproError("dram_activation_fraction must be in [0, 1]")

    # ------------------------------------------------------------------
    def activation_energy_pj(
        self,
        stats: Mapping[str, LayerStats],
        allocation: BitwidthAllocation,
    ) -> float:
        """Energy to read every analyzed layer's input once per image."""
        total_bits = allocation.input_bits(stats)
        per_bit = (
            self.dram_activation_fraction * self.dram_pj_per_bit
            + (1.0 - self.dram_activation_fraction) * self.sram_pj_per_bit
        )
        return total_bits * per_bit

    def weight_energy_pj(
        self,
        parameter_counts: Mapping[str, int],
        weight_bits: Mapping[str, int],
        from_dram: bool = False,
    ) -> float:
        """Energy to stream each layer's weights once per image."""
        per_bit = self.dram_pj_per_bit if from_dram else self.sram_pj_per_bit
        return float(
            sum(
                parameter_counts[name] * weight_bits[name] * per_bit
                for name in parameter_counts
            )
        )


@dataclass
class SystemEnergyBreakdown:
    """Per-image inference energy split by component, in pJ."""

    mac_pj: float
    activation_pj: float
    weight_pj: float

    @property
    def total_pj(self) -> float:
        return self.mac_pj + self.activation_pj + self.weight_pj

    def as_dict(self) -> Dict[str, float]:
        return {
            "mac_pj": self.mac_pj,
            "activation_pj": self.activation_pj,
            "weight_pj": self.weight_pj,
            "total_pj": self.total_pj,
        }


def system_energy(
    stats: Mapping[str, LayerStats],
    allocation: BitwidthAllocation,
    weight_bits: Mapping[str, int],
    parameter_counts: Mapping[str, int],
    mac_model: MacEnergyModel = MacEnergyModel(),
    memory_model: MemoryEnergyModel = MemoryEnergyModel(),
) -> SystemEnergyBreakdown:
    """Full per-image energy: MACs + activation traffic + weight traffic."""
    return SystemEnergyBreakdown(
        mac_pj=mac_model.network_energy_pj(stats, allocation, weight_bits),
        activation_pj=memory_model.activation_energy_pj(stats, allocation),
        weight_pj=memory_model.weight_energy_pj(parameter_counts, weight_bits),
    )
