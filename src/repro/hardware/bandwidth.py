"""Memory-bandwidth model for activation traffic.

The paper's first objective minimizes "the total bandwidth used for
reading the input data" (Sec. V-D): every analyzed layer reads its
input tensor once per image, at that layer's bitwidth.  Bandwidth cost
is therefore exactly the ``#Input_bits`` row of Table II, and the
``BW save`` column of Table III is the relative reduction in
*effective* input bitwidth versus the baseline.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..errors import ReproError
from ..nn.statistics import LayerStats
from ..quant.allocation import BitwidthAllocation


def input_traffic_bits(
    stats: Mapping[str, LayerStats], allocation: BitwidthAllocation
) -> float:
    """Total activation-read traffic for one image, in bits."""
    return allocation.input_bits(stats)


def layer_traffic_bits(
    stats: Mapping[str, LayerStats], allocation: BitwidthAllocation
) -> Dict[str, float]:
    """Per-layer activation-read traffic (Table II ``#Input_bits`` row)."""
    return {
        alloc.name: float(stats[alloc.name].num_inputs * alloc.total_bits)
        for alloc in allocation
    }


def layer_traffic_bytes(
    stats: Mapping[str, LayerStats], allocation: BitwidthAllocation
) -> Dict[str, float]:
    """Per-layer activation-read traffic in *bytes* per image.

    The analytic prediction the quantized runtime's measured traffic is
    cross-checked against (``benchmarks/bench_quant.py``): the runtime
    moves each analyzed layer's input through a bit-packed buffer, so
    measured bytes should match this to within per-batch byte-boundary
    padding.
    """
    return {
        name: bits / 8.0
        for name, bits in layer_traffic_bits(stats, allocation).items()
    }


def bandwidth_saving_percent(
    stats: Mapping[str, LayerStats],
    baseline: BitwidthAllocation,
    optimized: BitwidthAllocation,
) -> float:
    """``BW save`` (%): reduction of input traffic vs the baseline."""
    base = input_traffic_bits(stats, baseline)
    if base <= 0:
        raise ReproError("baseline traffic must be positive")
    opt = input_traffic_bits(stats, optimized)
    return 100.0 * (base - opt) / base
