"""Bit-serial accelerator performance model (Stripes-style).

Stripes [Judd et al., MICRO'16] processes activations bit-serially, so
a layer's compute time is proportional to ``#MAC * input_bitwidth``
(the weight width is the parallel dimension).  The paper exploits this:
"The performance gain for Stripes' MAC unit can be derived directly
from the table because their performance scales almost linearly with
the saving in effective_bitwidth" (Sec. VI).

This module turns a bitwidth allocation into cycle counts and speedups
under that model, so benchmark harnesses can report performance the
same way the paper derives it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..errors import ReproError
from ..nn.statistics import LayerStats
from ..quant.allocation import BitwidthAllocation


@dataclass(frozen=True)
class BitSerialAccelerator:
    """A Stripes-like engine: ``lanes`` parallel serial MAC columns."""

    lanes: int = 4096
    baseline_bits: int = 16

    def layer_cycles(
        self, stats: Mapping[str, LayerStats], allocation: BitwidthAllocation
    ) -> Dict[str, float]:
        """Cycles per layer for one image: ``#MAC * bits / lanes``."""
        if self.lanes < 1:
            raise ReproError("accelerator needs at least one lane")
        return {
            alloc.name: stats[alloc.name].num_macs
            * alloc.total_bits
            / self.lanes
            for alloc in allocation
        }

    def total_cycles(
        self, stats: Mapping[str, LayerStats], allocation: BitwidthAllocation
    ) -> float:
        return sum(self.layer_cycles(stats, allocation).values())

    def baseline_cycles(self, stats: Mapping[str, LayerStats]) -> float:
        """Cycles of a fixed-width (16-bit) engine on the same network."""
        return sum(
            stat.num_macs * self.baseline_bits / self.lanes
            for stat in stats.values()
        )

    def speedup(
        self, stats: Mapping[str, LayerStats], allocation: BitwidthAllocation
    ) -> float:
        """Speedup over the fixed-width baseline (> 1 is faster)."""
        cycles = self.total_cycles(stats, allocation)
        if cycles <= 0:
            raise ReproError("allocation produced non-positive cycle count")
        # Restrict the baseline to the allocated layers for a fair ratio.
        base = sum(
            stats[name].num_macs * self.baseline_bits / self.lanes
            for name in allocation.names
        )
        return base / cycles
