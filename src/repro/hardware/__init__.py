"""Hardware cost models: MAC energy, bandwidth, bit-serial performance."""

from .accelerator import BitSerialAccelerator
from .bandwidth import (
    bandwidth_saving_percent,
    input_traffic_bits,
    layer_traffic_bits,
    layer_traffic_bytes,
)
from .energy import (
    MacEnergyModel,
    energy_saving_percent,
    per_layer_table,
    uniform_weight_bits,
)
from .loom import LoomAccelerator
from .memory import MemoryEnergyModel, SystemEnergyBreakdown, system_energy

__all__ = [
    "BitSerialAccelerator",
    "LoomAccelerator",
    "MacEnergyModel",
    "MemoryEnergyModel",
    "SystemEnergyBreakdown",
    "bandwidth_saving_percent",
    "energy_saving_percent",
    "input_traffic_bits",
    "layer_traffic_bits",
    "layer_traffic_bytes",
    "per_layer_table",
    "system_energy",
    "uniform_weight_bits",
]
