"""Fault-injection harness for chaos-testing the pipeline.

Resilience claims are worthless untested: this module wraps the real
substrate objects and injects configurable faults on a *seeded,
deterministic schedule*, so the `tests/resilience/` suite can prove
every degradation path end-to-end — NaN activations must trip the
guardrails, transient evaluator exceptions must be retried, a simulated
crash mid-profiling must be resumable, and SLSQP non-convergence must
degrade to equal-xi.

Nothing here is imported by the production pipeline; it is a test
harness shipped as library code so downstream users can chaos-test
their own deployments.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional, Set

import numpy as np

from ..errors import OptimizationError, ReproError, TransientError


class SimulatedCrash(ReproError):
    """Stands in for a process kill / OOM in chaos tests.

    Raised (rather than actually killing the interpreter) so tests can
    observe the half-finished state exactly as a restarted process
    would find it on disk.
    """


@dataclass
class FaultSchedule:
    """Deterministic schedule over a monotonically counted event stream.

    Explicit indices (``at``) fire exactly at those 0-based event
    counts; a ``rate`` adds seeded random faults on top.  The rate
    stream draws one random number per *event* (not per miss), so the
    same seed faults at the same event indices whatever ``at`` indices
    or ``max_faults`` cap are combined with it.  ``max_faults`` caps
    the *total* across both sources: an event where ``at`` and the
    rate stream coincide counts as one fault, and once the cap is
    reached no further event faults, including later ``at`` indices.

    One schedule instance is consumed by exactly one injector in
    exactly one process — its counters are its state.  Sending a
    schedule into a process-pool worker would silently fork that state
    (each process advancing its own copy), so consumption from a
    second process raises :class:`~repro.errors.ReproError`; give each
    worker its own schedule instead.
    """

    at: Set[int] = field(default_factory=set)
    rate: float = 0.0
    seed: int = 0
    max_faults: Optional[int] = None

    def __post_init__(self) -> None:
        self.at = set(self.at)
        self._rng = np.random.default_rng(self.seed)
        self._calls = 0
        self._fired = 0
        self._consumer_pid: Optional[int] = None

    @classmethod
    def once(cls, at_call: int) -> "FaultSchedule":
        return cls(at={at_call})

    @property
    def calls(self) -> int:
        """Events observed so far."""
        return self._calls

    @property
    def fired(self) -> int:
        """Faults actually injected so far."""
        return self._fired

    def should_fault(self) -> bool:
        """Advance the event counter; True when this event faults."""
        pid = os.getpid()
        if self._consumer_pid is None:
            self._consumer_pid = pid
        elif pid != self._consumer_pid:
            raise ReproError(
                "FaultSchedule is single-consumer: it started counting "
                f"in process {self._consumer_pid} but was consumed from "
                f"process {pid} (a pickled copy in a pool worker would "
                "fork its counters); give each worker its own schedule"
            )
        index = self._calls
        self._calls += 1
        # Draw the rate stream unconditionally so its fault indices
        # don't shift when `at` hits or the cap intervene.
        rate_hit = self.rate > 0 and bool(self._rng.random() < self.rate)
        if self.max_faults is not None and self._fired >= self.max_faults:
            return False
        hit = index in self.at or rate_hit
        if hit:
            self._fired += 1
        return hit


class ChaosNetwork:
    """A :class:`~repro.nn.graph.Network` wrapper that injects faults.

    Each forward-style call (``forward``, ``run_all``, ``forward_from``)
    counts as one event against the schedules; a vectorized
    ``forward_from_many`` counts one event *per stacked trial*, so the
    injection engine and the legacy trial-at-a-time loop consume the
    schedule identically and fault at the same trial:

    * ``nan_schedule`` — corrupt a slice of the output with NaN,
    * ``transient_schedule`` — raise :class:`~repro.errors.TransientError`,
    * ``crash_schedule`` — raise :class:`SimulatedCrash` (mid-run kill).

    Everything else delegates to the wrapped network, so the chaos
    wrapper drops into any API slot a real ``Network`` fits.
    """

    def __init__(
        self,
        network,
        nan_schedule: Optional[FaultSchedule] = None,
        transient_schedule: Optional[FaultSchedule] = None,
        crash_schedule: Optional[FaultSchedule] = None,
    ):
        self._network = network
        self.nan_schedule = nan_schedule
        self.transient_schedule = transient_schedule
        self.crash_schedule = crash_schedule

    # -- fault core ----------------------------------------------------
    def _pre_call(self) -> bool:
        """Raise scheduled exceptions; return whether to NaN the output."""
        if self.crash_schedule and self.crash_schedule.should_fault():
            raise SimulatedCrash("chaos: simulated crash mid-forward")
        if self.transient_schedule and self.transient_schedule.should_fault():
            raise TransientError("chaos: transient evaluator fault")
        return bool(self.nan_schedule and self.nan_schedule.should_fault())

    @staticmethod
    def _corrupt(array: np.ndarray) -> np.ndarray:
        out = np.array(array, dtype=np.float64, copy=True)
        flat = out.reshape(-1)
        flat[:: max(1, flat.size // 7)] = np.nan
        return out

    # -- forward surface -----------------------------------------------
    def forward(self, x, taps=None):
        poison = self._pre_call()
        out = self._network.forward(x, taps=taps)
        return self._corrupt(out) if poison else out

    def run_all(self, x, forward_fn=None):
        self._pre_call()
        return self._network.run_all(x, forward_fn=forward_fn)

    def forward_from(self, cache, layer, tap, forward_fn=None):
        poison = self._pre_call()
        out = self._network.forward_from(
            cache, layer, tap, forward_fn=forward_fn
        )
        return self._corrupt(out) if poison else out

    def forward_from_many(self, cache, layer, taps, forward_fn=None):
        # One schedule event per trial (crash/transient faults raise
        # here, before any replay work, just as the serial loop would
        # fault before that trial's forward_from).
        poison = [self._pre_call() for __ in taps]
        out = self._network.forward_from_many(
            cache, layer, taps, forward_fn=forward_fn
        )
        if any(poison):
            out = np.array(out, dtype=np.float64, copy=True)
            for index, hit in enumerate(poison):
                if hit:
                    out[index] = self._corrupt(out[index])
        return out

    # -- transparent delegation ----------------------------------------
    def __getattr__(self, name: str):
        return getattr(self._network, name)

    def __getitem__(self, name: str):
        return self._network[name]

    def __contains__(self, name: str) -> bool:
        return name in self._network

    def __len__(self) -> int:
        return len(self._network)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChaosNetwork({self._network!r})"


def flaky(
    fn: Callable,
    schedule: FaultSchedule,
    exception: Callable[[str], Exception] = TransientError,
):
    """Wrap any callable so scheduled calls raise instead of running."""

    def wrapper(*args, **kwargs):
        if schedule.should_fault():
            raise exception(
                f"chaos: injected fault on call {schedule.calls - 1}"
            )
        return fn(*args, **kwargs)

    return wrapper


def broken_solver(
    fail_times: Optional[int] = None,
    message: str = "chaos: SLSQP did not converge",
):
    """A drop-in for ``optimize_xi`` that fails its first N calls.

    ``fail_times=None`` fails forever — the knob for proving the
    equal-xi degradation endgame; a finite count proves multi-start
    recovery.  Accepts (and records) the retry kwargs the fallback
    chain passes, then delegates to the real solver once exhausted.
    """
    from ..optimize.sqp import optimize_xi

    state = {"calls": 0}

    def solver(objective, profiles, sigma, **kwargs):
        state["calls"] += 1
        if fail_times is None or state["calls"] <= fail_times:
            raise OptimizationError(message)
        return optimize_xi(objective, profiles, sigma, **kwargs)

    solver.state = state
    return solver


def crash_after_layers(
    completed: int,
    num_delta_points: int,
    num_repeats: int,
    num_batches: int = 1,
) -> FaultSchedule:
    """Schedule a crash once ``completed`` layer campaigns finished.

    Helper for resume tests with :func:`resumable_profile`, which runs
    one ``profile([name])`` campaign per layer.  Each campaign issues,
    in network-forward events: one scale pass, then per batch one
    ``run_all`` plus ``num_delta_points * num_repeats`` partial
    re-executions.  The crash fires on the first event of campaign
    ``completed`` — i.e. after exactly that many layers checkpointed.
    """
    per_layer = 1 + num_batches * (1 + num_delta_points * num_repeats)
    return FaultSchedule.once(completed * per_layer)
