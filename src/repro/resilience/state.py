"""Resumable run state: persist pipeline stages to disk.

A :class:`~repro.pipeline.PrecisionOptimizer` run spends nearly all of
its time in two stages — the per-layer injection campaign and the sigma
binary search.  :class:`RunState` checkpoints both under one directory
(``.npz`` per layer profile + JSON manifests, following the versioned
format of :mod:`repro.models.checkpoint`) so a crashed or interrupted
run resumes from the last *completed* unit of work instead of starting
over:

``<dir>/manifest.json``            run identity + format version
``<dir>/profiles/<layer>.npz``     one completed layer profile each
``<dir>/sigma/drop_<drop>.json``   one finished sigma search per drop

Layer profiles are written atomically (tmp file + rename), so a crash
mid-write never leaves a truncated checkpoint behind.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..analysis.profiler import LayerErrorProfile
from ..analysis.sigma_search import SigmaSearchResult
from ..errors import ResumeError

PathLike = Union[str, Path]

#: Bumped when the stored format changes incompatibly.
STATE_VERSION = 1


def _slug(name: str) -> str:
    """Filesystem-safe file stem for a layer name."""
    return re.sub(r"[^A-Za-z0-9_.-]", "_", name)


class RunState:
    """Versioned on-disk state for one optimizer run."""

    def __init__(self, directory: PathLike):
        self.directory = Path(directory)
        self.profiles_dir = self.directory / "profiles"
        self.sigma_dir = self.directory / "sigma"

    # -- manifest ------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    def bind(self, network_name: str) -> Dict[str, object]:
        """Create (or validate) the manifest for ``network_name``.

        A fresh directory gets a new manifest; an existing one must
        match both the format version and the network, otherwise
        resuming would silently mix incompatible measurements.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        self.profiles_dir.mkdir(exist_ok=True)
        self.sigma_dir.mkdir(exist_ok=True)
        if self.manifest_path.exists():
            manifest = self._read_manifest()
            if manifest.get("version") != STATE_VERSION:
                raise ResumeError(
                    f"run state at {self.directory} has version "
                    f"{manifest.get('version')}; expected {STATE_VERSION}"
                )
            if manifest.get("network") != network_name:
                raise ResumeError(
                    f"run state at {self.directory} belongs to network "
                    f"{manifest.get('network')!r}, not {network_name!r}"
                )
            return manifest
        manifest = {"version": STATE_VERSION, "network": network_name}
        self._atomic_write_json(self.manifest_path, manifest)
        return manifest

    def _read_manifest(self) -> Dict[str, object]:
        try:
            return json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ResumeError(
                f"run-state manifest {self.manifest_path} is unreadable: "
                f"{exc}"
            ) from exc

    @staticmethod
    def _atomic_write_json(path: Path, payload: Dict[str, object]) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        os.replace(tmp, path)

    # -- layer profiles ------------------------------------------------
    def _profile_path(self, name: str) -> Path:
        return self.profiles_dir / f"{_slug(name)}.npz"

    def save_layer_profile(self, profile: LayerErrorProfile) -> None:
        """Atomically persist one completed layer profile."""
        path = self._profile_path(profile.name)
        tmp = path.with_suffix(".tmp.npz")
        meta = {
            "version": STATE_VERSION,
            "name": profile.name,
            "lam": profile.lam,
            "theta": profile.theta,
            "r_squared": profile.r_squared,
            "max_relative_error": profile.max_relative_error,
        }
        np.savez_compressed(
            tmp,
            deltas=np.asarray(profile.deltas, dtype=np.float64),
            sigmas=np.asarray(profile.sigmas, dtype=np.float64),
            __manifest__=np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            ),
        )
        os.replace(tmp, path)

    def load_layer_profiles(self) -> Dict[str, LayerErrorProfile]:
        """Every completed layer profile on disk, keyed by layer name."""
        profiles: Dict[str, LayerErrorProfile] = {}
        if not self.profiles_dir.exists():
            return profiles
        for path in sorted(self.profiles_dir.glob("*.npz")):
            profile = self._load_profile_file(path)
            profiles[profile.name] = profile
        return profiles

    @staticmethod
    def _load_profile_file(path: Path) -> LayerErrorProfile:
        try:
            with np.load(path) as data:
                if "__manifest__" not in data:
                    raise ResumeError(
                        f"{path} is not a repro profile checkpoint"
                    )
                meta = json.loads(bytes(data["__manifest__"]).decode("utf-8"))
                if meta.get("version") != STATE_VERSION:
                    raise ResumeError(
                        f"profile checkpoint {path} has version "
                        f"{meta.get('version')}; expected {STATE_VERSION}"
                    )
                return LayerErrorProfile(
                    name=str(meta["name"]),
                    lam=float(meta["lam"]),
                    theta=float(meta["theta"]),
                    r_squared=float(meta["r_squared"]),
                    max_relative_error=float(meta["max_relative_error"]),
                    deltas=np.array(data["deltas"], dtype=np.float64),
                    sigmas=np.array(data["sigmas"], dtype=np.float64),
                )
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            raise ResumeError(
                f"profile checkpoint {path} is corrupt: {exc}"
            ) from exc

    # -- sigma search --------------------------------------------------
    def _sigma_path(self, accuracy_drop: float) -> Path:
        return self.sigma_dir / f"drop_{accuracy_drop:.6g}.json"

    def save_sigma_result(
        self, accuracy_drop: float, result: SigmaSearchResult
    ) -> None:
        payload = {
            "version": STATE_VERSION,
            "accuracy_drop": accuracy_drop,
            "sigma": result.sigma,
            "baseline_accuracy": result.baseline_accuracy,
            "target_accuracy": result.target_accuracy,
            "achieved_accuracy": result.achieved_accuracy,
            "evaluations": [[s, a] for s, a in result.evaluations],
            "elapsed_seconds": result.elapsed_seconds,
            "num_evaluations_saved": result.num_evaluations_saved,
        }
        self.sigma_dir.mkdir(parents=True, exist_ok=True)
        self._atomic_write_json(self._sigma_path(accuracy_drop), payload)

    def load_sigma_result(
        self, accuracy_drop: float
    ) -> Optional[SigmaSearchResult]:
        """The persisted search for this drop, or None if not finished."""
        path = self._sigma_path(accuracy_drop)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            if payload.get("version") != STATE_VERSION:
                raise ResumeError(
                    f"sigma checkpoint {path} has version "
                    f"{payload.get('version')}; expected {STATE_VERSION}"
                )
            return SigmaSearchResult(
                sigma=float(payload["sigma"]),
                baseline_accuracy=float(payload["baseline_accuracy"]),
                target_accuracy=float(payload["target_accuracy"]),
                achieved_accuracy=float(payload["achieved_accuracy"]),
                evaluations=[
                    (float(s), float(a)) for s, a in payload["evaluations"]
                ],
                elapsed_seconds=float(payload["elapsed_seconds"]),
                num_evaluations_saved=int(
                    payload.get("num_evaluations_saved", 0)
                ),
            )
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            raise ResumeError(
                f"sigma checkpoint {path} is corrupt: {exc}"
            ) from exc


def resumable_profile(
    profiler,
    state: RunState,
    layer_names=None,
    progress: bool = False,
):
    """Profile layer by layer, checkpointing each completed layer.

    Unlike :meth:`ErrorProfiler.profile` (which interleaves all layers
    over shared forward passes for throughput), this runs one full
    injection campaign per layer so a crash loses at most the layer in
    flight.  Already-checkpointed layers are loaded, not re-profiled.

    Returns a :class:`~repro.analysis.profiler.ProfileReport` covering
    all requested layers in network order.
    """
    from ..analysis.profiler import ProfileReport

    names = list(layer_names or profiler.network.analyzed_layer_names)
    done = state.load_layer_profiles()
    profiles: Dict[str, LayerErrorProfile] = {}
    num_images = min(profiler.settings.num_images, profiler.images.shape[0])
    elapsed = 0.0
    for name in names:
        if name in done:
            profiles[name] = done[name]
            continue
        report = profiler.profile([name], progress=progress)
        profile = report.profiles[name]
        state.save_layer_profile(profile)
        profiles[name] = profile
        elapsed += report.elapsed_seconds
    return ProfileReport(
        profiles=profiles, num_images=num_images, elapsed_seconds=elapsed
    )
