"""Resilience layer: guardrails, fallback chains, resumable state, chaos.

The paper's pipeline is a chain of numerically fragile stages; this
package makes failure a first-class path instead of a crash:

* :mod:`~repro.resilience.guards` — NaN/Inf and degenerate-value
  detection with structured :class:`Diagnostic` records.
* :mod:`~repro.resilience.fallback` — multi-start retry for the Eq. 8
  solver and graceful degradation to the equal-xi scheme.
* :mod:`~repro.resilience.state` — on-disk :class:`RunState` so
  interrupted runs resume from the last completed stage.
* :mod:`~repro.resilience.chaos` — seeded fault injection harness used
  by ``tests/resilience/`` to prove every degradation path.

Exports resolve lazily (PEP 562): the analysis/optimize modules import
``resilience.guards`` from deep inside the pipeline, and eager package
imports here would close an import cycle back onto them.
"""

from __future__ import annotations

from importlib import import_module
from typing import TYPE_CHECKING

_EXPORTS = {
    "ChaosNetwork": "chaos",
    "FaultSchedule": "chaos",
    "SimulatedCrash": "chaos",
    "broken_solver": "chaos",
    "crash_after_layers": "chaos",
    "flaky": "chaos",
    "DEFAULT_XI_RETRIES": "fallback",
    "FallbackReport": "fallback",
    "call_with_retries": "fallback",
    "solve_xi_with_fallback": "fallback",
    "Diagnostic": "guards",
    "R_SQUARED_FLOOR": "guards",
    "check_finite_array": "guards",
    "check_finite_scalar": "guards",
    "check_profile_fit": "guards",
    "check_sigma_bracket": "guards",
    "enforce": "guards",
    "RunState": "state",
    "STATE_VERSION": "state",
    "resumable_profile": "state",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .chaos import (  # noqa: F401
        ChaosNetwork,
        FaultSchedule,
        SimulatedCrash,
        broken_solver,
        crash_after_layers,
        flaky,
    )
    from .fallback import (  # noqa: F401
        DEFAULT_XI_RETRIES,
        FallbackReport,
        call_with_retries,
        solve_xi_with_fallback,
    )
    from .guards import (  # noqa: F401
        R_SQUARED_FLOOR,
        Diagnostic,
        check_finite_array,
        check_finite_scalar,
        check_profile_fit,
        check_sigma_bracket,
        enforce,
    )
    from .state import STATE_VERSION, RunState, resumable_profile  # noqa: F401


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    value = getattr(import_module(f".{module}", __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
