"""Numerical guardrails: catch NaN/Inf and degenerate values early.

The pipeline's stages (profiling regressions, sigma brackets, SLSQP)
each assume well-behaved inputs; when that assumption breaks, the
failure mode without guardrails is silent garbage propagating several
stages downstream.  Every guard here produces structured
:class:`Diagnostic` records naming the stage, layer, and offending
value, and :func:`enforce` turns them into either a
:class:`~repro.errors.NumericalGuardError` (strict mode) or a
:class:`~repro.errors.DegradedResultWarning` (permissive mode).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import DegradedResultWarning, NumericalGuardError

#: R-squared below this means the lambda/theta regression explains
#: essentially none of the variance — Eq. 5 does not hold for the layer.
R_SQUARED_FLOOR = 0.5


@dataclass(frozen=True)
class Diagnostic:
    """One structured guardrail finding."""

    stage: str  #: pipeline stage ("profiling", "regression", "sigma_search", "optimize")
    code: str  #: machine-readable kind ("non_finite", "non_positive_lambda", ...)
    message: str  #: human-readable description with the offending values
    layer: Optional[str] = None
    value: Optional[float] = None

    def __str__(self) -> str:
        where = f" [{self.layer}]" if self.layer else ""
        return f"{self.stage}{where}: {self.message}"


def check_finite_array(
    array: np.ndarray, stage: str, layer: Optional[str] = None
) -> List[Diagnostic]:
    """Diagnostics for NaN/Inf entries in an activation or measurement."""
    array = np.asarray(array)
    bad = ~np.isfinite(array)
    if not bad.any():
        return []
    num_nan = int(np.isnan(array).sum())
    num_inf = int(np.isinf(array).sum())
    return [
        Diagnostic(
            stage=stage,
            code="non_finite",
            message=(
                f"{num_nan} NaN and {num_inf} Inf values out of "
                f"{array.size} entries"
            ),
            layer=layer,
        )
    ]


def check_finite_scalar(
    value: float, stage: str, what: str, layer: Optional[str] = None
) -> List[Diagnostic]:
    """Diagnostics for a single non-finite scalar (accuracy, sigma, ...)."""
    if np.isfinite(value):
        return []
    return [
        Diagnostic(
            stage=stage,
            code="non_finite",
            message=f"{what} is {value!r}",
            layer=layer,
            value=float(value) if not np.isnan(value) else None,
        )
    ]


def check_profile_fit(
    name: str,
    lam: float,
    theta: float,
    r_squared: float,
    r_squared_floor: float = R_SQUARED_FLOOR,
) -> List[Diagnostic]:
    """Diagnostics for a degenerate lambda/theta regression.

    A non-positive lambda inverts Eq. 5 (more noise would *reduce* the
    output error); a near-zero R-squared means the linear model never
    held; either makes the downstream feasibility floors meaningless.
    """
    issues: List[Diagnostic] = []
    for what, value in (("lambda", lam), ("theta", theta), ("R^2", r_squared)):
        issues.extend(
            check_finite_scalar(value, "regression", what, layer=name)
        )
    if issues:
        return issues
    if lam <= 0:
        issues.append(
            Diagnostic(
                stage="regression",
                code="non_positive_lambda",
                message=f"fitted lambda {lam:.4g} is not positive",
                layer=name,
                value=float(lam),
            )
        )
    if r_squared < r_squared_floor:
        issues.append(
            Diagnostic(
                stage="regression",
                code="low_r_squared",
                message=(
                    f"R^2 {r_squared:.4g} below floor {r_squared_floor}; "
                    "the linear error model does not hold for this layer"
                ),
                layer=name,
                value=float(r_squared),
            )
        )
    return issues


def check_sigma_bracket(
    lower: float, upper: float, num_evaluations: int
) -> List[Diagnostic]:
    """Diagnostics for an unusable sigma-search bracket."""
    issues: List[Diagnostic] = []
    issues.extend(
        check_finite_scalar(lower, "sigma_search", "bracket lower bound")
    )
    issues.extend(
        check_finite_scalar(upper, "sigma_search", "bracket upper bound")
    )
    if issues:
        return issues
    if upper <= lower:
        issues.append(
            Diagnostic(
                stage="sigma_search",
                code="inverted_bracket",
                message=(
                    f"bracket [{lower:.4g}, {upper:.4g}] is empty after "
                    f"{num_evaluations} accuracy evaluations"
                ),
                value=float(upper - lower),
            )
        )
    return issues


def enforce(
    diagnostics: Sequence[Diagnostic],
    strict: bool,
    context: str = "pipeline guardrail",
) -> List[Diagnostic]:
    """Raise (strict) or warn (permissive) when diagnostics exist.

    Returns the diagnostics either way so callers can attach them to
    reports.  Non-finite findings always raise — there is no meaningful
    permissive interpretation of NaN activations.
    """
    diagnostics = list(diagnostics)
    if not diagnostics:
        return diagnostics
    fatal = strict or any(d.code == "non_finite" for d in diagnostics)
    summary = "; ".join(str(d) for d in diagnostics)
    if fatal:
        raise NumericalGuardError(
            f"{context}: {summary}", diagnostics=diagnostics
        )
    warnings.warn(
        f"{context}: {summary}", DegradedResultWarning, stacklevel=2
    )
    return diagnostics
