"""Solver fallback chain and transient-failure retries.

SLSQP on Eq. 8 can fail: a bad start point, floors pushed against the
unit simplex, or a degenerate regression feeding it nonsense.  Instead
of killing a run that already spent minutes profiling, the chain here

1. retries with perturbed (seeded) start points and progressively
   tightened xi floors — multi-start is the standard cure for SQP
   landing in a bad basin, and raising the floor keeps the iterates
   away from the ``sqrt(xi)`` singularity at zero, then
2. degrades gracefully to the analytic equal-xi scheme, tagging the
   result ``degraded=True`` so reports and callers can see a fallback
   produced it (strict mode raises
   :class:`~repro.errors.RetryExhaustedError` instead).

:func:`call_with_retries` is the generic transient-retry primitive the
sigma search uses for flaky accuracy evaluators.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Tuple, TypeVar

import numpy as np

from ..errors import (
    DegradedResultWarning,
    OptimizationError,
    RetryExhaustedError,
    TransientError,
)
from ..optimize.objective import Objective
from ..optimize.sqp import XI_FLOOR, XiSolution, equal_xi, optimize_xi
from ..telemetry.session import Telemetry

T = TypeVar("T")

#: Multi-start attempts after the deterministic first try.
DEFAULT_XI_RETRIES = 3

#: Each retry multiplies the xi floor by this factor.
FLOOR_TIGHTEN_FACTOR = 10.0


@dataclass
class FallbackReport:
    """Provenance of a resilient xi solve."""

    attempts: int = 1
    degraded: bool = False
    #: Per-attempt failure messages (empty when the first try succeeded).
    failures: List[str] = field(default_factory=list)

    def describe(self) -> str:
        if not self.degraded and self.attempts == 1:
            return "primary solver succeeded on first attempt"
        if self.degraded:
            return (
                f"DEGRADED to equal-xi after {self.attempts} failed "
                f"attempts ({'; '.join(self.failures)})"
            )
        return (
            f"recovered on attempt {self.attempts} "
            f"(earlier failures: {'; '.join(self.failures)})"
        )


def call_with_retries(
    fn: Callable[..., T],
    *args,
    retries: int = 2,
    transient=(TransientError,),
    label: str = "call",
    **kwargs,
) -> T:
    """Invoke ``fn``, retrying up to ``retries`` times on transient errors.

    Anything not in ``transient`` propagates immediately; exhaustion
    raises :class:`~repro.errors.RetryExhaustedError` carrying every
    attempt's message.
    """
    failures: List[str] = []
    for attempt in range(retries + 1):
        try:
            return fn(*args, **kwargs)
        except transient as exc:  # noqa: PERF203 - retry loop
            failures.append(f"attempt {attempt + 1}: {exc}")
    raise RetryExhaustedError(
        f"{label} failed {retries + 1} times; last error: {failures[-1]}",
        attempts=failures,
    )


def _perturbed_start(
    count: int, floors: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """A random feasible simplex point biased toward the equal share."""
    raw = rng.dirichlet(np.full(count, 4.0))
    start = np.maximum(raw, floors)
    return start / start.sum()


def solve_xi_with_fallback(
    objective: Objective,
    profiles: Mapping[str, "object"],
    sigma: float,
    max_retries: int = DEFAULT_XI_RETRIES,
    strict: bool = False,
    seed: int = 0,
    solver: Optional[Callable[..., XiSolution]] = None,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[XiSolution, FallbackReport]:
    """Solve Eq. 8 with multi-start retries and equal-xi degradation.

    ``solver`` defaults to :func:`repro.optimize.sqp.optimize_xi`; the
    chaos harness injects failing solvers through it to exercise every
    branch of the chain.
    """
    session = Telemetry.create(telemetry)
    tracer = session.tracer
    metrics = session.metrics
    solver = solver or optimize_xi
    names = [name for name in profiles if name in objective.rho]
    report = FallbackReport()
    rng = np.random.default_rng(seed)

    with tracer.span(
        "solver.solve",
        objective=objective.name,
        sigma=float(sigma),
        num_layers=len(names),
    ) as solve_span:
        for attempt in range(max_retries + 1):
            report.attempts = attempt + 1
            floor = XI_FLOOR * (FLOOR_TIGHTEN_FACTOR ** attempt)
            kwargs = {}
            if attempt > 0:
                metrics.counter("repro_solver_retries_total").inc()
                # Retry knobs: perturbed start + tightened floor.
                # Floors are recomputed inside the solver; we only pass
                # overrides the baseline call would not use.
                count = len(names)
                kwargs["start"] = _perturbed_start(
                    count, np.full(count, floor), rng
                )
                kwargs["xi_floor"] = floor
            with tracer.span(
                "solver.attempt", attempt=attempt + 1, xi_floor=float(floor)
            ) as attempt_span:
                try:
                    solution = solver(objective, profiles, sigma, **kwargs)
                except OptimizationError as exc:
                    attempt_span.set(outcome="error")
                    report.failures.append(f"attempt {attempt + 1}: {exc}")
                    continue
                if solution.success:
                    attempt_span.set(outcome="success")
                    solve_span.set(
                        attempts=report.attempts, degraded=False
                    )
                    return solution, report
                attempt_span.set(outcome="reported_failure")
                report.failures.append(
                    f"attempt {attempt + 1}: solver reported failure "
                    f"({solution.message})"
                )

        if strict:
            raise RetryExhaustedError(
                f"xi optimization failed after {report.attempts} attempts "
                f"for objective {objective.name!r}",
                attempts=report.failures,
            )

        # Graceful degradation: the analytic equal scheme is always
        # feasible and conservative — every layer gets the same share.
        report.degraded = True
        metrics.counter("repro_solver_fallbacks_total").inc()
        solve_span.set(attempts=report.attempts, degraded=True)
        warnings.warn(
            f"xi optimization degraded to equal-xi for objective "
            f"{objective.name!r} after {report.attempts} failed attempts",
            DegradedResultWarning,
            stacklevel=2,
        )
        xi = equal_xi(names)
        solution = XiSolution(
            xi=xi,
            objective_value=float("nan"),
            success=False,
            message=(
                "degraded to equal-xi after retry exhaustion: "
                + "; ".join(report.failures)
            ),
            num_iterations=0,
        )
    return solution, report
