"""End-to-end facade and reporting."""

from .ascii_plot import bar_chart, grouped_bar_chart, scatter_plot
from .optimizer import OptimizationOutcome, PrecisionOptimizer
from .report import (
    bitwidth_row,
    describe_manifest,
    describe_outcome,
    describe_profile_timings,
    format_table,
    savings_row,
)

__all__ = [
    "OptimizationOutcome",
    "PrecisionOptimizer",
    "bar_chart",
    "bitwidth_row",
    "describe_manifest",
    "describe_outcome",
    "describe_profile_timings",
    "format_table",
    "grouped_bar_chart",
    "savings_row",
    "scatter_plot",
]
