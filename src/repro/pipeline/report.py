"""Plain-text table rendering for experiment outputs.

Benchmarks print the same rows the paper's tables report; this module
keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    cells = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "-" * len(header)
    body = [
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        for row in cells
    ]
    return "\n".join([header, rule] + body)


def bitwidth_row(
    label: str, bitwidths: Mapping[str, int], order: Sequence[str]
) -> Dict[str, object]:
    """One labelled per-layer bitwidth row (Table II style)."""
    row: Dict[str, object] = {"scheme": label}
    for name in order:
        row[name] = bitwidths[name]
    return row


def savings_row(
    label: str,
    effective_input: float,
    effective_mac: float,
    bw_save_pct: Optional[float] = None,
    energy_save_pct: Optional[float] = None,
) -> Dict[str, object]:
    """One Table III row fragment."""
    row: Dict[str, object] = {
        "scheme": label,
        "eff_input_bits": effective_input,
        "eff_mac_bits": effective_mac,
    }
    if bw_save_pct is not None:
        row["bw_save_%"] = bw_save_pct
    if energy_save_pct is not None:
        row["energy_save_%"] = energy_save_pct
    return row


def describe_profile_timings(report) -> str:
    """One-paragraph stage/cost breakdown of a ProfileReport.

    Shows the engine's per-stage wall-clock split (reference forward,
    replay planning, injection replay, reduction, line fitting) and the
    per-layer replay-cost fractions that explain where the injection
    budget goes; see ``docs/performance.md``.
    """
    lines: List[str] = []
    if report.timings:
        total = sum(report.timings.values())
        parts = "  ".join(
            f"{name} {seconds:.2f}s"
            for name, seconds in report.timings.items()
        )
        jobs = f", jobs={report.jobs}" if getattr(report, "jobs", 1) != 1 else ""
        lines.append(f"stages ({total:.2f}s total{jobs}): {parts}")
    if report.replay_fractions:
        parts = "  ".join(
            f"{name} {fraction:.0%}"
            for name, fraction in sorted(
                report.replay_fractions.items(),
                key=lambda item: -item[1],
            )
        )
        lines.append(f"replay cost fractions: {parts}")
    return "\n".join(lines) if lines else "(no stage timings recorded)"


def describe_manifest(manifest: Mapping[str, object]) -> str:
    """One provenance line from an outcome's manifest dict."""
    git = str(manifest.get("git_sha") or "n/a")[:12]
    versions = manifest.get("versions") or {}
    numpy_version = (
        versions.get("numpy", "?") if isinstance(versions, Mapping) else "?"
    )
    return (
        f"manifest: config {manifest.get('config_hash', '?')}  git {git}  "
        f"seed {manifest.get('seed')}  model {manifest.get('model') or 'n/a'}"
        f"  numpy {numpy_version}"
    )


def describe_outcome(outcome, stats=None, profile_report=None) -> str:
    """Multi-line human-readable report of an OptimizationOutcome.

    Includes the sigma search evidence, per-layer formats (with xi
    shares), validation results, the run-provenance manifest, and —
    when ``stats`` is given — the effective bitwidths under both of the
    paper's objectives.  Pass the ``ProfileReport`` as
    ``profile_report`` to also include the per-stage timing breakdown.
    """
    lines: List[str] = []
    allocation = outcome.result.allocation
    manifest = getattr(outcome, "manifest", None)
    if manifest:
        lines.append(describe_manifest(manifest))
    lines.append(
        f"objective: {outcome.result.objective.name}  "
        f"sigma_YL: {outcome.result.sigma:.4f} "
        f"(search found {outcome.sigma_result.sigma:.4f} in "
        f"{outcome.sigma_result.num_evaluations} accuracy evaluations"
        + (
            f", backed off {outcome.backoff_steps}x)"
            if outcome.backoff_steps
            else ")"
        )
    )
    if getattr(outcome.result, "degraded", False):
        fallback = outcome.result.fallback
        detail = f" ({fallback.describe()})" if fallback is not None else ""
        lines.append(
            "DEGRADED: xi optimization fell back to the equal scheme "
            "after solver exhaustion; the allocation is feasible but "
            "conservative" + detail
        )
    rows = []
    for layer in allocation:
        row: Dict[str, object] = {
            "layer": layer.name,
            "I": layer.integer_bits,
            "F": layer.fraction_bits,
            "bits": layer.total_bits,
            "xi": round(outcome.result.xi.get(layer.name, 0.0), 4),
        }
        rows.append(row)
    lines.append(format_table(rows))
    if stats is not None:
        rho_in = {name: float(stats[name].num_inputs) for name in allocation.names}
        rho_mac = {name: float(stats[name].num_macs) for name in allocation.names}
        lines.append(
            f"effective bitwidth: input-weighted "
            f"{allocation.effective_bitwidth(rho_in):.2f}, MAC-weighted "
            f"{allocation.effective_bitwidth(rho_mac):.2f}"
        )
    lines.append(
        f"accuracy: baseline {outcome.baseline_accuracy:.4f}, target "
        f"{outcome.sigma_result.target_accuracy:.4f}"
        + (
            f", quantized {outcome.validated_accuracy:.4f} "
            f"({'constraint met' if outcome.meets_constraint else 'VIOLATED'})"
            if outcome.validated_accuracy is not None
            else " (not validated)"
        )
    )
    if outcome.weight_search is not None:
        lines.append(
            f"weight bitwidth (Sec. V-E): {outcome.weight_search.bits} "
            f"({outcome.weight_search.evaluations} evaluations)"
        )
    if profile_report is not None:
        lines.append(describe_profile_timings(profile_report))
    return "\n".join(lines)
