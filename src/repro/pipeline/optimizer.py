"""End-to-end precision optimization facade.

:class:`PrecisionOptimizer` strings together the paper's stages with
caching, so the expensive parts run once per network:

1. measure per-layer statistics (``#Input``, ``#MAC``, ``max|X_K|``),
2. profile ``lambda_K / theta_K`` by error injection (Sec. V-A),
3. binary-search the output error budget ``sigma_YL`` for the accuracy
   constraint (Sec. V-C, Scheme 1 or 2),
4. optimize the error shares ``xi`` for an objective and emit bitwidths
   (Sec. V-D), and
5. validate the allocation on the actual quantized network, optionally
   searching the weight bitwidth afterwards (Sec. V-E).

"Changing the user constraints only requires re-running the last
optimization step" — the caches make that true here as well.

Resilience: with ``state_dir`` set, the expensive stages (per-layer
profiling, sigma searches) checkpoint to disk and a re-run resumes from
the last completed unit of work; ``strict`` escalates guardrail
warnings and solver degradation to errors; the default fallback chain
retries a failed Eq. 8 solve and degrades to equal-xi with the outcome
tagged ``degraded=True``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..analysis.profiler import ErrorProfiler, ProfileReport
from ..analysis.sigma_search import (
    Scheme1Evaluator,
    Scheme2Evaluator,
    SigmaSearchResult,
    find_sigma,
)
from ..cache import ResultCache, dataset_digest, make_key, network_digest, open_cache
from ..config import (
    ParallelSettings,
    ProfileSettings,
    SearchSettings,
    TelemetrySettings,
)
from ..data import Dataset
from ..errors import ReproError
from ..models.evaluate import top1_accuracy
from ..nn.graph import Network
from ..nn.statistics import LayerStats, measure_ranges, ordered_stats
from ..optimize.allocator import (
    AllocationResult,
    allocate_equal_scheme,
    allocate_optimized,
)
from ..telemetry.manifest import build_manifest
from ..telemetry.session import Telemetry
from ..weights.search import WeightSearchResult, search_weight_bitwidth


@dataclass
class OptimizationOutcome:
    """A finished optimization: allocation + validation evidence."""

    result: AllocationResult
    sigma_result: SigmaSearchResult
    baseline_accuracy: float
    validated_accuracy: Optional[float] = None
    weight_search: Optional[WeightSearchResult] = None
    #: Times the sigma budget was shrunk because true-quantization
    #: validation came in below target (0 on the common path).
    backoff_steps: int = 0
    #: Run provenance (config hash, git SHA, seeds, versions) — see
    #: :func:`repro.telemetry.build_manifest`.  Default-on; attached by
    #: :class:`PrecisionOptimizer` regardless of telemetry settings.
    manifest: Optional[Dict[str, Any]] = None

    @property
    def bitwidths(self) -> Dict[str, int]:
        return self.result.bitwidths()

    @property
    def meets_constraint(self) -> Optional[bool]:
        if self.validated_accuracy is None:
            return None
        return self.validated_accuracy >= self.sigma_result.target_accuracy

    @property
    def degraded(self) -> bool:
        """True when the xi came from a fallback, not the Eq. 8 solver."""
        return self.result.degraded


class PrecisionOptimizer:
    """Profile once, then optimize for any objective and constraint."""

    def __init__(
        self,
        network: Network,
        dataset: Dataset,
        profile_settings: Optional[ProfileSettings] = None,
        search_settings: Optional[SearchSettings] = None,
        scheme: str = "scheme1",
        batch_size: int = 64,
        refine: bool = True,
        state_dir: Optional[Union[str, "object"]] = None,
        strict: bool = False,
        fallback: bool = True,
        transient_retries: int = 2,
        xi_solver: Optional[Callable] = None,
        verify: bool = True,
        parallel: Optional[ParallelSettings] = None,
        telemetry: Union[None, TelemetrySettings, Telemetry] = None,
        cache: Union[None, str, "Path", ResultCache] = None,
    ):
        if scheme not in ("scheme1", "scheme2"):
            raise ReproError('scheme must be "scheme1" or "scheme2"')
        self.network = network
        self.dataset = dataset
        self.profile_settings = profile_settings or ProfileSettings()
        self.search_settings = search_settings or SearchSettings()
        self.scheme = scheme
        self.batch_size = batch_size
        #: Observability session (spans + metrics, opt-in via
        #: ``TelemetrySettings``) shared by every stage of this
        #: pipeline.  The run manifest is default-on: it is built here
        #: and attached to every outcome even with tracing disabled.
        self.telemetry = Telemetry.create(telemetry)
        #: Injection-engine execution knobs (jobs, backend, batching)
        #: for both profiling campaigns; None keeps engine defaults.
        self.parallel = parallel or ParallelSettings()
        #: Persistent content-addressed result cache (``repro.cache``):
        #: a directory path or open :class:`ResultCache`, or None for
        #: off (the default).  Feeds every expensive surface — clean
        #: activations, per-layer fits, sigma evaluations, stats,
        #: baseline accuracy, and whole optimization outcomes — and is
        #: guaranteed bit-identical to recomputation.
        self.cache = open_cache(cache, metrics=self.telemetry.metrics)
        self._digests: Optional[Tuple[str, str]] = None
        #: Re-profile around the operating Deltas once sigma is known
        #: (the paper's iterative Delta guessing, Sec. V-A).
        self.refine = refine
        #: Strict mode: guardrail diagnostics and solver exhaustion
        #: raise instead of warning/degrading.
        self.strict = strict
        #: Route Eq. 8 solves through the resilience fallback chain.
        self.fallback = fallback
        #: Transient-evaluator retries during the sigma search.
        self.transient_retries = transient_retries
        #: Override the Eq. 8 solver (dependency injection for chaos
        #: testing; None means the real SLSQP solver).
        self.xi_solver = xi_solver
        #: On-disk checkpointing: bind (or resume) a RunState when a
        #: state directory is given.  The coarse per-layer profiles and
        #: every finished sigma search persist there; a crashed run
        #: resumes from the last completed layer/search.
        self.state = None
        if state_dir is not None:
            from ..resilience.state import RunState

            self.state = (
                state_dir
                if isinstance(state_dir, RunState)
                else RunState(state_dir)
            )
            self.state.bind(network.name)
        #: Pre-run static verification (graph structure, shape
        #: re-inference, parameter dtypes) and post-allocation audits
        #: (overflow, negative-F, xi invariants, Eq. 5 fit gates).
        #: Strict mode escalates findings to errors; the default routes
        #: them through the resilience diagnostics as warnings.
        self.verify = verify
        if verify:
            self._verify_network()
        if self.telemetry.manifest is None:
            self.telemetry.manifest = build_manifest(
                config=self._manifest_config(),
                seed=self.search_settings.seed,
                model=network.name,
            )
        self._stats: Optional[Dict[str, LayerStats]] = None
        self._profiles: Optional[ProfileReport] = None
        self._refined: Dict[float, ProfileReport] = {}
        self._baseline_accuracy: Optional[float] = None
        self._sigma_cache: Dict[float, SigmaSearchResult] = {}
        self._scheme1_evaluator: Optional[Scheme1Evaluator] = None
        self._scheme2_evaluator: Optional[Scheme2Evaluator] = None

    # ------------------------------------------------------------------
    def _manifest_config(self) -> Dict[str, Any]:
        """The knobs that determine this run's numerical outputs."""
        return {
            "network": self.network.name,
            "scheme": self.scheme,
            "batch_size": self.batch_size,
            "refine": self.refine,
            "strict": self.strict,
            "fallback": self.fallback,
            "profile": dataclasses.asdict(self.profile_settings),
            "search": dataclasses.asdict(self.search_settings),
            "parallel": dataclasses.asdict(self.parallel),
        }

    def _cache_digests(self) -> Tuple[str, str]:
        """(network digest, dataset digest), computed once per instance."""
        if self._digests is None:
            self._digests = (
                network_digest(self.network),
                dataset_digest(self.dataset),
            )
        return self._digests

    @property
    def layer_names(self) -> List[str]:
        return self.network.analyzed_layer_names

    def baseline_accuracy(self) -> float:
        """Float (exact) top-1 accuracy on the evaluation dataset."""
        if self._baseline_accuracy is None and self.cache is not None:
            net, data = self._cache_digests()
            key = make_key(
                {
                    "kind": "baseline-accuracy",
                    "network": net,
                    "dataset": data,
                    "batch_size": self.batch_size,
                }
            )
            stored = self.cache.get_json("baseline", key)
            if isinstance(stored, dict) and "accuracy" in stored:
                self._baseline_accuracy = float(stored["accuracy"])
            else:
                self._baseline_accuracy = top1_accuracy(
                    self.network, self.dataset, batch_size=self.batch_size
                )
                self.cache.put_json(
                    "baseline", key, {"accuracy": self._baseline_accuracy}
                )
        if self._baseline_accuracy is None:
            self._baseline_accuracy = top1_accuracy(
                self.network, self.dataset, batch_size=self.batch_size
            )
        return self._baseline_accuracy

    def stats(self) -> Dict[str, LayerStats]:
        """Per-layer statistics, measuring max|X_K| on the dataset."""
        if self._stats is None and self.cache is not None:
            net, data = self._cache_digests()
            # Per-layer maxima are exact order-independent reductions,
            # so batch_size stays out of the key.
            key = make_key(
                {"kind": "layer-stats", "network": net, "dataset": data}
            )
            stored = self.cache.get_json("stats", key)
            if isinstance(stored, dict) and "layers" in stored:
                self._stats = {
                    entry["name"]: LayerStats(
                        name=entry["name"],
                        num_inputs=int(entry["num_inputs"]),
                        num_macs=int(entry["num_macs"]),
                        max_abs_input=float(entry["max_abs_input"]),
                    )
                    for entry in stored["layers"]
                }
            else:
                self._stats = measure_ranges(
                    self.network,
                    self.dataset.images,
                    batch_size=self.batch_size,
                )
                self.cache.put_json(
                    "stats",
                    key,
                    {
                        "layers": [
                            {
                                "name": s.name,
                                "num_inputs": s.num_inputs,
                                "num_macs": s.num_macs,
                                "max_abs_input": s.max_abs_input,
                            }
                            for s in self._stats.values()
                        ]
                    },
                )
        if self._stats is None:
            self._stats = measure_ranges(
                self.network, self.dataset.images, batch_size=self.batch_size
            )
        return self._stats

    def ordered_stats(self) -> List[LayerStats]:
        return ordered_stats(self.network, self.stats())

    def profile(self, progress: bool = False) -> ProfileReport:
        """lambda/theta for every analyzed layer (cached).

        With a bound run state, profiling goes layer by layer with a
        checkpoint after each completed layer, and resuming a crashed
        run re-profiles only the layers that never finished.
        """
        if self._profiles is None:
            profiler = ErrorProfiler(
                self.network,
                self.dataset.images,
                settings=self.profile_settings,
                batch_size=min(self.batch_size, 32),
                strict=self.strict,
                parallel=self.parallel,
                telemetry=self.telemetry,
                cache=self.cache,
            )
            if self.state is not None:
                from ..resilience.state import resumable_profile

                self._profiles = resumable_profile(
                    profiler, self.state, progress=progress
                )
            else:
                self._profiles = profiler.profile(progress=progress)
        return self._profiles

    # ------------------------------------------------------------------
    def sigma_for_drop(self, accuracy_drop: float) -> SigmaSearchResult:
        """Binary search for the tolerable sigma_YL (cached per drop).

        With a bound run state, finished searches persist to disk and a
        resumed run loads them instead of re-searching.
        """
        if accuracy_drop not in self._sigma_cache and self.state is not None:
            stored = self.state.load_sigma_result(accuracy_drop)
            if stored is not None:
                self._sigma_cache[accuracy_drop] = stored
        if accuracy_drop not in self._sigma_cache:
            if self.scheme == "scheme2":
                if self._scheme2_evaluator is None:
                    self._scheme2_evaluator = Scheme2Evaluator(
                        self.network,
                        self.dataset,
                        batch_size=self.batch_size,
                        num_trials=self.search_settings.num_trials,
                        seed=self.search_settings.seed,
                        telemetry=self.telemetry,
                        cache=self.cache,
                    )
                evaluator = self._scheme2_evaluator
            else:
                # One evaluator across all accuracy drops: its
                # (sigma, scheme, seed) memo makes the shared
                # doubling-phase probes free after the first search.
                if self._scheme1_evaluator is None:
                    self._scheme1_evaluator = Scheme1Evaluator(
                        self.network,
                        self.dataset,
                        self.profile().profiles,
                        batch_size=self.batch_size,
                        num_trials=self.search_settings.num_trials,
                        seed=self.search_settings.seed,
                        telemetry=self.telemetry,
                        cache=self.cache,
                    )
                evaluator = self._scheme1_evaluator
            self._sigma_cache[accuracy_drop] = find_sigma(
                evaluator.accuracy,
                self.baseline_accuracy(),
                accuracy_drop,
                self.search_settings,
                transient_retries=self.transient_retries,
                telemetry=self.telemetry,
                evaluations_saved_fn=lambda: evaluator.cache_hits,
            )
            if self.state is not None:
                self.state.save_sigma_result(
                    accuracy_drop, self._sigma_cache[accuracy_drop]
                )
        return self._sigma_cache[accuracy_drop]

    def profiles_for_drop(self, accuracy_drop: float):
        """Profiles to allocate with: refined around the operating point.

        The initial wide-grid fit is conservative when the allocator
        requests Deltas near or beyond the grid top.  With ``refine``
        enabled, a second injection campaign re-measures lambda/theta
        on grids centred on the equal-scheme operating Deltas for this
        accuracy constraint (the paper's iterative Delta guessing).
        """
        if not self.refine:
            return self.profile().profiles
        if accuracy_drop not in self._refined:
            from ..analysis.sigma_search import deltas_for_sigma

            sigma = self.sigma_for_drop(accuracy_drop).sigma
            coarse = self.profile().profiles
            operating = deltas_for_sigma(coarse, sigma)
            floor = {
                name: max(delta, 1e-9)
                for name, delta in operating.items()
            }
            profiler = ErrorProfiler(
                self.network,
                self.dataset.images,
                settings=self.profile_settings,
                batch_size=min(self.batch_size, 32),
                strict=self.strict,
                parallel=self.parallel,
                telemetry=self.telemetry,
                cache=self.cache,
            )
            self._refined[accuracy_drop] = profiler.profile_around(floor)
        return self._refined[accuracy_drop].profiles

    # ------------------------------------------------------------------
    def optimize(
        self,
        objective="input",
        accuracy_drop: float = 0.01,
        validate: bool = True,
        search_weights: bool = False,
        weight_start_bits: int = 16,
    ) -> OptimizationOutcome:
        """Run the full flow for one objective and accuracy constraint.

        If true-quantization validation lands below target (possible on
        small evaluation sets, where the constraint sits inside
        measurement noise), the sigma budget is shrunk by 7% and the
        allocation recomputed, a few times at most — keeping the
        paper's "no accuracy criterion was violated" guarantee.
        """
        objective_label = (
            objective
            if isinstance(objective, str)
            else getattr(objective, "name", str(objective))
        )
        # Whole-outcome memoization: a named-objective run with the
        # stock solver is a pure function of the key below, so a warm
        # sweep restores the allocation without touching the pipeline.
        # Custom objectives/solvers are opaque callables and bypass it.
        outcome_key: Optional[str] = None
        if isinstance(objective, str) and self.xi_solver is None:
            outcome_key = self._outcome_key(
                objective, accuracy_drop, validate, search_weights,
                weight_start_bits,
            )
            restored = self._restore_outcome(outcome_key)
            if restored is not None:
                return restored
        with self.telemetry.tracer.span(
            "pipeline.optimize",
            objective=objective_label,
            accuracy_drop=float(accuracy_drop),
            scheme=self.scheme,
        ) as pipeline_span, self.telemetry.resources.measure(
            "pipeline.optimize", span=pipeline_span
        ):
            sigma_result = self.sigma_for_drop(accuracy_drop)
            profiles = self.profiles_for_drop(accuracy_drop)
            sigma = sigma_result.sigma
            backoff = 0
            max_backoffs = 6 if validate else 0
            while True:
                result = allocate_optimized(
                    objective,
                    profiles,
                    self.stats(),
                    sigma,
                    ordered_names=self.layer_names,
                    fallback=self.fallback,
                    strict=self.strict,
                    seed=self.search_settings.seed,
                    solver=self.xi_solver,
                    telemetry=self.telemetry,
                )
                outcome, weight_search_failed = self._finish(
                    result, sigma_result, validate, search_weights,
                    weight_start_bits, accuracy_drop,
                )
                outcome.backoff_steps = backoff
                acceptable = (
                    not validate
                    or (outcome.meets_constraint and not weight_search_failed)
                )
                if acceptable or backoff >= max_backoffs:
                    pipeline_span.set(
                        sigma=float(sigma),
                        backoff_steps=backoff,
                        degraded=outcome.degraded,
                    )
                    if outcome_key is not None:
                        self._store_outcome(outcome_key, outcome)
                    return outcome
                sigma *= 0.93
                backoff += 1

    def equal_scheme(
        self,
        accuracy_drop: float = 0.01,
        validate: bool = True,
    ) -> OptimizationOutcome:
        """The analytic equal-share allocation (no objective)."""
        sigma_result = self.sigma_for_drop(accuracy_drop)
        result = allocate_equal_scheme(
            self.profiles_for_drop(accuracy_drop),
            self.stats(),
            sigma_result.sigma,
            ordered_names=self.layer_names,
        )
        outcome, __ = self._finish(result, sigma_result, validate, False, 16,
                                   accuracy_drop)
        return outcome

    # ------------------------------------------------------------------
    def _outcome_key(
        self,
        objective: str,
        accuracy_drop: float,
        validate: bool,
        search_weights: bool,
        weight_start_bits: int,
    ) -> str:
        net, data = self._cache_digests()
        return make_key(
            {
                "kind": "outcome",
                "network": net,
                "dataset": data,
                "objective": objective,
                "accuracy_drop": float(accuracy_drop),
                "validate": validate,
                "search_weights": search_weights,
                "weight_start_bits": weight_start_bits,
                "scheme": self.scheme,
                "batch_size": self.batch_size,
                "refine": self.refine,
                "strict": self.strict,
                "fallback": self.fallback,
                "profile": dataclasses.asdict(self.profile_settings),
                "search": dataclasses.asdict(self.search_settings),
            }
        )

    def _store_outcome(
        self, key: str, outcome: OptimizationOutcome
    ) -> None:
        if self.cache is None:
            return
        from ..quant.serialization import allocation_to_dict

        result = outcome.result
        sig = outcome.sigma_result
        weight = outcome.weight_search
        self.cache.put_json(
            "outcome",
            key,
            {
                "allocation": allocation_to_dict(result.allocation),
                "xi": {k: float(v) for k, v in result.xi.items()},
                "deltas": {k: float(v) for k, v in result.deltas.items()},
                "sigma": float(result.sigma),
                "objective": result.objective.name,
                "degraded": bool(result.degraded),
                "sigma_result": {
                    "sigma": float(sig.sigma),
                    "baseline_accuracy": float(sig.baseline_accuracy),
                    "target_accuracy": float(sig.target_accuracy),
                    "achieved_accuracy": float(sig.achieved_accuracy),
                    "evaluations": [
                        [float(s), float(a)] for s, a in sig.evaluations
                    ],
                    "elapsed_seconds": float(sig.elapsed_seconds),
                    "num_evaluations_saved": int(sig.num_evaluations_saved),
                },
                "baseline_accuracy": float(outcome.baseline_accuracy),
                "validated_accuracy": (
                    None
                    if outcome.validated_accuracy is None
                    else float(outcome.validated_accuracy)
                ),
                "backoff_steps": int(outcome.backoff_steps),
                "weight_search": (
                    None
                    if weight is None
                    else {
                        "bits": int(weight.bits),
                        "accuracy": float(weight.accuracy),
                        "evaluations": int(weight.evaluations),
                    }
                ),
            },
        )

    def _restore_outcome(self, key: str) -> Optional[OptimizationOutcome]:
        """Rebuild a finished optimization from its cached JSON form.

        The restored allocation goes through the same static audit as
        a fresh one (``verify=True``) before it is handed back — a
        damaged or stale entry can therefore never return silently.
        """
        if self.cache is None:
            return None
        from ..optimize.objective import resolve_objective
        from ..quant.serialization import allocation_from_dict

        stored = self.cache.get_json("outcome", key)
        if not isinstance(stored, dict):
            return None
        try:
            allocation = allocation_from_dict(stored["allocation"])
            result = AllocationResult(
                allocation=allocation,
                xi={k: float(v) for k, v in stored["xi"].items()},
                deltas={k: float(v) for k, v in stored["deltas"].items()},
                sigma=float(stored["sigma"]),
                objective=resolve_objective(
                    stored["objective"], self.stats()
                ),
                solution=None,
                degraded=bool(stored["degraded"]),
            )
            sig = stored["sigma_result"]
            sigma_result = SigmaSearchResult(
                sigma=float(sig["sigma"]),
                baseline_accuracy=float(sig["baseline_accuracy"]),
                target_accuracy=float(sig["target_accuracy"]),
                achieved_accuracy=float(sig["achieved_accuracy"]),
                evaluations=[
                    (float(s), float(a)) for s, a in sig["evaluations"]
                ],
                elapsed_seconds=float(sig["elapsed_seconds"]),
                num_evaluations_saved=int(
                    sig.get("num_evaluations_saved", 0)
                ),
            )
            weight = stored.get("weight_search")
            weight_search = (
                None
                if weight is None
                else WeightSearchResult(
                    bits=int(weight["bits"]),
                    accuracy=float(weight["accuracy"]),
                    evaluations=int(weight["evaluations"]),
                )
            )
            outcome = OptimizationOutcome(
                result=result,
                sigma_result=sigma_result,
                baseline_accuracy=float(stored["baseline_accuracy"]),
                validated_accuracy=(
                    None
                    if stored.get("validated_accuracy") is None
                    else float(stored["validated_accuracy"])
                ),
                weight_search=weight_search,
                backoff_steps=int(stored.get("backoff_steps", 0)),
                manifest=(
                    self.telemetry.manifest.as_dict()
                    if self.telemetry.manifest is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError, ReproError):
            # Malformed or schema-drifted entry: behave exactly like a
            # miss and let the pipeline recompute (then overwrite it).
            return None
        if self.verify:
            # Same allocation audit a fresh run gets (overflow, xi
            # invariants, format sanity) — cache restoration is not a
            # verification bypass.
            self._audit_allocation(result)
        self.telemetry.metrics.counter("repro_outcome_restored_total").inc()
        return outcome

    # ------------------------------------------------------------------
    def _verify_network(self) -> None:
        """Pass-1 static verification before any data is executed.

        Structure, shape re-inference, and parameter dtypes (see
        :mod:`repro.check`).  Findings flow through the resilience
        :func:`~repro.resilience.enforce` machinery: strict mode
        raises :class:`~repro.errors.NumericalGuardError`, the default
        emits :class:`~repro.errors.DegradedResultWarning`.
        """
        from ..check import verify_network
        from ..resilience.guards import enforce

        diagnostics = verify_network(self.network).to_diagnostics(
            stage="static_check"
        )
        if diagnostics:
            enforce(
                diagnostics,
                strict=self.strict,
                context=(
                    f"pre-run static verification of network "
                    f"{self.network.name!r}"
                ),
            )

    def _audit_allocation(self, result: AllocationResult) -> None:
        """Static audit of a finished allocation (overflow, xi, widths).

        Eq. 5 fit quality is already gated during profiling
        (:func:`~repro.resilience.check_profile_fit`), so only the
        format and xi audits run here.
        """
        from ..check import audit_allocation_result
        from ..resilience.guards import enforce

        report = audit_allocation_result(
            result, stats=self.stats(), network=self.network
        )
        diagnostics = report.to_diagnostics(stage="allocation_audit")
        if diagnostics:
            enforce(
                diagnostics,
                strict=self.strict,
                context=f"static audit of the {result.objective.name!r} "
                "allocation",
            )

    # ------------------------------------------------------------------
    def _finish(
        self,
        result: AllocationResult,
        sigma_result: SigmaSearchResult,
        validate: bool,
        search_weights: bool,
        weight_start_bits: int,
        accuracy_drop: float,
    ):
        """Validate and (optionally) weight-search one allocation.

        Returns ``(outcome, weight_search_failed)``; a failed weight
        search means the input allocation left no margin for any weight
        quantization, which the caller treats like a validation miss
        (shrink the budget and retry).
        """
        from ..errors import SearchError

        if self.verify:
            self._audit_allocation(result)
        validated = None
        if validate:
            with self.telemetry.tracer.span(
                "pipeline.validate", objective=result.objective.name
            ) as validate_span:
                validated = top1_accuracy(
                    self.network,
                    self.dataset,
                    taps=result.allocation.taps(self.network),
                    batch_size=self.batch_size,
                )
                validate_span.set(accuracy=float(validated))
        weight_search = None
        weight_search_failed = False
        if search_weights:
            try:
                weight_search = search_weight_bitwidth(
                    self.network,
                    self.dataset,
                    self.baseline_accuracy(),
                    accuracy_drop,
                    input_taps=result.allocation.taps(self.network),
                    start_bits=weight_start_bits,
                    batch_size=self.batch_size,
                )
            except SearchError:
                weight_search_failed = True
        manifest = self.telemetry.manifest
        outcome = OptimizationOutcome(
            result=result,
            sigma_result=sigma_result,
            baseline_accuracy=self.baseline_accuracy(),
            validated_accuracy=validated,
            weight_search=weight_search,
            manifest=manifest.as_dict() if manifest is not None else None,
        )
        return outcome, weight_search_failed
