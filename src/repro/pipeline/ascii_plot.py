"""Terminal plotting: render the paper's figures without matplotlib.

The repo is terminal-first (offline, CI-friendly); these helpers draw
scatter/line series and bar charts as plain text so benchmark output
shows the *shape* of Fig. 2-4, not just their numbers.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

import numpy as np

from ..errors import ReproError

_MARKERS = "ox+*#@%&"


def scatter_plot(
    series: Mapping[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Multi-series scatter plot (one marker per series).

    ``series`` maps a label to ``(xs, ys)``.  Axis ranges cover all
    series; the legend lists marker assignments.
    """
    if not series:
        raise ReproError("scatter_plot needs at least one series")
    all_x = np.concatenate([np.asarray(xs, dtype=float) for xs, __ in series.values()])
    all_y = np.concatenate([np.asarray(ys, dtype=float) for __, ys in series.values()])
    if all_x.size == 0:
        raise ReproError("series are empty")
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for __ in range(height)]
    for index, (label, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            col = int((float(x) - x_lo) / x_span * (width - 1))
            row = height - 1 - int((float(y) - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines: List[str] = []
    lines.append(f"{y_label} (top={y_hi:.4g}, bottom={y_lo:.4g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:.4g} .. {x_hi:.4g}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={label}"
        for i, label in enumerate(series)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 48,
    fill: str = "#",
) -> str:
    """Horizontal bar chart of label -> value (non-negative)."""
    if not values:
        raise ReproError("bar_chart needs at least one bar")
    numeric = {k: float(v) for k, v in values.items()}
    if min(numeric.values()) < 0:
        raise ReproError("bar_chart only supports non-negative values")
    peak = max(numeric.values()) or 1.0
    label_width = max(len(k) for k in numeric)
    lines = []
    for label, value in numeric.items():
        bar = fill * max(1 if value > 0 else 0, int(value / peak * width))
        lines.append(f"{label.rjust(label_width)} |{bar} {value:.4g}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    fills: str = "#=",
) -> str:
    """Per-item bars for several schemes (Fig. 4's paired bars).

    ``groups`` maps item label -> {scheme -> value}.
    """
    if not groups:
        raise ReproError("grouped_bar_chart needs at least one group")
    schemes: List[str] = []
    for by_scheme in groups.values():
        for scheme in by_scheme:
            if scheme not in schemes:
                schemes.append(scheme)
    peak = max(
        (v for by_scheme in groups.values() for v in by_scheme.values()),
        default=1.0,
    ) or 1.0
    label_width = max(len(k) for k in groups)
    lines = [
        " legend: "
        + "  ".join(
            f"{fills[i % len(fills)]}={scheme}"
            for i, scheme in enumerate(schemes)
        )
    ]
    for label, by_scheme in groups.items():
        for i, scheme in enumerate(schemes):
            value = float(by_scheme.get(scheme, 0.0))
            bar = fills[i % len(fills)] * max(
                1 if value > 0 else 0, int(value / peak * width)
            )
            prefix = label.rjust(label_width) if i == 0 else " " * label_width
            lines.append(f"{prefix} |{bar} {value:.4g}")
    return "\n".join(lines)
