"""Weight quantization and weight bitwidth search (paper Sec. V-E)."""

from .analytic import (
    AnalyticWeightAllocation,
    WeightErrorProfiler,
    allocate_weight_bits,
)
from .quantizer import QuantizedWeights, weight_format
from .search import (
    PerLayerWeightSearchResult,
    WeightSearchResult,
    search_per_layer_weight_bits,
    search_weight_bitwidth,
)

__all__ = [
    "AnalyticWeightAllocation",
    "PerLayerWeightSearchResult",
    "QuantizedWeights",
    "WeightErrorProfiler",
    "WeightSearchResult",
    "allocate_weight_bits",
    "search_per_layer_weight_bits",
    "search_weight_bitwidth",
    "weight_format",
]
