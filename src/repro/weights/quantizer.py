"""Weight quantization for analyzed layers.

Weights are constants at inference time, so quantizing them is a static
transformation of the stored tensors.  :class:`QuantizedWeights` swaps
fixed-point-rounded weights in and restores the originals on exit, so
accuracy tests under candidate weight bitwidths (Sec. V-E) do not
disturb the model.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np

from ..errors import QuantizationError
from ..nn.graph import Network
from ..nn.layers import Conv2D, Dense
from ..quant.fixed_point import FixedPointFormat, integer_bits_for_range


def weight_format(weight: np.ndarray, total_bits: int) -> FixedPointFormat:
    """Fixed-point format for a weight tensor at a given word length.

    Integer bits cover the tensor's dynamic range; the remaining bits
    are fraction bits (possibly negative integer-bit savings do not
    apply to weights, whose magnitudes are small).
    """
    max_abs = float(np.max(np.abs(weight))) if weight.size else 0.0
    integer_bits = integer_bits_for_range(max_abs)
    fraction_bits = total_bits - integer_bits
    if fraction_bits < 0:
        raise QuantizationError(
            f"{total_bits} bits cannot represent weights with range "
            f"{max_abs:.3g} (needs {integer_bits} integer bits)"
        )
    return FixedPointFormat(integer_bits, fraction_bits)


class QuantizedWeights:
    """Context manager: run the network with quantized weights.

    ``bits`` is either one word length for every analyzed layer or a
    per-layer mapping.  Bias terms are left exact (they are folded into
    the accumulator at full precision in the modelled accelerators).
    """

    def __init__(
        self,
        network: Network,
        bits: Union[int, Mapping[str, int]],
        layer_names: Optional[Sequence[str]] = None,
    ):
        self.network = network
        names = list(layer_names or network.analyzed_layer_names)
        if isinstance(bits, int):
            self.bits: Dict[str, int] = {name: bits for name in names}
        else:
            self.bits = {name: bits[name] for name in names}
        self._saved: Dict[str, np.ndarray] = {}

    def __enter__(self) -> "QuantizedWeights":
        for name, total_bits in self.bits.items():
            layer = self.network[name]
            if not isinstance(layer, (Conv2D, Dense)):
                raise QuantizationError(
                    f"layer {name!r} has no weights to quantize"
                )
            self._saved[name] = layer.weight
            fmt = weight_format(layer.weight, total_bits)
            layer.weight = fmt.quantize(layer.weight)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for name, weight in self._saved.items():
            self.network[name].weight = weight
        self._saved.clear()
