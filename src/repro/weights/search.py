"""Weight bitwidth search (paper Sec. V-E).

"The extended version of Stripes [1], Loom [2] searches for weight
bitwidth after the reduction in input bitwidth has been made.  We
integrated the same method at the end of the input optimization
process."  Concretely: with the optimized input (activation) formats
applied, descend a uniform weight word length until the accuracy
constraint would break, and keep the smallest passing width (the ``W``
columns of Table III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..data import Dataset
from ..errors import QuantizationError, SearchError
from ..models.evaluate import top1_accuracy
from ..nn.graph import Network, Tap
from .quantizer import QuantizedWeights


@dataclass
class WeightSearchResult:
    """Smallest accuracy-preserving uniform weight bitwidth."""

    bits: int
    accuracy: float
    evaluations: int


@dataclass
class PerLayerWeightSearchResult:
    """Per-layer weight bitwidths (Loom-style, Sec. V-E extension)."""

    bits: "dict[str, int]"
    accuracy: float
    evaluations: int
    joint_increments: int

    def effective_bits(self, weights: "dict[str, float]") -> float:
        """Weighted mean weight bitwidth (same form as effective_bitwidth)."""
        total = sum(weights[name] for name in self.bits)
        return sum(
            weights[name] * b for name, b in self.bits.items()
        ) / total


def search_weight_bitwidth(
    network: Network,
    dataset: Dataset,
    baseline_accuracy: float,
    max_relative_drop: float,
    input_taps: Optional[Mapping[str, Tap]] = None,
    start_bits: int = 16,
    min_bits: int = 2,
    batch_size: int = 64,
) -> WeightSearchResult:
    """Descend the uniform weight width under the accuracy constraint.

    ``input_taps`` should be the quantization taps of the already
    optimized activation allocation, so the combined effect is tested,
    exactly as the paper integrates the two steps.
    """
    if start_bits < min_bits:
        raise SearchError("start_bits must be >= min_bits")
    target = baseline_accuracy * (1.0 - max_relative_drop)
    best: Optional[WeightSearchResult] = None
    evaluations = 0
    for bits in range(start_bits, min_bits - 1, -1):
        try:
            with QuantizedWeights(network, bits):
                accuracy = top1_accuracy(
                    network, dataset, taps=input_taps, batch_size=batch_size
                )
        except QuantizationError:
            # Too few bits to even cover some layer's weight range.
            break
        evaluations += 1
        if accuracy >= target:
            best = WeightSearchResult(
                bits=bits, accuracy=accuracy, evaluations=evaluations
            )
        else:
            break
    if best is None:
        raise SearchError(
            f"even {start_bits}-bit weights violate the accuracy target "
            f"{target:.3f}"
        )
    return best


def search_per_layer_weight_bits(
    network: Network,
    dataset: Dataset,
    baseline_accuracy: float,
    max_relative_drop: float,
    input_taps: Optional[Mapping[str, Tap]] = None,
    per_layer_tolerance: Optional[float] = None,
    start_bits: int = 16,
    min_bits: int = 2,
    batch_size: int = 64,
) -> PerLayerWeightSearchResult:
    """Loom-style per-layer weight bitwidths (Sec. V-E extension).

    Loom [Sharify et al., DAC'18] exploits per-layer *weight* precision
    on top of per-layer activation precision.  The search mirrors the
    Judd two-phase procedure: per-layer minima with every other layer's
    weights exact, each tested against the *user's* accuracy constraint
    (``per_layer_tolerance`` overrides it with a stricter per-layer
    bound), then uniform inflation until the joint assignment meets the
    constraint.  Demanding bit-exact per-layer accuracy would be
    meaningless here: when the input allocation has already spent the
    accuracy budget, a handful of images sit on razor-thin logit
    margins and flip under any perturbation, however small.
    """
    if start_bits < min_bits:
        raise SearchError("start_bits must be >= min_bits")
    target = baseline_accuracy * (1.0 - max_relative_drop)
    names = network.analyzed_layer_names
    evaluations = 0

    def accuracy_with(bits: "dict[str, int]") -> float:
        nonlocal evaluations
        evaluations += 1
        with QuantizedWeights(network, bits, layer_names=list(bits)):
            return top1_accuracy(
                network, dataset, taps=input_taps, batch_size=batch_size
            )

    # Sanity: input quantization alone must still meet the constraint.
    with_inputs_only = top1_accuracy(
        network, dataset, taps=input_taps, batch_size=batch_size
    )
    if with_inputs_only < target:
        raise SearchError(
            f"input quantization alone ({with_inputs_only:.3f}) already "
            f"violates the target ({target:.3f}); re-run the input "
            "optimization with a tighter budget first"
        )
    if per_layer_tolerance is None:
        layer_target = target
    else:
        layer_target = baseline_accuracy * (1.0 - per_layer_tolerance)

    # Phase 1: per-layer minima (only one layer quantized at a time).
    # The widest format is accepted by construction — its rounding error
    # is negligible, so a sub-target measurement there is evaluation
    # noise (razor-margin samples), not a real violation.
    minima: "dict[str, int]" = {}
    for name in names:
        best = start_bits
        for bits in range(start_bits - 1, min_bits - 1, -1):
            try:
                accuracy = accuracy_with({name: bits})
            except QuantizationError:
                break
            if accuracy >= layer_target:
                best = bits
            else:
                break
        minima[name] = best

    # Phase 2: joint repair.  All-at-start_bits is accepted like phase
    # 1's widest format (near-lossless; sub-target readings are noise).
    increments = 0
    while True:
        bits = {
            name: min(b + increments, start_bits)
            for name, b in minima.items()
        }
        accuracy = accuracy_with(bits)
        if accuracy >= target or all(
            b >= start_bits for b in bits.values()
        ):
            break
        increments += 1
    return PerLayerWeightSearchResult(
        bits=bits,
        accuracy=accuracy,
        evaluations=evaluations,
        joint_increments=increments,
    )
