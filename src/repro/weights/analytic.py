"""Analytic weight bitwidth allocation (extending Eq. 5 to weights).

The paper allocates *input* bitwidths analytically but falls back to
dynamic search for weights (Sec. V-E).  Nothing in the error model
requires that: a weight rounding error ``delta_w`` propagates through
the very same dot products as an input error (Eq. 1 is symmetric in
``w`` and ``x``), so the cross-layer linear law

``Delta_WK ≈ lambda^w_K * sigma_{Y_K->L} + theta^w_K``

holds for uniform noise injected into layer K's *weights*, and the
whole sigma-budget / xi-optimization pipeline applies unchanged.  This
module profiles those weight-error constants and allocates per-layer
weight bitwidths analytically — the repo's answer to the paper's "our
bitwidth optimization method can also work well with other weights
quantization techniques".

Weight errors differ from input errors in two practical ways, both
handled here:

* Weights are *fixed*, so a single rounding draw (not a distribution
  over images) is realized; profiling still injects fresh uniform noise
  per trial to estimate the induced output-error scale.
* The weight budget must be *split* with the input budget: callers pass
  ``budget_fraction`` (default half the variance) so combined input +
  weight errors stay within the user's sigma_YL.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..analysis.profiler import LayerErrorProfile, ProfileReport
from ..analysis.regression import fit_line
from ..config import ProfileSettings
from ..errors import ProfilingError
from ..nn.graph import Network
from ..nn.layers import Conv2D, Dense
from ..quant.fixed_point import fraction_bits_for_delta, integer_bits_for_range


class WeightErrorProfiler:
    """Measures lambda^w / theta^w by injecting noise into weights."""

    def __init__(
        self,
        network: Network,
        images: np.ndarray,
        settings: Optional[ProfileSettings] = None,
        batch_size: int = 32,
    ):
        self.network = network
        self.images = np.asarray(images, dtype=np.float64)
        self.settings = settings or ProfileSettings()
        self.batch_size = batch_size
        if self.images.shape[0] < 1:
            raise ProfilingError("profiling needs at least one image")

    def _weight_layers(self, names: Optional[List[str]]) -> List[str]:
        candidates = names or self.network.analyzed_layer_names
        selected = []
        for name in candidates:
            layer = self.network[name]
            if not isinstance(layer, (Conv2D, Dense)):
                raise ProfilingError(
                    f"layer {name!r} has no weights to profile"
                )
            selected.append(name)
        return selected

    def profile(
        self, layer_names: Optional[List[str]] = None
    ) -> ProfileReport:
        """Fit ``Delta_W = lambda^w * sigma_{Y->L} + theta^w`` per layer."""
        import time

        start_time = time.perf_counter()
        settings = self.settings
        names = self._weight_layers(layer_names)
        num_images = min(settings.num_images, self.images.shape[0])
        images = self.images[:num_images]
        rng = np.random.default_rng(settings.seed)

        profiles: Dict[str, LayerErrorProfile] = {}
        for name in names:
            layer = self.network[name]
            weight = layer.weight
            scale = float(np.abs(weight).std()) or 1.0
            grid = np.geomspace(
                scale * settings.delta_min,
                scale * settings.delta_max,
                settings.num_delta_points,
            )
            sq_sums = np.zeros(settings.num_delta_points)
            counts = np.zeros(settings.num_delta_points)
            for batch_start in range(0, num_images, self.batch_size):
                batch = images[batch_start : batch_start + self.batch_size]
                cache = self.network.run_all(batch)
                reference = cache[self.network.output_name]
                for j, delta in enumerate(grid):
                    for __ in range(settings.num_repeats):
                        noise = rng.uniform(
                            -delta, delta, size=weight.shape
                        )
                        layer.weight = weight + noise
                        try:
                            perturbed = self.network.forward_from(
                                cache, name, lambda x: x
                            )
                        finally:
                            layer.weight = weight
                        err = perturbed - reference
                        sq_sums[j] += float((err * err).sum())
                        counts[j] += err.size
            sigmas = np.sqrt(sq_sums / np.maximum(counts, 1.0))
            # Guards the dead-weight case (e.g. a layer whose output is
            # fully masked downstream): tolerance instead of == 0.0 so
            # denormal accumulation residue counts as "no perturbation"
            # rather than feeding the regression garbage.
            if np.all(sigmas <= np.finfo(np.float64).tiny):
                raise ProfilingError(
                    f"weight noise at {name!r} never perturbed the output"
                )
            fit = fit_line(sigmas, grid)
            profiles[name] = LayerErrorProfile(
                name=name,
                lam=fit.slope,
                theta=fit.intercept,
                r_squared=fit.r_squared,
                max_relative_error=fit.max_relative_error,
                deltas=grid,
                sigmas=sigmas,
            )
        return ProfileReport(
            profiles=profiles,
            num_images=num_images,
            elapsed_seconds=time.perf_counter() - start_time,
        )


@dataclass
class AnalyticWeightAllocation:
    """Per-layer weight formats derived analytically."""

    bits: Dict[str, int]
    deltas: Dict[str, float]
    sigma_weights: float
    budget_fraction: float

    def effective_bits(self, weights: Mapping[str, float]) -> float:
        total = sum(weights[name] for name in self.bits)
        return (
            sum(weights[name] * b for name, b in self.bits.items()) / total
        )


def allocate_weight_bits(
    network: Network,
    weight_profiles: Mapping[str, LayerErrorProfile],
    sigma_total: float,
    budget_fraction: float = 0.5,
    xi: Optional[Mapping[str, float]] = None,
    min_bits: int = 2,
    max_bits: int = 16,
) -> AnalyticWeightAllocation:
    """Turn a sigma budget share into per-layer weight bitwidths.

    ``budget_fraction`` is the fraction of the total error *variance*
    granted to weights (inputs keep the rest): by Eq. 6 the weight-error
    std budget is ``sigma_total * sqrt(budget_fraction)``.  ``xi``
    splits that budget across layers (default: equal shares).
    """
    if not 0.0 < budget_fraction < 1.0:
        raise ProfilingError("budget_fraction must be in (0, 1)")
    names = list(weight_profiles)
    if xi is None:
        xi = {name: 1.0 / len(names) for name in names}
    sigma_weights = sigma_total * math.sqrt(budget_fraction)
    bits: Dict[str, int] = {}
    deltas: Dict[str, float] = {}
    for name in names:
        profile = weight_profiles[name]
        delta = profile.delta_for_sigma(
            sigma_weights * math.sqrt(xi[name])
        )
        delta = max(delta, 1e-12)
        weight = network[name].weight
        max_abs = float(np.max(np.abs(weight))) if weight.size else 1.0
        integer_bits = integer_bits_for_range(max_abs)
        fraction_bits = max(fraction_bits_for_delta(delta), 0)
        total = int(np.clip(integer_bits + fraction_bits, min_bits, max_bits))
        bits[name] = total
        deltas[name] = delta
    return AnalyticWeightAllocation(
        bits=bits,
        deltas=deltas,
        sigma_weights=sigma_weights,
        budget_fraction=budget_fraction,
    )
