"""CLI for the static-analysis subsystem (``python -m repro.check``).

Two modes:

* **Pipeline check** (default): build the quickstart pipeline for a zoo
  model, then run every Pass-1 audit — graph structure, shape
  re-inference, dtype audit, interval propagation, measured-range
  overflow, negative-F feasibility, xi invariants, and Eq. 5 fit gates
  — over the network and the allocation the pipeline produces.
* **Static analysis** (``--self`` or ``--lint PATH...``, optionally
  with ``--concurrency`` / ``--determinism``): run the AST passes over
  source files, no models involved.  With no pass flags the Pass-2
  numerical lint runs; each pass flag selects that analyzer instead
  (flags combine).  ``--baseline FILE`` filters the committed accepted
  findings out so the gate fails only on *new* ones;
  ``--write-baseline FILE`` regenerates the file.

Exit code 0 when clean; 1 when any error-severity finding exists (or —
with ``--strict`` — any warning); 2 when an analyzer itself crashed.
The 0/1/2 contract holds for every mode, so CI can distinguish "found
violations" from "the checker is broken".
"""

from __future__ import annotations

import argparse
import sys
import traceback
from pathlib import Path
from typing import List, Optional

from .findings import CheckReport, Severity
from .intervals import input_range_of, propagate_ranges

#: Exit code for "the analyzer itself failed" (vs. 1 = findings).
EXIT_CRASH = 2


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the shared ``check`` options on a parser."""
    parser.add_argument(
        "--model", default="lenet", help="zoo model for the pipeline check"
    )
    parser.add_argument("--seed", type=int, default=20190325)
    parser.add_argument("--train-count", type=int, default=256)
    parser.add_argument("--test-count", type=int, default=128)
    parser.add_argument("--profile-images", type=int, default=16)
    parser.add_argument("--profile-points", type=int, default=6)
    parser.add_argument(
        "--strict",
        action="store_true",
        help="warnings also fail the check (exit 1)",
    )
    parser.add_argument(
        "--graph-only",
        action="store_true",
        help="skip profiling/allocation; verify structure, shapes, "
        "dtypes, and ranges only",
    )
    parser.add_argument(
        "--worst-case",
        action="store_true",
        help="audit integer bits against statically propagated input "
        "bounds, not just the measured ranges (conservative; may warn "
        "on allocations that are fine for the calibration data)",
    )
    parser.add_argument(
        "--lint",
        nargs="+",
        default=None,
        metavar="PATH",
        help="lint the given files/directories instead of checking a model",
    )
    parser.add_argument(
        "--self",
        dest="lint_self",
        action="store_true",
        help="lint this package's own source tree (the CI hygiene gate)",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help="run the Pass-3 concurrency analyzer (shared-state races, "
        "fork-unsafe captures, unpicklable process-pool tasks)",
    )
    parser.add_argument(
        "--determinism",
        action="store_true",
        help="run the Pass-4 determinism analyzer (RNG discipline, "
        "key-field registry drift, CODE_SALT, iteration order)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="filter findings whose digest appears in this baseline "
        "file; fail only on new ones (stale digests warn)",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings' digests to FILE and exit 0",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also show info-level findings"
    )


def _selected_passes(args: argparse.Namespace) -> List[str]:
    passes: List[str] = []
    if getattr(args, "concurrency", False):
        passes.append("concurrency")
    if getattr(args, "determinism", False):
        passes.append("determinism")
    return passes or ["lint"]


def run_lint(paths: List[str], args: argparse.Namespace) -> int:
    """Run the selected static passes over ``paths`` (default: lint)."""
    from .registry import (
        apply_baseline,
        load_baseline,
        run_analyzers,
        write_baseline,
    )

    passes = _selected_passes(args)
    root = Path.cwd()
    report, num_files = run_analyzers(paths, passes, root=root)
    if getattr(args, "write_baseline", None):
        write_baseline(args.write_baseline, report, root=root)
        print(
            f"wrote {len(report.at_least(Severity.WARNING))} digest(s) "
            f"to {args.write_baseline}"
        )
        return 0
    if getattr(args, "baseline", None):
        report = apply_baseline(
            report, load_baseline(args.baseline), root=root
        )
    if args.json:
        print(report.to_json())
    else:
        print(report.render(verbose=args.verbose))
        print(
            f"ran {'+'.join(passes)} over {num_files} file(s)"
        )
    return report.exit_code(args.strict)


def run_pipeline_check(args: argparse.Namespace) -> int:
    # Imports are deferred so `--lint` mode never touches scipy/models.
    from ..config import ProfileSettings
    from ..models import pretrained_model
    from ..pipeline import PrecisionOptimizer
    from .allocation_audit import audit_allocation_result, audit_profiles
    from .graph_verifier import verify_network

    report = CheckReport()
    network, train, test, info = pretrained_model(
        args.model,
        train_count=args.train_count,
        test_count=args.test_count,
        seed=args.seed,
    )
    report.extend(verify_network(network))

    input_range = input_range_of(test.images)
    analysis = propagate_ranges(network, input_range)
    report.extend(analysis.report)
    for name, interval in analysis.analyzed_inputs.items():
        report.add(
            "static-range-info",
            Severity.INFO,
            f"statically propagated input bound {interval}",
            layer=name,
        )

    if not args.graph_only:
        optimizer = PrecisionOptimizer(
            network,
            test,
            profile_settings=ProfileSettings(
                num_images=args.profile_images,
                num_delta_points=args.profile_points,
            ),
            strict=False,
            verify=False,  # this run *is* the verification
        )
        report.extend(audit_profiles(optimizer.profile().profiles))
        outcome = optimizer.optimize(
            "input", accuracy_drop=0.02, validate=False
        )
        report.extend(
            audit_allocation_result(
                outcome.result,
                stats=optimizer.stats(),
                network=network,
                input_range=input_range if args.worst_case else None,
            )
        )
        if outcome.degraded:
            report.add(
                "degraded-allocation",
                Severity.WARNING,
                "the xi solve degraded to the equal-share fallback",
            )

    if args.json:
        print(report.to_json())
    else:
        print(report.render(verbose=args.verbose))
        status = "CLEAN" if report.ok(args.strict) else "FAILED"
        print(f"{args.model}: static check {status}")
    return report.exit_code(args.strict)


def run_check(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``check`` invocation (shared with ``repro check``).

    Exit contract across every mode: 0 clean, 1 findings, 2 the
    analyzer itself crashed (distinguishable in CI from real findings).
    """
    try:
        static_mode = (
            args.lint_self
            or args.lint
            or getattr(args, "concurrency", False)
            or getattr(args, "determinism", False)
        )
        if static_mode:
            if args.lint:
                return run_lint(args.lint, args)
            # --self, or a pass flag alone: this package's own tree.
            package_root = Path(__file__).resolve().parents[1]
            return run_lint([str(package_root)], args)
        return run_pipeline_check(args)
    except Exception:  # repro-check: ignore[overbroad-except]
        # Deliberate: any analyzer bug must map to the distinct crash
        # exit code (2), never masquerade as clean (0) or findings (1).
        traceback.print_exc(file=sys.stderr)
        print(
            "repro check: analyzer crashed (exit 2; this is an "
            "analyzer bug, not a finding)",
            file=sys.stderr,
        )
        return EXIT_CRASH


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.check",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_check_arguments(parser)
    return run_check(parser.parse_args(argv))
