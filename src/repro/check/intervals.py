"""Pass 1b — static activation-range propagation by interval arithmetic.

Judd et al. (arXiv:1511.05236) showed per-layer range analysis is
enough to bound the values a fixed-point format must represent; Lauter
& Volkova (arXiv:2002.03869) check such precision properties entirely
from layer metadata.  This module does the same for this substrate:
given an interval ``[lo, hi]`` bounding the network input, it derives a
sound bound on every layer's output — and therefore on every analyzed
layer's *input*, the quantity the integer bitwidth ``I`` of Sec. II-A
must cover — without running any data.

For dot-product layers the bound splits each weight into its positive
and negative parts: ``y = W x + b`` with ``x in [lo, hi]`` gives
``y in [W+ lo + W- hi + b,  W+ hi + W- lo + b]`` per output unit.  This
is exact for a single matmul under elementwise input bounds (no
relaxation), so the propagated ranges are tight enough to be useful and
conservative enough to be sound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..nn.graph import INPUT, Network
from ..nn.layer import Layer
from ..nn.layers import (
    Add,
    AvgPool2D,
    ChannelAffine,
    Concat,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    LRN,
    MaxPool2D,
    ReLU,
    Softmax,
)
from .findings import CheckReport, Severity


@dataclass(frozen=True)
class Interval:
    """A closed scalar interval ``[lo, hi]`` bounding every tensor entry."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.lo) and math.isfinite(self.hi)):
            raise ValueError(f"interval bounds must be finite: {self}")
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def max_abs(self) -> float:
        return max(abs(self.lo), abs(self.hi))

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def with_zero(self) -> "Interval":
        """Widen to include 0 (zero padding contributes exact zeros)."""
        return Interval(min(self.lo, 0.0), max(self.hi, 0.0))

    def relu(self) -> "Interval":
        return Interval(max(self.lo, 0.0), max(self.hi, 0.0))

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __str__(self) -> str:
        return f"[{self.lo:.4g}, {self.hi:.4g}]"


def _dot_product_bound(
    weight2d: np.ndarray, x: Interval, bias: "np.ndarray | None" = None
) -> Interval:
    """Bound ``W x (+ b)`` for x bounded elementwise by an interval.

    ``weight2d`` is ``(out_units, fan_in)``; the returned interval is
    the hull over output units.
    """
    positive = np.maximum(weight2d, 0.0).sum(axis=1)
    negative = np.minimum(weight2d, 0.0).sum(axis=1)
    lo = positive * x.lo + negative * x.hi
    hi = positive * x.hi + negative * x.lo
    if bias is not None:
        lo = lo + bias
        hi = hi + bias
    return Interval(float(lo.min()), float(hi.max()))


def _propagate_layer(
    layer: Layer, inputs: List[Interval], report: CheckReport
) -> Interval:
    """Output interval of one layer from its input intervals."""
    x = inputs[0]
    if isinstance(layer, Conv2D):
        if layer.padding > 0:
            x = x.with_zero()
        # Each output channel sees only its own group's kernel, so the
        # (out_c, fan_in) reshape is the exact per-unit weight row for
        # dense, grouped, and depthwise convolutions alike.
        w2d = layer.weight.reshape(layer.weight.shape[0], -1)
        return _dot_product_bound(w2d, x, layer.bias)
    if isinstance(layer, Dense):
        return _dot_product_bound(layer.weight, x, layer.bias)
    if isinstance(layer, ReLU):
        return x.relu()
    if isinstance(layer, Softmax):
        return Interval(0.0, 1.0)
    if isinstance(layer, MaxPool2D):
        # Output values are a subsample of input values (padding uses
        # -inf sentinels and never wins), so the bound passes through.
        return x
    if isinstance(layer, (AvgPool2D, GlobalAvgPool)):
        # A mean is a convex combination of the inputs; with zero
        # padding the combination may include exact zeros.
        if isinstance(layer, AvgPool2D) and layer.padding > 0:
            return x.with_zero()
        return x
    if isinstance(layer, Flatten):
        return x
    if isinstance(layer, Add):
        total = inputs[0]
        for other in inputs[1:]:
            total = total + other
        return total
    if isinstance(layer, Concat):
        hull = inputs[0]
        for other in inputs[1:]:
            hull = hull.hull(other)
        return hull
    if isinstance(layer, ChannelAffine):
        candidates = np.stack(
            [layer.scale * x.lo, layer.scale * x.hi]
        ) + layer.shift
        return Interval(float(candidates.min()), float(candidates.max()))
    if isinstance(layer, LRN):
        # denom = (k + alpha/n * sum x^2)^beta >= k^beta, so
        # |y| <= |x| / k^beta for any k > 0.
        scale = layer.k ** (-layer.beta)
        bound = x.max_abs * scale
        lo = 0.0 if x.lo >= 0 else -bound
        return Interval(lo, bound)
    report.add(
        "unsupported-layer",
        Severity.WARNING,
        f"no interval rule for layer type {type(layer).__name__}; "
        "passing the input bound through unchanged (potentially unsound)",
        layer=layer.name,
    )
    return x


@dataclass
class RangeAnalysis:
    """Result of interval propagation over a network."""

    #: Bound on each layer's *output* values (keyed by layer name;
    #: :data:`~repro.nn.graph.INPUT` maps to the input bound itself).
    outputs: Dict[str, Interval]
    #: Bound on each *analyzed* layer's primary input — the value range
    #: an integer bitwidth ``I`` must cover (Sec. II-A).
    analyzed_inputs: Dict[str, Interval]
    #: Findings emitted during propagation (unsupported layer types).
    report: CheckReport

    def max_abs(self, name: str) -> float:
        return self.analyzed_inputs[name].max_abs


def propagate_ranges(
    network: Network,
    input_range: Interval,
    analyzed: Sequence[str] = (),
) -> RangeAnalysis:
    """Propagate an input bound through every layer of the network.

    ``input_range`` typically comes from the dataset's pixel scale (the
    calibration batch's ``[min, max]``); the result statically bounds
    each analyzed layer's input — what ``max|X_K|`` can ever reach, not
    just what the calibration set happened to produce.
    """
    report = CheckReport()
    outputs: Dict[str, Interval] = {INPUT: input_range}
    names = list(analyzed) or network.analyzed_layer_names
    analyzed_inputs: Dict[str, Interval] = {}
    for layer in network.layers:
        inputs = [outputs[name] for name in layer.inputs]
        if layer.name in names:
            analyzed_inputs[layer.name] = inputs[0]
        outputs[layer.name] = _propagate_layer(layer, inputs, report)
    return RangeAnalysis(
        outputs=outputs, analyzed_inputs=analyzed_inputs, report=report
    )


def input_range_of(images: np.ndarray, margin: float = 0.0) -> Interval:
    """Interval covering a calibration batch, with an optional margin.

    ``margin`` widens the bound symmetrically by that fraction of the
    half-width, covering test-time inputs slightly outside the
    calibration batch.
    """
    lo = float(np.min(images))
    hi = float(np.max(images))
    if margin > 0.0:
        half = 0.5 * (hi - lo) * margin
        lo -= half
        hi += half
    return Interval(lo, hi)
